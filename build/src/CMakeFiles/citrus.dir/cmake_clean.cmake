file(REMOVE_RECURSE
  "CMakeFiles/citrus.dir/adapters/registry.cpp.o"
  "CMakeFiles/citrus.dir/adapters/registry.cpp.o.d"
  "CMakeFiles/citrus.dir/lineariz/checker.cpp.o"
  "CMakeFiles/citrus.dir/lineariz/checker.cpp.o.d"
  "CMakeFiles/citrus.dir/util/affinity.cpp.o"
  "CMakeFiles/citrus.dir/util/affinity.cpp.o.d"
  "CMakeFiles/citrus.dir/util/cli.cpp.o"
  "CMakeFiles/citrus.dir/util/cli.cpp.o.d"
  "CMakeFiles/citrus.dir/util/stats.cpp.o"
  "CMakeFiles/citrus.dir/util/stats.cpp.o.d"
  "CMakeFiles/citrus.dir/workload/report.cpp.o"
  "CMakeFiles/citrus.dir/workload/report.cpp.o.d"
  "CMakeFiles/citrus.dir/workload/runner.cpp.o"
  "CMakeFiles/citrus.dir/workload/runner.cpp.o.d"
  "libcitrus.a"
  "libcitrus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citrus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
