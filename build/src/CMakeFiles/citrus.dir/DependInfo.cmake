
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapters/registry.cpp" "src/CMakeFiles/citrus.dir/adapters/registry.cpp.o" "gcc" "src/CMakeFiles/citrus.dir/adapters/registry.cpp.o.d"
  "/root/repo/src/lineariz/checker.cpp" "src/CMakeFiles/citrus.dir/lineariz/checker.cpp.o" "gcc" "src/CMakeFiles/citrus.dir/lineariz/checker.cpp.o.d"
  "/root/repo/src/util/affinity.cpp" "src/CMakeFiles/citrus.dir/util/affinity.cpp.o" "gcc" "src/CMakeFiles/citrus.dir/util/affinity.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/citrus.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/citrus.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/citrus.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/citrus.dir/util/stats.cpp.o.d"
  "/root/repo/src/workload/report.cpp" "src/CMakeFiles/citrus.dir/workload/report.cpp.o" "gcc" "src/CMakeFiles/citrus.dir/workload/report.cpp.o.d"
  "/root/repo/src/workload/runner.cpp" "src/CMakeFiles/citrus.dir/workload/runner.cpp.o" "gcc" "src/CMakeFiles/citrus.dir/workload/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
