# Empty dependencies file for citrus.
# This may be replaced when dependencies are built.
