file(REMOVE_RECURSE
  "libcitrus.a"
)
