# Empty compiler generated dependencies file for ablation_lock_type.
# This may be replaced when dependencies are built.
