file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_type.dir/ablation_lock_type.cpp.o"
  "CMakeFiles/ablation_lock_type.dir/ablation_lock_type.cpp.o.d"
  "ablation_lock_type"
  "ablation_lock_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
