# Empty dependencies file for fig8_rcu_scaling.
# This may be replaced when dependencies are built.
