file(REMOVE_RECURSE
  "CMakeFiles/ablation_rcu_domain.dir/ablation_rcu_domain.cpp.o"
  "CMakeFiles/ablation_rcu_domain.dir/ablation_rcu_domain.cpp.o.d"
  "ablation_rcu_domain"
  "ablation_rcu_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rcu_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
