# Empty dependencies file for ablation_rcu_domain.
# This may be replaced when dependencies are built.
