file(REMOVE_RECURSE
  "CMakeFiles/micro_rcu_primitives.dir/micro_rcu_primitives.cpp.o"
  "CMakeFiles/micro_rcu_primitives.dir/micro_rcu_primitives.cpp.o.d"
  "micro_rcu_primitives"
  "micro_rcu_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rcu_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
