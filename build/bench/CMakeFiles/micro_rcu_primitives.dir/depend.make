# Empty dependencies file for micro_rcu_primitives.
# This may be replaced when dependencies are built.
