# Empty dependencies file for micro_reclaim.
# This may be replaced when dependencies are built.
