file(REMOVE_RECURSE
  "CMakeFiles/fig9_single_writer.dir/fig9_single_writer.cpp.o"
  "CMakeFiles/fig9_single_writer.dir/fig9_single_writer.cpp.o.d"
  "fig9_single_writer"
  "fig9_single_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_single_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
