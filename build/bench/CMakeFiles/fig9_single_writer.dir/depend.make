# Empty dependencies file for fig9_single_writer.
# This may be replaced when dependencies are built.
