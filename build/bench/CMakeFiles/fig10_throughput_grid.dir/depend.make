# Empty dependencies file for fig10_throughput_grid.
# This may be replaced when dependencies are built.
