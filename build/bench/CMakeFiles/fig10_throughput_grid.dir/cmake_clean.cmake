file(REMOVE_RECURSE
  "CMakeFiles/fig10_throughput_grid.dir/fig10_throughput_grid.cpp.o"
  "CMakeFiles/fig10_throughput_grid.dir/fig10_throughput_grid.cpp.o.d"
  "fig10_throughput_grid"
  "fig10_throughput_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_throughput_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
