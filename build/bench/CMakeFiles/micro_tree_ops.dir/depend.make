# Empty dependencies file for micro_tree_ops.
# This may be replaced when dependencies are built.
