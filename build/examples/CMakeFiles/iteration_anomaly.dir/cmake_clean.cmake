file(REMOVE_RECURSE
  "CMakeFiles/iteration_anomaly.dir/iteration_anomaly.cpp.o"
  "CMakeFiles/iteration_anomaly.dir/iteration_anomaly.cpp.o.d"
  "iteration_anomaly"
  "iteration_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iteration_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
