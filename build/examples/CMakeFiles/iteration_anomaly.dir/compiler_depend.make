# Empty compiler generated dependencies file for iteration_anomaly.
# This may be replaced when dependencies are built.
