# Empty compiler generated dependencies file for routing_table.
# This may be replaced when dependencies are built.
