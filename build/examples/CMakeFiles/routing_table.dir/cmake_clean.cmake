file(REMOVE_RECURSE
  "CMakeFiles/routing_table.dir/routing_table.cpp.o"
  "CMakeFiles/routing_table.dir/routing_table.cpp.o.d"
  "routing_table"
  "routing_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
