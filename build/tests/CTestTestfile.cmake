# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rcu[1]_include.cmake")
include("/root/repo/build/tests/test_rcu_torture[1]_include.cmake")
include("/root/repo/build/tests/test_rcu_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_node_pool[1]_include.cmake")
include("/root/repo/build/tests/test_citrus_basic[1]_include.cmake")
include("/root/repo/build/tests/test_citrus_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_citrus_reclaim[1]_include.cmake")
include("/root/repo/build/tests/test_citrus_properties[1]_include.cmake")
include("/root/repo/build/tests/test_citrus_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_citrus_assign[1]_include.cmake")
include("/root/repo/build/tests/test_dictionaries[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_relativistic_hash[1]_include.cmake")
include("/root/repo/build/tests/test_lineariz_checker[1]_include.cmake")
include("/root/repo/build/tests/test_linearizability[1]_include.cmake")
include("/root/repo/build/tests/test_adapters[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
