file(REMOVE_RECURSE
  "CMakeFiles/test_citrus_properties.dir/test_citrus_properties.cpp.o"
  "CMakeFiles/test_citrus_properties.dir/test_citrus_properties.cpp.o.d"
  "test_citrus_properties"
  "test_citrus_properties.pdb"
  "test_citrus_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citrus_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
