file(REMOVE_RECURSE
  "CMakeFiles/test_relativistic_hash.dir/test_relativistic_hash.cpp.o"
  "CMakeFiles/test_relativistic_hash.dir/test_relativistic_hash.cpp.o.d"
  "test_relativistic_hash"
  "test_relativistic_hash.pdb"
  "test_relativistic_hash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relativistic_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
