# Empty compiler generated dependencies file for test_citrus_scenarios.
# This may be replaced when dependencies are built.
