file(REMOVE_RECURSE
  "CMakeFiles/test_citrus_scenarios.dir/test_citrus_scenarios.cpp.o"
  "CMakeFiles/test_citrus_scenarios.dir/test_citrus_scenarios.cpp.o.d"
  "test_citrus_scenarios"
  "test_citrus_scenarios.pdb"
  "test_citrus_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citrus_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
