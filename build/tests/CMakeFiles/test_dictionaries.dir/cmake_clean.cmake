file(REMOVE_RECURSE
  "CMakeFiles/test_dictionaries.dir/test_dictionaries.cpp.o"
  "CMakeFiles/test_dictionaries.dir/test_dictionaries.cpp.o.d"
  "test_dictionaries"
  "test_dictionaries.pdb"
  "test_dictionaries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dictionaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
