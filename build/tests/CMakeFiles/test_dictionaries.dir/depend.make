# Empty dependencies file for test_dictionaries.
# This may be replaced when dependencies are built.
