file(REMOVE_RECURSE
  "CMakeFiles/test_lineariz_checker.dir/test_lineariz_checker.cpp.o"
  "CMakeFiles/test_lineariz_checker.dir/test_lineariz_checker.cpp.o.d"
  "test_lineariz_checker"
  "test_lineariz_checker.pdb"
  "test_lineariz_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lineariz_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
