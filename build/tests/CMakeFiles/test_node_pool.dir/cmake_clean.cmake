file(REMOVE_RECURSE
  "CMakeFiles/test_node_pool.dir/test_node_pool.cpp.o"
  "CMakeFiles/test_node_pool.dir/test_node_pool.cpp.o.d"
  "test_node_pool"
  "test_node_pool.pdb"
  "test_node_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
