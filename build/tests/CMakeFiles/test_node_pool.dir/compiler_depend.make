# Empty compiler generated dependencies file for test_node_pool.
# This may be replaced when dependencies are built.
