file(REMOVE_RECURSE
  "CMakeFiles/test_rcu_extensions.dir/test_rcu_extensions.cpp.o"
  "CMakeFiles/test_rcu_extensions.dir/test_rcu_extensions.cpp.o.d"
  "test_rcu_extensions"
  "test_rcu_extensions.pdb"
  "test_rcu_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
