# Empty dependencies file for test_rcu_extensions.
# This may be replaced when dependencies are built.
