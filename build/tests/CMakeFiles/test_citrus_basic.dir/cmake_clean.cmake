file(REMOVE_RECURSE
  "CMakeFiles/test_citrus_basic.dir/test_citrus_basic.cpp.o"
  "CMakeFiles/test_citrus_basic.dir/test_citrus_basic.cpp.o.d"
  "test_citrus_basic"
  "test_citrus_basic.pdb"
  "test_citrus_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citrus_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
