# Empty compiler generated dependencies file for test_citrus_basic.
# This may be replaced when dependencies are built.
