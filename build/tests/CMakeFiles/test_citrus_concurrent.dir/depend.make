# Empty dependencies file for test_citrus_concurrent.
# This may be replaced when dependencies are built.
