file(REMOVE_RECURSE
  "CMakeFiles/test_citrus_concurrent.dir/test_citrus_concurrent.cpp.o"
  "CMakeFiles/test_citrus_concurrent.dir/test_citrus_concurrent.cpp.o.d"
  "test_citrus_concurrent"
  "test_citrus_concurrent.pdb"
  "test_citrus_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citrus_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
