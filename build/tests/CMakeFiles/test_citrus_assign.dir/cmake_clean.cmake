file(REMOVE_RECURSE
  "CMakeFiles/test_citrus_assign.dir/test_citrus_assign.cpp.o"
  "CMakeFiles/test_citrus_assign.dir/test_citrus_assign.cpp.o.d"
  "test_citrus_assign"
  "test_citrus_assign.pdb"
  "test_citrus_assign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citrus_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
