# Empty dependencies file for test_linearizability.
# This may be replaced when dependencies are built.
