# Empty compiler generated dependencies file for test_citrus_reclaim.
# This may be replaced when dependencies are built.
