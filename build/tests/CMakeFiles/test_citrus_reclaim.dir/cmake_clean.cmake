file(REMOVE_RECURSE
  "CMakeFiles/test_citrus_reclaim.dir/test_citrus_reclaim.cpp.o"
  "CMakeFiles/test_citrus_reclaim.dir/test_citrus_reclaim.cpp.o.d"
  "test_citrus_reclaim"
  "test_citrus_reclaim.pdb"
  "test_citrus_reclaim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citrus_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
