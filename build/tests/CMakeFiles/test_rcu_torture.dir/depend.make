# Empty dependencies file for test_rcu_torture.
# This may be replaced when dependencies are built.
