file(REMOVE_RECURSE
  "CMakeFiles/test_rcu_torture.dir/test_rcu_torture.cpp.o"
  "CMakeFiles/test_rcu_torture.dir/test_rcu_torture.cpp.o.d"
  "test_rcu_torture"
  "test_rcu_torture.pdb"
  "test_rcu_torture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
