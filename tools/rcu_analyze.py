#!/usr/bin/env python3
"""rcu_analyze.py — AST-grade static analyzer for the repo's RCU discipline.

The runtime rcucheck layer (src/check/) verifies the paper's protocol
obligations on *executed* paths; tools/lint_rcu.py is a function-granular
brace tracker. This pass closes the gap between them: a per-function
dataflow analysis that models read-side critical sections and lock scopes
as *regions* (line intervals within a function) and checks every use of
the typed wrappers from src/rcu/guarded_ptr.hpp against them. Four
violation classes are reported, each finding carrying the region trace
that justifies it:

  deref-outside-region   A protected_ptr (the borrowed handle returned by
                         guarded_ptr::load_protected / published_ptr::load)
                         is dereferenced at a program point where no
                         read-side critical section or lock region is open.

  region-escape          A protected handle escapes its protection region:
                         returned, stored to a field/global, captured by a
                         deferred callback, or laundered through
                         protected_ptr::escape() — without an
                         `// rcu-analyze: allow (...)` annotation naming
                         the proof obligation that replaces the region
                         (generation validation, a caller-held lock, ...).

  publish-not-release    A pointer swing that publishes structure is not a
                         release-ordered store (e.g. a raw
                         `.store(p, std::memory_order_relaxed)` on a cell
                         readers traverse). Unwritable through
                         guarded_ptr::publish(), so every hit is a raw
                         atomic that escaped the typed API — or an
                         unguarded_store outside a quiescent function
                         (reported as quiescent-escape, below).

  sync-in-read-section   A call that blocks for a grace period
                         (synchronize_rcu and everything reachable from
                         it, one call-graph fixpoint deep) made while a
                         read-side critical section is open — the
                         self-deadlock RCU forbids.

  quiescent-escape       unguarded_load()/unguarded_store() — the
                         single-owner escape hatches — used in a function
                         not annotated `quiescent` and at a site not
                         annotated `allow`.

Two frontends feed one analysis:

  * libclang — when the clang python bindings and a loadable libclang are
    present, functions/regions/uses are lifted from the real AST over
    compile_commands.json (export with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON,
    on by default in this repo's top-level CMakeLists). The
    [[clang::annotate("rcu_guarded")]] family of tags on the wrapper types
    and the CITRUS_RCU_*_FN function-role tags are the markers it keys on.
  * fallback — a self-contained lexical frontend (tokenizer + per-function
    scope tracker) that recognizes the same wrapper API and guard idioms
    by name. It approximates the CFG with lexical scope intervals, which
    is exact for this codebase's RAII-guard style (regions are scopes).
    Used automatically when libclang is unavailable, so the analyzer and
    its corpus run in every environment the tests run in.

Suppressions use the shared grammar of tools/rcu_annotations.py (the same
one lint_rcu.py reads, either `rcu-lint:` or `rcu-analyze:` prefix):
`quiescent` blesses a function, `allow` blesses a site (same line or up to
three lines above), `exempt-file` skips a file for *both* tools. Unknown
keys are diagnostics, and any diagnostic fails the run.

Usage:
    tools/rcu_analyze.py [--root DIR] [--backend auto|libclang|fallback]
                         [--compile-commands build/compile_commands.json]
                         [paths...]

Exits nonzero on findings or annotation diagnostics (CI gate).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import rcu_annotations  # noqa: E402

# ──────────────────────────────────────────────────────────────────────
# Shared IR: both frontends lower source into these structures.
# ──────────────────────────────────────────────────────────────────────


@dataclasses.dataclass
class Region:
    """A protection interval within one function, in source lines."""

    kind: str  # "read" | "lock"
    opened_by: str  # the token/stmt that opened it, for the trace
    start: int  # 1-based line of the opening
    end: int  # 1-based line of the close (scope exit / unlock)

    def covers(self, line: int) -> bool:
        return self.start <= line <= self.end

    def trace(self) -> str:
        return (
            f"{self.kind} region lines {self.start}-{self.end} "
            f"(opened by `{self.opened_by}`)"
        )


@dataclasses.dataclass
class Use:
    """One analyzable event inside a function body."""

    kind: str  # deref | escape | escape_return | escape_store |
    #            escape_capture | publish_relaxed | unguarded | sync_call
    line: int
    text: str  # trimmed source line, for the report
    detail: str = ""  # e.g. the variable or callee name


@dataclasses.dataclass
class Function:
    name: str
    path: pathlib.Path
    start: int  # line of the `{` opening the body
    end: int  # line of the matching `}`
    regions: list[Region] = dataclasses.field(default_factory=list)
    uses: list[Use] = dataclasses.field(default_factory=list)
    calls: set[str] = dataclasses.field(default_factory=set)
    # Role tags — from [[clang::annotate]] under libclang, from naming
    # under the fallback.
    is_synchronize: bool = False

    def open_regions(self, line: int) -> list[Region]:
        return [r for r in self.regions if r.covers(line)]


@dataclasses.dataclass
class Finding:
    path: pathlib.Path
    line: int
    func: str
    kind: str
    message: str
    trace: list[str]

    def __str__(self) -> str:
        out = f"{self.path}:{self.line}: [{self.kind}] {self.message}"
        for t in self.trace:
            out += f"\n    trace: {t}"
        return out


# ──────────────────────────────────────────────────────────────────────
# Fallback frontend: lexical scope tracking over stripped source.
# ──────────────────────────────────────────────────────────────────────

# Tokens that open a read-side critical section for the rest of the
# enclosing scope (RAII guards) or until an explicit unlock.
READ_OPEN_RE = re.compile(
    r"\b(?:ReadGuard|MaybeReadGuard)\b(?!;)"
    r"|\bread_lock\s*\(|\brcu_read_lock\b"
)
READ_CLOSE_RE = re.compile(r"\bread_unlock\s*\(|\brcu_read_unlock\b")

# Tokens that open a lock region for the rest of the enclosing scope.
# The cop updater's transactional contexts count as lock regions: a body
# handed to run_transactions()/tx_attempt() runs inside a hardware
# transaction that subscribed the relevant lock words (any concurrent
# writer aborts it — at least as strong as holding the locks), and the
# CITRUS_COP_TX_BODY marker macro (src/util/htm.hpp) tags such lambdas.
LOCK_OPEN_RE = re.compile(
    r"\b(?:lock_guard|scoped_lock|unique_lock|shared_lock)\s*[<(]"
    r"|(?<![_\w])\.lock\s*\(|->lock\s*\(|\btry_lock\s*\("
    r"|\bacquire_timed\s*\("
    r"|\brun_transactions\s*\(|\btx_attempt\s*\(|\btx_begin\s*\("
    r"|\bCITRUS_COP_TX_BODY\b"
)

# A guarded load producing a borrowed handle, and the handle type itself.
GUARDED_LOAD_RE = re.compile(r"\bload_protected\s*\(")
PROTECTED_DECL_RE = re.compile(
    r"\bprotected_ptr\s*<[^;=]*>\s*(?P<var>\w+)\s*[=({;]"
    r"|\bauto\s+(?P<var2>\w+)\s*=\s*[^;]*\bload_protected\s*\("
)

# Explicit region escape through the typed API.
ESCAPE_RE = re.compile(r"\b(?P<var>\w+)\s*\.\s*escape\s*\(\s*\)")

# Quiescent escape hatches of guarded_ptr / published_ptr.
UNGUARDED_RE = re.compile(r"\bunguarded_(?:load|store)\s*\(")

# A non-release publish on a pointer cell readers traverse. The typed API
# makes this unwritable (publish() is release by construction), so the
# pattern targets raw std::atomic pointer cells that escaped the wrappers:
# a .store()/->store() whose argument list names memory_order_relaxed and
# whose receiver looks like a link field (child[/next/head_/root_/tail_).
PUBLISH_RELAXED_RE = re.compile(
    r"(?:child\s*\[[^\]]*\]|next\w*|head_|root_|tail_)\s*(?:\.|->)\s*"
    r"store\s*\([^;]*memory_order_relaxed"
)

# Grace-period-blocking calls (the roots of the reachability fixpoint).
SYNC_ROOT_RE = re.compile(
    r"\b(?:synchronize(?:_expedited|_rcu)?|flush_retired)\s*\("
)

# A call site: identifier followed by `(`, excluding C++ keywords and the
# noise the other patterns already classify.
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
NOT_CALLS = frozenset(
    """if while for switch return sizeof alignof static_cast const_cast
    reinterpret_cast dynamic_cast new delete assert static_assert defined
    noexcept decltype alignas operator catch throw EXPECT_EQ EXPECT_NE
    EXPECT_TRUE EXPECT_FALSE ASSERT_EQ ASSERT_TRUE TEST TEST_F""".split()
)

# Deref of a tracked handle: `var->` or `*var` (unary).
def deref_re(var: str) -> re.Pattern[str]:
    return re.compile(
        rf"\b{re.escape(var)}\s*->|(?<![\w)\]])\*\s*{re.escape(var)}\b"
    )


# Function-signature heuristic shared with lint_rcu.py: a `{`-terminated
# line whose head has a call-like shape and no control keyword.
CONTROL_KEYWORDS = re.compile(
    r"^\s*(?:if|else|for|while|switch|do|return|case|catch|namespace"
    r"|struct|class|enum|union|try)\b"
)
FUNC_NAME_RE = re.compile(r"([~\w:]+)\s*\(")


def strip_comments_and_strings(text: str) -> str:
    """Blank comments and string/char literals, preserving line structure."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        else:  # string | char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
            elif c == "\n":
                state = "code"
                out.append(c)
        i += 1
    return "".join(out)


class _Scope:
    """One open brace scope inside a function body."""

    __slots__ = ("depth", "regions")

    def __init__(self, depth: int):
        self.depth = depth
        # Regions opened in this scope; closed when the scope exits.
        self.regions: list[Region] = []


def _extract_functions(
    lines: list[str], path: pathlib.Path
) -> list[Function]:
    """Find function bodies via the signature-line heuristic.

    Nested bodies (lambdas, local classes) stay part of the enclosing
    function: the guard idioms in this codebase are RAII objects whose
    lifetime is the lexical scope, so analyzing the outermost body with a
    scope stack models them correctly.
    """
    functions: list[Function] = []
    depth = 0
    header_acc = ""
    current: Function | None = None
    entry_depth = 0

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        opens = line.count("{")
        closes = line.count("}")

        if current is None and opens:
            candidate = (header_acc + " " + line).strip()
            head = candidate.split("{", 1)[0]
            looks_like_sig = (
                "(" in head
                and not CONTROL_KEYWORDS.match(stripped)
                and not CONTROL_KEYWORDS.match(candidate)
                and not head.rstrip().endswith(("=", ",", "(", "&&", "||"))
                and ";" not in head.split("(", 1)[0]
                and "=" not in head.split("(", 1)[0]
            )
            if looks_like_sig:
                m = FUNC_NAME_RE.search(head)
                current = Function(
                    name=m.group(1) if m else "<unknown>",
                    path=path,
                    start=lineno,
                    end=lineno,
                )
                entry_depth = depth

        if stripped and not opens:
            header_acc = (header_acc + " " + stripped)[-400:]
            if stripped.endswith((";", "}")):
                header_acc = ""
        else:
            header_acc = ""

        depth += opens - closes
        if current is not None and depth <= entry_depth:
            current.end = lineno
            functions.append(current)
            current = None

    if current is not None:  # unterminated (truncated input): keep span
        current.end = len(lines)
        functions.append(current)
    return functions


def _analyze_function_body(fn: Function, lines: list[str]) -> None:
    """Populate fn.regions / fn.uses / fn.calls from its body lines."""
    scope_stack: list[_Scope] = [_Scope(0)]
    depth = 0
    tracked: dict[str, int] = {}  # protected_ptr var -> decl line

    for lineno in range(fn.start, fn.end + 1):
        line = lines[lineno - 1]
        text = line.strip()

        # Region openings bind to the *current* scope and run to its end
        # (RAII); explicit read_unlock closes the innermost read region.
        m = READ_OPEN_RE.search(line)
        if m:
            r = Region("read", m.group(0).strip().rstrip("(<"), lineno, fn.end)
            scope_stack[-1].regions.append(r)
            fn.regions.append(r)
        m = LOCK_OPEN_RE.search(line)
        if m:
            r = Region("lock", m.group(0).strip().rstrip("(<"), lineno, fn.end)
            scope_stack[-1].regions.append(r)
            fn.regions.append(r)
        if READ_CLOSE_RE.search(line):
            open_reads = [
                r for r in fn.regions if r.kind == "read" and r.end == fn.end
            ]
            if open_reads:
                open_reads[-1].end = lineno

        # New protected handles come into scope.
        for dm in PROTECTED_DECL_RE.finditer(line):
            var = dm.group("var") or dm.group("var2")
            if var:
                tracked[var] = lineno

        # Uses.
        for var in list(tracked):
            if deref_re(var).search(line):
                fn.uses.append(Use("deref", lineno, text, var))
        for em in ESCAPE_RE.finditer(line):
            fn.uses.append(Use("escape", lineno, text, em.group("var")))
        if UNGUARDED_RE.search(line):
            fn.uses.append(Use("unguarded", lineno, text))
        if PUBLISH_RELAXED_RE.search(line):
            fn.uses.append(Use("publish_relaxed", lineno, text))
        if SYNC_ROOT_RE.search(line):
            fn.is_synchronize = True
            fn.uses.append(Use("sync_call", lineno, text, "synchronize"))
        for cm in CALL_RE.finditer(line):
            callee = cm.group(1)
            if callee not in NOT_CALLS:
                fn.calls.add(callee)

        # Scope bookkeeping (after use collection: a `}`-only line closes
        # regions *after* nothing on it can use them).
        for ch in line:
            if ch == "{":
                depth += 1
                scope_stack.append(_Scope(depth))
            elif ch == "}":
                if len(scope_stack) > 1:
                    closing = scope_stack.pop()
                    for r in closing.regions:
                        if r.end == fn.end:  # not already closed by unlock
                            r.end = lineno
                depth = max(0, depth - 1)


def fallback_frontend(
    path: pathlib.Path, raw_text: str
) -> list[Function]:
    text = strip_comments_and_strings(raw_text)
    lines = text.split("\n")
    functions = _extract_functions(lines, path)
    for fn in functions:
        _analyze_function_body(fn, lines)
    return functions


# ──────────────────────────────────────────────────────────────────────
# libclang frontend (used when the bindings + a loadable library exist).
# ──────────────────────────────────────────────────────────────────────


def _load_libclang():
    try:
        import clang.cindex as ci  # type: ignore[import-not-found]
    except ImportError:
        return None
    try:
        ci.Index.create()
        return ci
    except Exception:
        # Bindings present but no loadable libclang.so — same outcome.
        return None


# Annotation tags the wrapper header attaches (see guarded_ptr.hpp).
_TAG_READ_LOCK = "rcu_read_lock"
_TAG_READ_UNLOCK = "rcu_read_unlock"
_TAG_SYNCHRONIZE = "rcu_synchronize"
_TAG_PROTECTED = "rcu_protected"


def _annotations_of(cursor) -> set[str]:
    out = set()
    for ch in cursor.get_children():
        if ch.kind.name == "ANNOTATE_ATTR":
            out.add(ch.spelling)
    return out


def libclang_frontend(
    ci, path: pathlib.Path, compile_args: list[str]
) -> list[Function]:
    """Lift the IR from a real AST.

    Regions come from RAII guard variable lifetimes (CompoundStmt extent
    of a VarDecl whose constructor is tagged rcu_read_lock) and calls to
    rcu_read_lock/rcu_read_unlock-tagged functions; derefs/escapes from
    member accesses on rcu_protected-typed values; synchronize
    reachability from rcu_synchronize-tagged callees. The structures it
    returns are identical to the fallback's, so the analysis below is
    frontend-agnostic.
    """
    index = ci.Index.create()
    tu = index.parse(str(path), args=compile_args)
    functions: list[Function] = []

    def body_of(cursor):
        for ch in cursor.get_children():
            if ch.kind.name == "COMPOUND_STMT":
                return ch
        return None

    def walk_fn(cursor):
        body = body_of(cursor)
        if body is None:
            return
        fn = Function(
            name=cursor.spelling or "<unknown>",
            path=path,
            start=body.extent.start.line,
            end=body.extent.end.line,
        )

        def visit(node, scope_end: int):
            kindname = node.kind.name
            if kindname == "VAR_DECL":
                ty = node.type.spelling
                if "protected_ptr" in ty:
                    pass  # handle decls are tracked via member refs below
                for ch in node.get_children():
                    ref = getattr(ch, "referenced", None)
                    if ref is not None:
                        tags = _annotations_of(ref)
                        if _TAG_READ_LOCK in tags:
                            fn.regions.append(
                                Region(
                                    "read",
                                    node.spelling,
                                    node.extent.start.line,
                                    scope_end,
                                )
                            )
            if kindname in ("CALL_EXPR", "CXX_MEMBER_CALL_EXPR"):
                ref = getattr(node, "referenced", None)
                tags = _annotations_of(ref) if ref is not None else set()
                nm = node.spelling or ""
                if _TAG_READ_LOCK in tags or nm == "read_lock":
                    fn.regions.append(
                        Region("read", nm, node.extent.start.line, scope_end)
                    )
                if _TAG_READ_UNLOCK in tags or nm == "read_unlock":
                    for r in fn.regions:
                        if r.kind == "read" and r.end == scope_end:
                            r.end = node.extent.start.line
                if _TAG_SYNCHRONIZE in tags or nm in (
                    "synchronize",
                    "synchronize_expedited",
                    "flush_retired",
                ):
                    fn.is_synchronize = True
                    fn.uses.append(
                        Use(
                            "sync_call",
                            node.extent.start.line,
                            nm,
                            nm,
                        )
                    )
                if nm == "escape":
                    fn.uses.append(
                        Use("escape", node.extent.start.line, nm, nm)
                    )
                if nm in ("unguarded_load", "unguarded_store"):
                    fn.uses.append(
                        Use("unguarded", node.extent.start.line, nm)
                    )
                if nm:
                    fn.calls.add(nm)
            if kindname == "MEMBER_REF_EXPR":
                # A deref of protected state: member access whose base is
                # rcu_protected-typed.
                for ch in node.get_children():
                    base_ty = ch.type.spelling if ch.type else ""
                    if "protected_ptr" in base_ty:
                        fn.uses.append(
                            Use(
                                "deref",
                                node.extent.start.line,
                                node.spelling,
                                ch.spelling,
                            )
                        )
            child_scope_end = (
                node.extent.end.line
                if kindname == "COMPOUND_STMT"
                else scope_end
            )
            for ch in node.get_children():
                visit(ch, child_scope_end)

        visit(body, body.extent.end.line)
        functions.append(fn)

    def walk(cursor):
        if cursor.kind.name in (
            "FUNCTION_DECL",
            "CXX_METHOD",
            "CONSTRUCTOR",
            "DESTRUCTOR",
            "FUNCTION_TEMPLATE",
        ):
            if (
                cursor.location.file
                and pathlib.Path(str(cursor.location.file)) == path
            ):
                walk_fn(cursor)
        for ch in cursor.get_children():
            walk(ch)

    walk(tu.cursor)
    return functions


def load_compile_args(
    cc_path: pathlib.Path | None, src: pathlib.Path
) -> list[str]:
    """Best-effort compile args for one file from compile_commands.json.

    Headers are not entries there; fall back to the args of any .cpp in
    the database (they share the include paths) or a bare -Isrc.
    """
    default = ["-std=c++20", "-Isrc", "-xc++"]
    if cc_path is None or not cc_path.exists():
        return default
    try:
        db = json.loads(cc_path.read_text())
    except (OSError, json.JSONDecodeError):
        return default
    chosen = None
    for entry in db:
        if pathlib.Path(entry.get("file", "")).resolve() == src.resolve():
            chosen = entry
            break
    if chosen is None and db:
        chosen = db[0]
    if chosen is None:
        return default
    args = chosen.get("arguments")
    if not args:
        args = chosen.get("command", "").split()
    # Drop the compiler, -c/-o pairs and the source file itself.
    out: list[str] = []
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-c", "-o"):
            skip = a == "-o"
            continue
        if a.endswith((".cpp", ".cc", ".o")):
            continue
        out.append(a)
    return out or default


# ──────────────────────────────────────────────────────────────────────
# The frontend-agnostic analysis.
# ──────────────────────────────────────────────────────────────────────

# How far above a site an `allow` annotation may sit (a short comment
# block ending in the marker directly above the statement).
ALLOW_WINDOW = 3
# How far above a function's opening line a `quiescent` annotation may sit.
QUIESCENT_WINDOW = 6

# A handle returned from a function: `return <expr>.escape()` is already
# an escape use; `return var;` of a tracked handle type is legal (the
# callee documents the contract — protected_ptr in, protected_ptr out is
# not a region transition, see search_locked_free). Storing to a field or
# a global is detected lexically in the fallback via escape() presence,
# which the typed API forces: protected_ptr has no implicit conversion to
# T*, so the only way to park the raw pointer anywhere is get()/escape().


def compute_sync_reachable(functions: list[Function]) -> set[str]:
    """One fixpoint over the name-level call graph: every function from
    which a grace-period wait is reachable."""
    reachable = {f.name for f in functions if f.is_synchronize}
    # Names like "Derived::synchronize" should match calls to
    # "synchronize"; index by last component.
    def last(name: str) -> str:
        return name.rsplit("::", 1)[-1]

    reachable_last = {last(n) for n in reachable}
    changed = True
    while changed:
        changed = False
        for f in functions:
            if f.name in reachable:
                continue
            if f.calls & reachable_last:
                reachable.add(f.name)
                reachable_last.add(last(f.name))
                changed = True
    return reachable_last


def analyze_functions(
    functions: list[Function],
    annotations: list[rcu_annotations.Annotation],
    sync_reachable: set[str],
) -> list[Finding]:
    findings: list[Finding] = []
    allow_lines = rcu_annotations.lines_with_key(annotations, "allow")
    quiescent_lines = rcu_annotations.lines_with_key(
        annotations, "quiescent"
    )

    def site_allowed(line: int) -> bool:
        return any(
            line - d in allow_lines for d in range(0, ALLOW_WINDOW + 1)
        )

    def fn_quiescent(fn: Function) -> bool:
        if any(fn.start <= ln <= fn.end for ln in quiescent_lines):
            return True
        return any(
            fn.start - d in quiescent_lines
            for d in range(1, QUIESCENT_WINDOW + 1)
        )

    def fn_allowed(fn: Function) -> bool:
        # A function-level allow (above the signature) blesses the whole
        # body — the lint's historic granularity.
        return any(
            fn.start - d in allow_lines
            for d in range(0, QUIESCENT_WINDOW + 1)
        )

    for fn in functions:
        blessed_fn = fn_quiescent(fn) or fn_allowed(fn)
        for use in fn.uses:
            open_regions = fn.open_regions(use.line)
            trace = [r.trace() for r in open_regions] or [
                "no protection region open at this line"
            ]
            if use.kind == "deref":
                if open_regions or blessed_fn or site_allowed(use.line):
                    continue
                findings.append(
                    Finding(
                        fn.path,
                        use.line,
                        fn.name,
                        "deref-outside-region",
                        f"protected handle `{use.detail}` dereferenced "
                        f"outside any read-side critical section or lock "
                        f"region in `{fn.name}`",
                        trace,
                    )
                )
            elif use.kind == "escape":
                if site_allowed(use.line) or blessed_fn:
                    continue
                findings.append(
                    Finding(
                        fn.path,
                        use.line,
                        fn.name,
                        "region-escape",
                        f"`{use.detail}.escape()` carries a protected "
                        f"pointer beyond its region without an "
                        f"`// rcu-analyze: allow (...)` stating the "
                        f"replacement proof obligation",
                        trace,
                    )
                )
            elif use.kind == "unguarded":
                if blessed_fn or site_allowed(use.line):
                    continue
                findings.append(
                    Finding(
                        fn.path,
                        use.line,
                        fn.name,
                        "quiescent-escape",
                        f"unguarded access in `{fn.name}`, which is not "
                        f"annotated `// rcu-analyze: quiescent (...)`: "
                        f"`{use.text[:70]}`",
                        trace,
                    )
                )
            elif use.kind == "publish_relaxed":
                if site_allowed(use.line) or blessed_fn:
                    continue
                findings.append(
                    Finding(
                        fn.path,
                        use.line,
                        fn.name,
                        "publish-not-release",
                        f"pointer publish without release ordering: "
                        f"`{use.text[:70]}` — route it through "
                        f"guarded_ptr::publish(), which is release by "
                        f"construction",
                        trace,
                    )
                )
            elif use.kind == "sync_call":
                read_regions = [
                    r for r in open_regions if r.kind == "read"
                ]
                if not read_regions:
                    continue
                if site_allowed(use.line):
                    continue
                findings.append(
                    Finding(
                        fn.path,
                        use.line,
                        fn.name,
                        "sync-in-read-section",
                        f"grace-period wait inside a read-side critical "
                        f"section of `{fn.name}` — self-deadlock: the "
                        f"section being waited out includes the waiter",
                        [r.trace() for r in read_regions],
                    )
                )

    return findings


def indirect_sync_findings(
    functions: list[Function],
    per_file_lines: dict[pathlib.Path, list[str]],
    sync_reachable: set[str],
    annotations_by_file: dict[
        pathlib.Path, list[rcu_annotations.Annotation]
    ],
) -> list[Finding]:
    """Flag calls to synchronize-*reachable* functions inside read regions.

    Separate from the direct check so the region trace can say which
    callee makes the call dangerous.
    """
    findings: list[Finding] = []
    direct = {"synchronize", "synchronize_expedited", "flush_retired"}
    interesting = sync_reachable - direct
    if not interesting:
        return findings
    call_res = {
        name: re.compile(rf"\b{re.escape(name)}\s*\(")
        for name in interesting
    }
    for fn in functions:
        lines = per_file_lines.get(fn.path)
        if lines is None:
            continue
        allow_lines = rcu_annotations.lines_with_key(
            annotations_by_file.get(fn.path, []), "allow"
        )
        for lineno in range(fn.start, fn.end + 1):
            read_regions = [
                r
                for r in fn.open_regions(lineno)
                if r.kind == "read" and r.start != lineno
            ]
            if not read_regions:
                continue
            line = lines[lineno - 1]
            for name, cre in call_res.items():
                if not cre.search(line):
                    continue
                if fn.name.rsplit("::", 1)[-1] == name:
                    continue  # recursion/self-definition noise
                if any(
                    lineno - d in allow_lines
                    for d in range(0, ALLOW_WINDOW + 1)
                ):
                    continue
                findings.append(
                    Finding(
                        fn.path,
                        lineno,
                        fn.name,
                        "sync-in-read-section",
                        f"call to `{name}`, from which a grace-period "
                        f"wait is reachable, inside a read-side critical "
                        f"section of `{fn.name}`",
                        [r.trace() for r in read_regions]
                        + [f"`{name}` reaches synchronize()"],
                    )
                )
    return findings


# ──────────────────────────────────────────────────────────────────────
# Driver.
# ──────────────────────────────────────────────────────────────────────


def collect_files(
    targets: list[pathlib.Path],
) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for t in targets:
        if t.is_dir():
            files.extend(sorted(t.rglob("*.hpp")))
            files.extend(sorted(t.rglob("*.cpp")))
        else:
            files.append(t)
    return files


def main() -> int:
    ap = argparse.ArgumentParser(
        description="AST-grade RCU discipline analyzer",
    )
    ap.add_argument("--root", default=None, help="repo root (default: cwd)")
    ap.add_argument(
        "--backend",
        choices=("auto", "libclang", "fallback"),
        default="auto",
        help="frontend to use (auto prefers libclang when loadable)",
    )
    ap.add_argument(
        "--compile-commands",
        default=None,
        help="compile_commands.json for the libclang backend "
        "(default: <root>/build/compile_commands.json)",
    )
    ap.add_argument(
        "--print-backend",
        action="store_true",
        help="print the selected backend and exit 0",
    )
    ap.add_argument("paths", nargs="*", help="files/dirs (default: src/)")
    args = ap.parse_args()

    root = pathlib.Path(args.root) if args.root else pathlib.Path.cwd()
    targets = [pathlib.Path(p) for p in args.paths] or [root / "src"]
    files = collect_files(targets)

    ci = None
    if args.backend in ("auto", "libclang"):
        ci = _load_libclang()
        if ci is None and args.backend == "libclang":
            print(
                "rcu_analyze: libclang backend requested but the clang "
                "python bindings / libclang library are not loadable",
                file=sys.stderr,
            )
            return 2
    backend = "libclang" if ci is not None else "fallback"
    if args.print_backend:
        print(backend)
        return 0

    cc_path = (
        pathlib.Path(args.compile_commands)
        if args.compile_commands
        else root / "build" / "compile_commands.json"
    )

    all_findings: list[Finding] = []
    all_diags: list[rcu_annotations.Diagnostic] = []
    all_functions: list[Function] = []
    per_file_lines: dict[pathlib.Path, list[str]] = {}
    annotations_by_file: dict[
        pathlib.Path, list[rcu_annotations.Annotation]
    ] = {}
    scanned = 0

    for path in files:
        try:
            raw = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            print(f"rcu_analyze: cannot read {path}: {e}", file=sys.stderr)
            return 2
        annotations, diags = rcu_annotations.parse(raw, path)
        all_diags.extend(diags)
        if rcu_annotations.file_exempt(annotations):
            continue
        annotations_by_file[path] = annotations
        stripped = strip_comments_and_strings(raw)
        per_file_lines[path] = stripped.split("\n")
        if backend == "libclang":
            try:
                fns = libclang_frontend(
                    ci, path, load_compile_args(cc_path, path)
                )
            except Exception as e:  # parse failure: fall back per file
                print(
                    f"rcu_analyze: libclang failed on {path} ({e}); "
                    f"using fallback frontend for this file",
                    file=sys.stderr,
                )
                fns = fallback_frontend(path, raw)
        else:
            fns = fallback_frontend(path, raw)
        all_functions.extend(fns)
        scanned += 1

    sync_reachable = compute_sync_reachable(all_functions)
    by_file: dict[pathlib.Path, list[Function]] = {}
    for fn in all_functions:
        by_file.setdefault(fn.path, []).append(fn)
    for path, fns in by_file.items():
        all_findings.extend(
            analyze_functions(
                fns, annotations_by_file.get(path, []), sync_reachable
            )
        )
    all_findings.extend(
        indirect_sync_findings(
            all_functions, per_file_lines, sync_reachable,
            annotations_by_file,
        )
    )

    for d in all_diags:
        print(d)
    for f in sorted(all_findings, key=lambda f: (str(f.path), f.line)):
        print(f)

    n = len(all_findings) + len(all_diags)
    if n:
        print(
            f"\nrcu_analyze[{backend}]: {len(all_findings)} finding(s), "
            f"{len(all_diags)} annotation diagnostic(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"rcu_analyze[{backend}]: clean "
        f"({scanned} files, {len(all_functions)} functions)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
