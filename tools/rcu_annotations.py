#!/usr/bin/env python3
"""rcu_annotations.py — the one annotation grammar shared by the RCU
static tools (tools/lint_rcu.py and tools/rcu_analyze.py).

Both tools read the same comment markers, so a suppression written for one
is honored by the other and the two can never disagree about a file's
status. Two spellings are accepted everywhere — `rcu-lint:` (the historic
prefix from PR 2) and `rcu-analyze:` (the analyzer's) — with an identical
key set:

    // rcu-lint: quiescent (<why no concurrent updaters exist>)
    // rcu-analyze: quiescent (...)
        The enclosing function runs in a single-owner phase (construction
        before publication, teardown after joins, post-grace-period
        scrubbing). Blesses unguarded_* calls and unprotected derefs in
        that function.

    // rcu-lint: allow (<proof obligation replacing the region>)
    // rcu-analyze: allow (...)
        The next statement (or the enclosing function, for the lint's
        function-granular rule) is protected by something the tool cannot
        see: a lock held by the caller, generation validation, an
        append-only immortal structure. Blesses escape() calls, relaxed
        CAS seed loads, and cross-region carries at that site.

    // rcu-lint: exempt-file (<why this file's safety protocol is not
    //                         lock/critical-section shaped>)
    // rcu-analyze: exempt-file (...)
        Exempts the whole file from both tools. Exists for the comparison
        baselines (lock-free CAS protocols, optimistic version
        validation), whose safety arguments the RCU discipline does not
        describe.

Unknown keys are *rejected with a diagnostic*, not silently ignored: a
typo like `rcu-lint: quiscent` used to disable nothing while looking like
it disabled something, which is the worst possible failure mode for a
suppression mechanism. parse() returns those diagnostics and both tools
exit nonzero on them.

A reason in parentheses is required: a suppression that does not say what
discharges the obligation is not a proof, it is a mute button.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

# Keys understood by both tools. Every entry must say what the *tools* do
# with it (see module docstring); adding a key here is an interface change
# for both lint_rcu.py and rcu_analyze.py.
KNOWN_KEYS = ("quiescent", "allow", "exempt-file")

# Any rcu-lint:/rcu-analyze: marker, with whatever follows the prefix
# captured for key validation. Deliberately loose so typos are *seen* and
# rejected rather than skipped.
MARKER_RE = re.compile(
    r"//\s*(?P<prefix>rcu-(?:lint|analyze)):\s*(?P<rest>[^\n]*)"
)

# A well-formed marker body: known key, then a parenthesized reason.
BODY_RE = re.compile(
    r"(?P<key>[A-Za-z-]+)\s*(?P<reason>\(.*)?$"
)


@dataclasses.dataclass(frozen=True)
class Annotation:
    path: pathlib.Path
    line: int  # 1-based line the marker appears on
    prefix: str  # "rcu-lint" or "rcu-analyze"
    key: str  # one of KNOWN_KEYS
    reason: str  # text inside the parentheses (may span lines; best-effort)


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    path: pathlib.Path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: annotation error: {self.message}"


def parse(
    text: str, path: pathlib.Path
) -> tuple[list[Annotation], list[Diagnostic]]:
    """Extract all annotations from `text`.

    Returns (annotations, diagnostics). Diagnostics cover unknown keys and
    markers missing a reason; both tools must treat any diagnostic as a
    failure (exit nonzero) so a broken suppression can never pass CI.
    """
    annotations: list[Annotation] = []
    diagnostics: list[Diagnostic] = []
    for lineno, line in enumerate(text.split("\n"), start=1):
        m = MARKER_RE.search(line)
        if m is None:
            continue
        body = BODY_RE.match(m.group("rest").strip())
        prefix = m.group("prefix")
        if body is None:
            diagnostics.append(
                Diagnostic(
                    path,
                    lineno,
                    f"`// {prefix}:` marker with no key; expected one of "
                    f"{', '.join(KNOWN_KEYS)}",
                )
            )
            continue
        key = body.group("key")
        if key not in KNOWN_KEYS:
            diagnostics.append(
                Diagnostic(
                    path,
                    lineno,
                    f"unknown annotation key `{key}` after `{prefix}:`; "
                    f"expected one of {', '.join(KNOWN_KEYS)}",
                )
            )
            continue
        reason = (body.group("reason") or "").strip().lstrip("(")
        if not body.group("reason"):
            diagnostics.append(
                Diagnostic(
                    path,
                    lineno,
                    f"`{prefix}: {key}` without a parenthesized reason; "
                    "every suppression must name the proof obligation it "
                    "discharges",
                )
            )
            continue
        annotations.append(
            Annotation(path, lineno, prefix, key, reason.rstrip(") "))
        )
    return annotations, diagnostics


def parse_file(
    path: pathlib.Path,
) -> tuple[list[Annotation], list[Diagnostic]]:
    return parse(path.read_text(encoding="utf-8"), path)


def file_exempt(annotations: list[Annotation]) -> bool:
    """True if any marker (either prefix) exempts the whole file.

    This is the single exempt-file mechanism both tools consult, so a file
    one tool skips is by construction skipped by the other.
    """
    return any(a.key == "exempt-file" for a in annotations)


def lines_with_key(annotations: list[Annotation], key: str) -> set[int]:
    """Line numbers (1-based) carrying the given key, either prefix."""
    return {a.line for a in annotations if a.key == key}
