#!/usr/bin/env python3
"""lint_rcu.py — static lint for the repo's RCU/lock discipline.

Complements the runtime rcucheck layer (src/check/): flags *call sites the
runtime can only catch if a test happens to execute them*. The rule mirrors
runtime violation class (a): a function that dereferences tree-node state
(`->child[...]`, `->key()`, `->value()`, `->next[...]`) must, somewhere in
its body, establish a protection context — open a read-side critical
section, take a lock, or carry an explicit annotation naming why neither is
needed.

Annotations use the shared grammar of tools/rcu_annotations.py — the same
one tools/rcu_analyze.py reads, with both the `rcu-lint:` and
`rcu-analyze:` prefixes accepted and the same key set (quiescent, allow,
exempt-file). A file either tool exempts is exempt for both, so the two
can never disagree on a file's status; unknown annotation keys are
rejected with a diagnostic (and a nonzero exit) instead of silently
ignored.

Fault-injection hooks (src/fault/: `fault::inject_stall(...)` /
`fault::inject_fail(...)`) are recognized annotated sites: they live by
design inside read-side sections and grace-period drivers, dereference
nothing, and are stripped from the text before scanning so a hook can
never satisfy — or trip — the deref rule on its own.

The scanner is a deliberately simple per-function brace tracker, not a
parser; the annotations keep it zero-false-positive on this codebase, and
the runtime layer backstops anything it cannot see.

Usage:
    tools/lint_rcu.py [--root DIR] [paths...]

Exits nonzero if any finding is produced (CI gate).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import rcu_annotations  # noqa: E402

# A dereference of RCU-protected node state.
DEREF_RE = re.compile(
    r"->\s*(?:child\s*\[|key\s*\(|value\s*\(|next\s*\[)"
)

# Fault-injection hook calls (src/fault/fault.hpp) — annotated injection
# sites, not node accesses; blanked out before scanning.
FAULT_HOOK_RE = re.compile(r"\bfault\s*::\s*inject_\w+\s*\([^()]*\)")

# Tokens that establish a protection context inside the function body.
# The deferred grace-period API (rcu/gp_seq.hpp) counts: a function that
# obtains a cookie via start_grace_period() / awaits one via poll(cookie)
# or synchronize(cookie) is a reclamation path — anything it dereferences
# afterwards is already unreachable and has had a full grace period
# elapse, which is exactly the protection the deref rule asks for.
#
# The ordered-operation API (DESIGN.md, "Ordered operations & snapshot
# semantics") counts too: range()/scan_chunk()/attempt_scan() run their
# visitor inside the read-side section they open themselves, and a
# snapshot() handle hands out entries materialized under such a section —
# a function that only walks one of those never needs its own guard. The
# tokens are the method-call forms; bare words like "Snapshot" would also
# match StatsSnapshot and are deliberately not used.
#
# The cop updater's transactional contexts (src/util/htm.hpp,
# src/citrus/citrus_cop.hpp) count as well: a body handed to
# run_transactions()/tx_attempt() executes inside a hardware transaction
# that subscribed the relevant lock words — any concurrent writer aborts
# the transaction, which is at least as strong as holding the locks. The
# CITRUS_COP_TX_BODY marker macro tags such lambdas explicitly.
GUARD_RE = re.compile(
    r"\b(?:"
    r"ReadGuard|MaybeReadGuard|read_lock\s*\(|rcu_read_lock"
    r"|\.lock\s*\(|->lock\s*\.|try_lock\s*\(|acquire_timed\s*\("
    r"|lock_guard|scoped_lock|unique_lock|shared_lock"
    r"|ScopedQuiescent|for_each_quiescent"
    r"|start_grace_period\s*\(|(?<=[.>])poll\s*\("
    r"|scan_chunk\s*\(|attempt_scan\s*\("
    r"|(?<=[.>])range\s*\(|(?<=[.>])snapshot\s*\("
    r"|run_transactions\s*\(|tx_attempt\s*\(|tx_begin\s*\("
    r"|CITRUS_COP_TX_BODY"
    r")"
)

# Annotation markers (shared grammar, both tool prefixes). They are
# comments, so they are translated to sentinel tokens *before* comment
# stripping; key validation happens separately via rcu_annotations.parse.
MARKER_RE = re.compile(
    r"//\s*rcu-(?:lint|analyze):\s*(quiescent|allow|exempt-file)\b"
)
SENTINELS = {
    "quiescent": "RCU_LINT_QUIESCENT_",
    "allow": "RCU_LINT_ALLOW_",
    "exempt-file": "RCU_LINT_EXEMPT_FILE_",
}
SENTINEL_RE = re.compile(r"\bRCU_LINT_(?:QUIESCENT|ALLOW)_\b")

# Start-of-function heuristic: a line ending in `{` whose head looks like a
# signature (has `(` and no control keyword).
CONTROL_KEYWORDS = re.compile(
    r"^\s*(?:if|else|for|while|switch|do|return|case|catch|namespace)\b"
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    rcu-lint markers are turned into sentinel identifiers first so they
    survive stripping.
    """
    text = MARKER_RE.sub(lambda m: SENTINELS[m.group(1)], text)
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2
                continue
            out.append(c)
            if c == quote:
                state = "code"
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, func: str, deref: str):
        self.path = path
        self.line = line
        self.func = func
        self.deref = deref

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: unprotected node dereference "
            f"`{self.deref.strip()}` in `{self.func}` — no read-side "
            f"critical section, lock acquisition or rcu-lint annotation "
            f"in this function"
        )


def function_name(header: str) -> str:
    m = re.search(r"([~\w:]+)\s*\(", header)
    return m.group(1) if m else "<unknown>"


def scan_file(
    path: pathlib.Path,
) -> tuple[list[Finding], list[rcu_annotations.Diagnostic]]:
    raw = path.read_text(encoding="utf-8")
    annotations, diagnostics = rcu_annotations.parse(raw, path)
    if rcu_annotations.file_exempt(annotations):
        return [], diagnostics
    text = strip_comments_and_strings(raw)
    text = FAULT_HOOK_RE.sub("", text)
    lines = text.split("\n")

    findings: list[Finding] = []
    # Stack of open function scopes: (name, brace_depth_at_entry,
    # guarded_flag, derefs list of (line, text)).
    func_stack: list[dict] = []
    depth = 0
    header_acc = ""  # accumulates a potential multi-line signature

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        opens = line.count("{")
        closes = line.count("}")

        # Detect a function body opening at this line.
        if opens and not CONTROL_KEYWORDS.match(header_acc + " " + line):
            candidate = (header_acc + " " + line).strip()
            head = candidate.split("{", 1)[0]
            looks_like_sig = (
                "(" in head
                and not head.rstrip().endswith(("=", ",", "(") )
                and ";" not in head.split("(", 1)[0]
                and "=" not in head.split("(", 1)[0]
            )
            if looks_like_sig and func_stack and not any(
                f["is_func"] for f in func_stack
            ):
                looks_like_sig = looks_like_sig  # lambdas inside structs ok
            if looks_like_sig:
                func_stack.append(
                    {
                        "name": function_name(head),
                        "entry_depth": depth,
                        # An annotation above the signature blesses the body.
                        "guarded": bool(SENTINEL_RE.search(candidate)),
                        "derefs": [],
                        "is_func": True,
                    }
                )
        if stripped and not opens:
            # Keep at most a few lines of signature continuation.
            header_acc = (header_acc + " " + stripped)[-400:]
            if stripped.endswith((";", "}")):
                header_acc = ""
        else:
            header_acc = ""

        # Classify the line's content against the innermost open function.
        if func_stack:
            top = func_stack[-1]
            if GUARD_RE.search(line) or SENTINEL_RE.search(line):
                top["guarded"] = True
            m = DEREF_RE.search(line)
            if m:
                top["derefs"].append((lineno, line.strip()[:60]))

        depth += opens - closes

        # Close any function scopes whose body ended.
        while func_stack and depth <= func_stack[-1]["entry_depth"]:
            done = func_stack.pop()
            if done["derefs"] and not done["guarded"]:
                for dline, dtext in done["derefs"]:
                    findings.append(Finding(path, dline, done["name"], dtext))
            # A guarded inner scope does not bless the outer one, but an
            # unguarded inner deref already reported stays reported.

    return findings, diagnostics


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None, help="repo root (default: cwd)")
    ap.add_argument("paths", nargs="*", help="files/dirs (default: src/)")
    args = ap.parse_args()

    root = pathlib.Path(args.root) if args.root else pathlib.Path.cwd()
    targets = [pathlib.Path(p) for p in args.paths] or [root / "src"]

    files: list[pathlib.Path] = []
    for t in targets:
        if t.is_dir():
            files.extend(sorted(t.rglob("*.hpp")))
            files.extend(sorted(t.rglob("*.cpp")))
        else:
            files.append(t)

    findings: list[Finding] = []
    diagnostics: list[rcu_annotations.Diagnostic] = []
    for f in files:
        file_findings, file_diags = scan_file(f)
        findings.extend(file_findings)
        diagnostics.extend(file_diags)

    for diag in diagnostics:
        print(diag)
    for finding in findings:
        print(finding)
    if findings or diagnostics:
        print(
            f"\nlint_rcu: {len(findings)} finding(s), "
            f"{len(diagnostics)} annotation diagnostic(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_rcu: clean ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
