// A read-mostly key/value cache in front of a slow "backing store" — the
// classic RCU deployment scenario (the kernel uses RCU for exactly this
// shape of workload). Lookup threads hit the Citrus tree wait-free;
// occasional misses fetch from the simulated store and insert; an eviction
// thread continuously deletes random entries to model capacity pressure,
// exercising the concurrent-updater path that distinguishes Citrus from
// earlier RCU trees (a Bonsai/relativistic-RB cache would serialize the
// miss-fill and eviction traffic on one lock).
//
// Run: ./kv_cache [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

// Simulated slow backing store: deterministic value derivation plus an
// artificial latency.
long backing_store_fetch(long key) {
  std::this_thread::sleep_for(std::chrono::microseconds(20));
  return key * 1000 + 7;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  constexpr long kKeySpace = 20000;
  constexpr int kLookupThreads = 3;

  citrus::rcu::CounterFlagRcu domain;
  citrus::core::CitrusTree<long, long> cache(domain);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> wrong_values{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kLookupThreads; ++t) {
    threads.emplace_back([&, t] {
      citrus::rcu::CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 1);
      // Zipf-ish hot set: most lookups to a small prefix.
      while (!stop.load(std::memory_order_relaxed)) {
        const bool hot = rng.chance(9, 10);
        const long key = static_cast<long>(
            hot ? rng.bounded(kKeySpace / 100) : rng.bounded(kKeySpace));
        if (const auto v = cache.find(key)) {
          if (*v != key * 1000 + 7) wrong_values.fetch_add(1);
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Miss: fetch and fill. Concurrent fills of the same key are
          // fine — insert is atomic and the loser just discards.
          cache.insert(key, backing_store_fetch(key));
          misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Eviction thread: random replacement under capacity pressure.
  threads.emplace_back([&] {
    citrus::rcu::CounterFlagRcu::Registration reg(domain);
    citrus::util::Xoshiro256 rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      if (cache.size() > 4000) {
        if (cache.erase(static_cast<long>(rng.bounded(kKeySpace)))) {
          evictions.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& th : threads) th.join();

  const auto h = hits.load();
  const auto m = misses.load();
  std::printf("lookups: %llu (%.1f%% hit rate), evictions: %llu\n",
              static_cast<unsigned long long>(h + m),
              100.0 * static_cast<double>(h) / static_cast<double>(h + m ? h + m : 1),
              static_cast<unsigned long long>(evictions.load()));
  std::printf("cache size at shutdown: %zu, wrong values observed: %llu\n",
              cache.size(),
              static_cast<unsigned long long>(wrong_values.load()));
  const auto rep = cache.check_structure();
  std::printf("structure: %s\n", rep.ok ? "ok" : rep.error.c_str());
  return (rep.ok && wrong_values.load() == 0) ? 0 : 1;
}
