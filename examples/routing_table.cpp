// An IPv4 longest-prefix-match routing table built from Citrus trees —
// modeled on the kernel's RCU-protected FIB, but with *concurrent* route
// updates (multiple BGP sessions flapping at once), which coarse-grained
// RCU structures serialize.
//
// Design: one Citrus tree per prefix length (/8 .. /32), keyed by the
// masked network address. A lookup probes lengths from most to least
// specific; each probe is a wait-free contains inside its own read-side
// critical section. Updaters add and withdraw routes concurrently.
//
// Run: ./routing_table [seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::core::CitrusTree;
using citrus::rcu::CounterFlagRcu;

struct Route {
  std::uint32_t next_hop;
};

class RoutingTable {
 public:
  static constexpr int kMinPrefix = 8;
  static constexpr int kMaxPrefix = 32;

  explicit RoutingTable(CounterFlagRcu& domain) {
    for (int len = kMinPrefix; len <= kMaxPrefix; ++len) {
      tables_[len - kMinPrefix] =
          std::make_unique<CitrusTree<std::uint32_t, Route>>(domain);
    }
  }

  static std::uint32_t mask(std::uint32_t addr, int len) {
    return len == 0 ? 0 : addr & (~0u << (32 - len));
  }

  bool add_route(std::uint32_t network, int len, Route route) {
    return table(len).insert(mask(network, len), route);
  }

  bool withdraw(std::uint32_t network, int len) {
    return table(len).erase(mask(network, len));
  }

  // Longest-prefix match: most specific table first.
  std::optional<Route> lookup(std::uint32_t addr) const {
    for (int len = kMaxPrefix; len >= kMinPrefix; --len) {
      if (auto r = table(len).find(mask(addr, len))) return r;
    }
    return std::nullopt;
  }

  std::size_t total_routes() const {
    std::size_t n = 0;
    for (const auto& t : tables_) n += t->size();
    return n;
  }

 private:
  CitrusTree<std::uint32_t, Route>& table(int len) {
    return *tables_[len - kMinPrefix];
  }
  const CitrusTree<std::uint32_t, Route>& table(int len) const {
    return *tables_[len - kMinPrefix];
  }

  std::unique_ptr<CitrusTree<std::uint32_t, Route>>
      tables_[kMaxPrefix - kMinPrefix + 1];
};

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 1.0;

  CounterFlagRcu domain;  // one domain shared by all 25 per-length trees
  RoutingTable fib(domain);

  // Static default-ish coverage so lookups usually resolve.
  {
    CounterFlagRcu::Registration reg(domain);
    for (std::uint32_t net = 0; net < 256; ++net) {
      fib.add_route(net << 24, 8, Route{net + 1});
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<std::uint64_t> churn{0};

  std::vector<std::thread> threads;
  // Data-plane threads: pure lookups.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto addr = static_cast<std::uint32_t>(rng());
        if (fib.lookup(addr)) resolved.fetch_add(1, std::memory_order_relaxed);
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Control-plane threads: concurrent route churn ("BGP sessions").
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto net = static_cast<std::uint32_t>(rng());
        const int len = 9 + static_cast<int>(rng.bounded(24));  // /9../32
        if (rng.bounded(2) == 0) {
          fib.add_route(net, len, Route{net % 64});
        } else {
          fib.withdraw(net, len);
        }
        churn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& th : threads) th.join();

  std::printf("lookups: %llu (%.2f%% resolved), route churn ops: %llu\n",
              static_cast<unsigned long long>(lookups.load()),
              100.0 * static_cast<double>(resolved.load()) /
                  static_cast<double>(lookups.load() ? lookups.load() : 1),
              static_cast<unsigned long long>(churn.load()));
  std::printf("routes installed at shutdown: %zu\n", fib.total_routes());
  // Every /8 is covered, so everything must resolve.
  return resolved.load() == lookups.load() ? 0 : 1;
}
