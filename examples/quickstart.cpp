// Quickstart: the Citrus tree as a concurrent dictionary in five minutes.
//
//   1. Create an RCU domain (the synchronization substrate).
//   2. Create a CitrusTree on the domain.
//   3. Every thread that touches the tree holds a Registration.
//   4. insert / find / contains / erase from any number of threads.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"

int main() {
  // The domain provides rcu_read_lock / rcu_read_unlock / synchronize_rcu.
  // CounterFlagRcu is the paper's scalable implementation; trees and other
  // structures can share one domain.
  citrus::rcu::CounterFlagRcu domain;

  // Key and value types only need operator< on the key. Memory
  // reclamation is on by default (deleted nodes are recycled after a
  // grace period).
  citrus::core::CitrusTree<long, long> tree(domain);

  {
    // Each thread registers with the domain for as long as it uses the
    // tree (RAII, like urcu's rcu_register_thread).
    citrus::rcu::CounterFlagRcu::Registration reg(domain);

    tree.insert(2, 20);
    tree.insert(1, 10);
    tree.insert(3, 30);
    std::printf("size after 3 inserts: %zu\n", tree.size());

    if (auto v = tree.find(2)) std::printf("find(2) = %ld\n", *v);
    std::printf("contains(9): %s\n", tree.contains(9) ? "yes" : "no");

    tree.erase(2);
    std::printf("after erase(2), contains(2): %s\n",
                tree.contains(2) ? "yes" : "no");
  }

  // Concurrent use: readers are wait-free; updaters use fine-grained
  // locks internally and never block readers.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&domain, &tree, t] {
      citrus::rcu::CounterFlagRcu::Registration reg(domain);
      for (long i = 0; i < 10000; ++i) {
        const long k = (t * 10000) + i;
        tree.insert(k, k * 2);
        if (i % 3 == 0) tree.erase(k);
        tree.contains(k);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::printf("final size: %zu (expected %d)\n", tree.size(),
              4 * 10000 - 4 * (10000 / 3 + 1));
  const auto rep = tree.check_structure();
  std::printf("structure check: %s\n", rep.ok ? "ok" : rep.error.c_str());
  const auto stats = tree.stats();
  std::printf("two-child deletes: %lu, recycled nodes: %lu, grace periods: %lu\n",
              (unsigned long)stats.two_child_erases,
              (unsigned long)stats.recycled_nodes,
              (unsigned long)domain.synchronize_calls());
  return rep.ok ? 0 : 1;
}
