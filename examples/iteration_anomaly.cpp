// Figure 1 of the paper, live: why Citrus does *not* offer a concurrent
// iterator.
//
// "Since each reader may observe a different permutation of the writes to
// the data structure, the values returned by r1 and r2 are such that they
// observed the updates in different order" — two concurrent in-order
// traversals of a tree under fine-grained-locked updates can each observe
// a set of keys that the other contradicts: r1 sees the effect of delete
// A but not delete B, r2 sees B but not A. No single ordering of the two
// deletes explains both views, so naive iteration is not linearizable.
//
// This program runs two scanner threads against a Citrus tree while
// updaters delete/reinsert two witness keys, and counts "crossed" pairs of
// observations. It then runs the same experiment against Bonsai snapshots
// (which are immutable copies, the trade-off of its single global writer
// lock) where crossings cannot occur.
//
// Run: ./iteration_anomaly [rounds]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "baselines/bonsai.hpp"
#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;

constexpr long kWitnessA = 100;
constexpr long kWitnessB = 200;
constexpr int kFiller = 64;

struct View {
  bool saw_a;
  bool saw_b;
};

// Naive in-order scan of the Citrus tree via repeated point queries — the
// moral equivalent of an iterator that walks the structure while updates
// run. (Citrus deliberately exposes no concurrent iterator; this simulates
// one operation at a time, exactly like Figure 1's readers.)
template <typename Tree>
View scan(const Tree& tree) {
  View v{};
  // Walk "left subtree" (keys < 150) then "right subtree".
  for (long k = 0; k <= 150; ++k) {
    if (k == kWitnessA) v.saw_a = tree.contains(k);
  }
  for (long k = 151; k <= 300; ++k) {
    if (k == kWitnessB) v.saw_b = tree.contains(k);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 400;

  // ---- Part 1: Citrus under concurrent deletes --------------------
  CounterFlagRcu domain;
  citrus::core::CitrusTree<long, long> tree(domain);
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < kFiller; ++k) tree.insert(k * 5, k);
  }

  std::atomic<bool> stop{false};
  std::atomic<long> crossings{0};

  auto scanner = [&](bool a_first) {
    CounterFlagRcu::Registration reg(domain);
    while (!stop.load(std::memory_order_relaxed)) {
      // Two scans per round in opposite subtree order, mimicking r1/r2
      // progress skew from Figure 1.
      const View v = scan(tree);
      // Record asymmetric views: saw exactly one witness.
      if (v.saw_a != v.saw_b) {
        crossings.fetch_add(a_first == v.saw_a ? 1 : -1,
                            std::memory_order_relaxed);
      }
    }
  };
  std::thread r1(scanner, true);
  std::thread r2(scanner, false);

  {
    CounterFlagRcu::Registration reg(domain);
    for (int i = 0; i < rounds; ++i) {
      tree.insert(kWitnessA, 1);
      tree.insert(kWitnessB, 1);
      tree.erase(kWitnessA);
      tree.erase(kWitnessB);
    }
    stop.store(true);
  }
  r1.join();
  r2.join();
  std::printf(
      "citrus: %ld asymmetric scan views observed across %d update rounds\n"
      "        (non-zero = concurrent readers disagreed about update order,\n"
      "         the Figure 1 anomaly — hence no iterator in the Citrus API)\n",
      std::labs(crossings.load()), rounds);

  // ---- Part 2: Bonsai snapshots are immune ------------------------
  citrus::baselines::BonsaiTree<long, long> bonsai(domain);
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < kFiller; ++k) bonsai.insert(k * 5, k);
  }
  stop.store(false);
  std::atomic<long> torn{0};
  auto snapshotter = [&] {
    CounterFlagRcu::Registration reg(domain);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = bonsai.snapshot();
      // A snapshot is one immutable version: it is always sorted and
      // duplicate-free; witnesses appear/disappear atomically per version.
      if (!std::is_sorted(snap.begin(), snap.end())) torn.fetch_add(1);
    }
  };
  std::thread s1(snapshotter), s2(snapshotter);
  {
    CounterFlagRcu::Registration reg(domain);
    for (int i = 0; i < rounds; ++i) {
      bonsai.insert(kWitnessA, 1);
      bonsai.insert(kWitnessB, 1);
      bonsai.erase(kWitnessA);
      bonsai.erase(kWitnessB);
    }
    stop.store(true);
  }
  s1.join();
  s2.join();
  std::printf(
      "bonsai: %ld torn snapshots (always 0 — path-copying gives atomic\n"
      "        multi-item reads, the capability Citrus trades away for\n"
      "        concurrent updaters)\n",
      torn.load());
  return 0;
}
