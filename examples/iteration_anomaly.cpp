// Figure 1 of the paper — and its resolution.
//
// "Since each reader may observe a different permutation of the writes to
// the data structure, the values returned by r1 and r2 are such that they
// observed the updates in different order" — an in-order traversal that
// walks the tree while updates run can observe a set of keys that no
// single point in time contained. Historically this program only
// *demonstrated* the anomaly; Citrus deliberately exposed no iterator.
//
// The dictionary API now has validated range scans (see DESIGN.md,
// "Ordered operations & snapshot semantics"), so this runs as a resolved
// regression with exit-code asserts:
//
//   Part 1 replays Figure 1 deterministically: a staged naive scan reads
//   witness A, two deletes land, then it reads witness B. The observed set
//   {A} corresponds to no instant ({A,B} -> {B} -> {}), and the joint
//   multi-key linearizability checker must reject it.
//
//   Part 2 runs real concurrent scanners against the same deletion
//   workload, but through CitrusTree::range — the seqlock-validated scan
//   whose result is atomic. Every recorded history must check out.
//
// Run: ./iteration_anomaly [rounds]   (exit 0 = regression holds)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "lineariz/checker.hpp"
#include "rcu/counter_flag_rcu.hpp"

namespace {

using citrus::lineariz::check_multikey_history;
using citrus::lineariz::HistoryRecorder;
using citrus::lineariz::OpType;
using citrus::rcu::CounterFlagRcu;

constexpr long kWitnessA = 101;
constexpr long kWitnessB = 201;
constexpr int kFiller = 64;  // keys k*5, disjoint from the witnesses

// Part 1: the staged Figure-1 interleaving, one step at a time. Returns
// true iff the checker correctly rejects the torn observation.
bool figure1_detected(citrus::core::CitrusTree<long, long>& tree) {
  HistoryRecorder rec(1);
  auto t = rec.invoke();
  tree.insert(kWitnessA, 1);
  rec.record(0, kWitnessA, OpType::kInsert, true, t);
  t = rec.invoke();
  tree.insert(kWitnessB, 1);
  rec.record(0, kWitnessB, OpType::kInsert, true, t);

  // The "iterator" starts: it passes witness A while A is still there...
  const auto scan_start = rec.invoke();
  const bool saw_a = tree.contains(kWitnessA);

  // ...both deletes land in the middle of the walk...
  t = rec.invoke();
  tree.erase(kWitnessA);
  rec.record(0, kWitnessA, OpType::kErase, true, t);
  t = rec.invoke();
  tree.erase(kWitnessB);
  rec.record(0, kWitnessB, OpType::kErase, true, t);

  // ...and it reaches witness B only afterwards.
  const bool saw_b = tree.contains(kWitnessB);
  std::vector<std::int64_t> observed;
  if (saw_a) observed.push_back(kWitnessA);
  if (saw_b) observed.push_back(kWitnessB);
  rec.record_range(0, kWitnessA, kWitnessB, observed, scan_start);

  // {A} without {B}: no instant of {A,B} -> {B} -> {} looks like that.
  const auto r = check_multikey_history(rec, {});
  return saw_a && !saw_b && !r.linearizable;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 200;

  CounterFlagRcu domain;
  citrus::core::CitrusTree<long, long> tree(domain);
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < kFiller; ++k) tree.insert(k * 5, k);
  }

  // ---- Part 1: the anomaly, reproduced and caught -----------------
  bool detected;
  {
    CounterFlagRcu::Registration reg(domain);
    detected = figure1_detected(tree);
  }
  std::printf("figure 1 anomaly: naive staged scan observed {A} of "
              "{A,B}->{B}->{}; checker %s it\n",
              detected ? "rejected" : "MISSED");
  if (!detected) return 1;

  // ---- Part 2: validated range scans are atomic -------------------
  // Two scanner threads run CitrusTree::range over the witness interval
  // while the main thread cycles the witnesses. Every (updates + scans)
  // history of every round must be linearizable.
  std::atomic<int> torn{0};
  std::atomic<long> scans_done{0};
  constexpr int kScansPerThread = 8;  // 12 updates + 16 scans = 28 events
  for (int i = 0; i < rounds; ++i) {
    HistoryRecorder rec(3);
    auto scanner = [&](int tid) {
      CounterFlagRcu::Registration reg(domain);
      for (int s = 0; s < kScansPerThread; ++s) {
        const auto t = rec.invoke();
        std::vector<std::int64_t> observed;
        tree.range(kWitnessA, kWitnessB, [&](const long& k, const long&) {
          if (k == kWitnessA || k == kWitnessB) observed.push_back(k);
          return true;
        });
        rec.record_range(tid, kWitnessA, kWitnessB, std::move(observed), t);
        scans_done.fetch_add(1, std::memory_order_relaxed);
      }
    };
    std::thread r1(scanner, 1), r2(scanner, 2);
    {
      CounterFlagRcu::Registration reg(domain);
      // {} -> {A} -> {A,B} -> {B} -> {}: every strict subset transition
      // appears, so a torn scan would have plenty to mis-observe.
      const std::pair<long, OpType> steps[] = {
          {kWitnessA, OpType::kInsert}, {kWitnessB, OpType::kInsert},
          {kWitnessA, OpType::kErase},  {kWitnessB, OpType::kErase}};
      for (int lap = 0; lap < 3; ++lap) {
        for (const auto& [key, op] : steps) {
          const auto t = rec.invoke();
          const bool ok =
              op == OpType::kInsert ? tree.insert(key, 1) : tree.erase(key);
          rec.record(0, key, op, ok, t);
        }
      }
    }
    r1.join();
    r2.join();
    const auto r = check_multikey_history(rec, {});
    if (!r.linearizable) {
      torn.fetch_add(1);
      std::fprintf(stderr, "round %d: %s\n", i, r.detail.c_str());
    }
  }
  std::printf("validated scans: %ld concurrent range() calls across %d "
              "rounds, %d torn (must be 0)\n",
              scans_done.load(), rounds, torn.load());
  return torn.load() == 0 ? 0 : 1;
}
