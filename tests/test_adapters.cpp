// Type-erased adapters and the algorithm registry used by the figure
// benches: the redesigned Options/StatsSnapshot/StructureReport API.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "adapters/idictionary.hpp"

namespace {

using citrus::adapters::make_dictionary;
using citrus::adapters::Options;
using citrus::adapters::registered_dictionaries;

TEST(Registry, ContainsAllPaperAlgorithms) {
  const auto names = registered_dictionaries();
  for (const char* expected :
       {"citrus", "citrus-std-rcu", "citrus-epoch", "citrus-reclaim",
        "citrus-mutex", "citrus-shard4", "citrus-shard16", "citrus-shard64",
        "rbtree", "bonsai", "avl", "lockfree", "skiplist", "rcu-hash"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing " << expected;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_dictionary("no-such-tree"), std::invalid_argument);
}

TEST(Registry, EveryFactoryRoundTrips) {
  for (const auto& name : registered_dictionaries()) {
    auto dict = make_dictionary(name);
    ASSERT_NE(dict, nullptr) << name;
    EXPECT_EQ(dict->name(), name);
    const auto scope = dict->enter_thread();
    EXPECT_TRUE(dict->insert(1, 10)) << name;
    EXPECT_FALSE(dict->insert(1, 20)) << name;
    EXPECT_TRUE(dict->contains(1)) << name;
    EXPECT_EQ(dict->find(1), 10) << name;
    EXPECT_EQ(dict->size(), 1u) << name;
    EXPECT_TRUE(dict->erase(1)) << name;
    EXPECT_FALSE(dict->contains(1)) << name;
    const auto rep = dict->check_structure();
    EXPECT_TRUE(rep.ok) << name << ": " << rep.error;
  }
}

TEST(Registry, StatsSnapshotReportsGracePeriods) {
  auto dict = make_dictionary("citrus");
  const auto scope = dict->enter_thread();
  // Two-child delete drives synchronize_rcu.
  for (std::int64_t k : {50, 30, 70, 60, 80}) dict->insert(k, k);
  const auto before = dict->stats().grace_periods;
  EXPECT_TRUE(dict->erase(50));
  EXPECT_GT(dict->stats().grace_periods, before);
}

TEST(Registry, ReclaimToggleOverridesNameDefault) {
  // "citrus" defaults to the paper's leak mode; reclaim=true switches it
  // to DefaultTraits, observable through the recycled-node counter after
  // enough erases to fill a retire batch.
  Options opt;
  opt.reclaim = true;
  auto dict = make_dictionary("citrus", opt);
  const auto scope = dict->enter_thread();
  for (std::int64_t k = 0; k < 400; ++k) dict->insert(k, k);
  for (std::int64_t k = 0; k < 400; ++k) dict->erase(k);
  EXPECT_GT(dict->stats().recycled_nodes, 0u);

  // And reclaim=false turns it off for "citrus-reclaim".
  Options off;
  off.reclaim = false;
  auto leaky = make_dictionary("citrus-reclaim", off);
  const auto scope2 = leaky->enter_thread();
  for (std::int64_t k = 0; k < 400; ++k) leaky->insert(k, k);
  for (std::int64_t k = 0; k < 400; ++k) leaky->erase(k);
  EXPECT_EQ(leaky->stats().recycled_nodes, 0u);
}

TEST(Registry, ShardCountOptionOverridesNameDefault) {
  Options opt;
  opt.shards = 8;
  auto dict = make_dictionary("citrus-shard4", opt);
  EXPECT_EQ(dict->stats().shards.size(), 8u);

  auto by_name = make_dictionary("citrus-shard4");
  EXPECT_EQ(by_name->stats().shards.size(), 4u);

  Options bad;
  bad.shards = 6;  // not a power of two
  EXPECT_THROW(make_dictionary("citrus-shard4", bad), std::invalid_argument);
}

TEST(Registry, ShardedStatsBreakdownSumsToAggregate) {
  auto dict = make_dictionary("citrus-shard4");
  const auto scope = dict->enter_thread();
  // Shuffled insertion order: sequential inserts would build degenerate
  // per-shard paths whose nodes never have two children, and only
  // two-child deletes drive synchronize_rcu in bench (no-reclaim) mode.
  for (std::int64_t k = 0; k < 512; ++k) {
    const std::int64_t mixed = (k * 269) % 512;
    dict->insert(mixed, mixed);
  }
  // Force two-child deletes across shards.
  for (std::int64_t k = 0; k < 512; k += 3) dict->erase(k);
  const auto snap = dict->stats();
  ASSERT_EQ(snap.shards.size(), 4u);
  std::uint64_t gp = 0;
  std::size_t sz = 0;
  for (const auto& s : snap.shards) {
    gp += s.grace_periods;
    sz += s.size;
  }
  EXPECT_EQ(gp, snap.grace_periods);
  EXPECT_EQ(sz, dict->size());
  EXPECT_GT(snap.grace_periods, 0u);
}

TEST(Registry, UnshardedSnapshotsHaveNoShardBreakdown) {
  for (const char* name : {"citrus", "avl", "rcu-hash"}) {
    auto dict = make_dictionary(name);
    EXPECT_TRUE(dict->stats().shards.empty()) << name;
  }
}

TEST(Registry, CheckStructureReportsCounts) {
  auto dict = make_dictionary("citrus");
  const auto scope = dict->enter_thread();
  for (std::int64_t k = 0; k < 100; ++k) dict->insert(k, k);
  const auto rep = dict->check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, 100u);
  EXPECT_GT(rep.height, 0u);
}

TEST(Registry, AdaptersSurviveMultiThreadedUse) {
  for (const auto& name : registered_dictionaries()) {
    auto dict = make_dictionary(name);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&dict, t] {
        const auto scope = dict->enter_thread();
        for (int i = 0; i < 3000; ++i) {
          const std::int64_t k = (t * 31 + i * 7) % 128;
          if (i % 3 == 0) {
            dict->insert(k, k);
          } else if (i % 3 == 1) {
            dict->erase(k);
          } else {
            dict->contains(k);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const auto rep = dict->check_structure();
    EXPECT_TRUE(rep.ok) << name << ": " << rep.error;
  }
}

}  // namespace
