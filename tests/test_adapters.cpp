// Type-erased adapters and the algorithm registry used by the figure
// benches.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "adapters/idictionary.hpp"

namespace {

using citrus::adapters::make_dictionary;
using citrus::adapters::registered_dictionaries;

TEST(Registry, ContainsAllPaperAlgorithms) {
  const auto names = registered_dictionaries();
  for (const char* expected :
       {"citrus", "citrus-std-rcu", "citrus-epoch", "citrus-reclaim",
        "citrus-mutex", "rbtree", "bonsai", "avl", "lockfree", "skiplist", "rcu-hash"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing " << expected;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_dictionary("no-such-tree"), std::invalid_argument);
}

TEST(Registry, EveryFactoryRoundTrips) {
  for (const auto& name : registered_dictionaries()) {
    auto dict = make_dictionary(name);
    ASSERT_NE(dict, nullptr) << name;
    EXPECT_EQ(dict->name(), name);
    const auto scope = dict->enter_thread();
    EXPECT_TRUE(dict->insert(1, 10)) << name;
    EXPECT_FALSE(dict->insert(1, 20)) << name;
    EXPECT_TRUE(dict->contains(1)) << name;
    EXPECT_EQ(dict->find(1), 10) << name;
    EXPECT_EQ(dict->size(), 1u) << name;
    EXPECT_TRUE(dict->erase(1)) << name;
    EXPECT_FALSE(dict->contains(1)) << name;
    std::string err;
    EXPECT_TRUE(dict->check_structure(&err)) << name << ": " << err;
  }
}

TEST(Registry, GracePeriodCountersWiredThrough) {
  auto dict = make_dictionary("citrus");
  const auto scope = dict->enter_thread();
  // Two-child delete drives synchronize_rcu.
  for (std::int64_t k : {50, 30, 70, 60, 80}) dict->insert(k, k);
  const auto before = dict->grace_periods();
  EXPECT_TRUE(dict->erase(50));
  EXPECT_GT(dict->grace_periods(), before);
}

TEST(Registry, AdaptersSurviveMultiThreadedUse) {
  for (const auto& name : registered_dictionaries()) {
    auto dict = make_dictionary(name);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&dict, t] {
        const auto scope = dict->enter_thread();
        for (int i = 0; i < 3000; ++i) {
          const std::int64_t k = (t * 31 + i * 7) % 128;
          if (i % 3 == 0) {
            dict->insert(k, k);
          } else if (i % 3 == 1) {
            dict->erase(k);
          } else {
            dict->contains(k);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    std::string err;
    EXPECT_TRUE(dict->check_structure(&err)) << name << ": " << err;
  }
}

}  // namespace
