// End-to-end linearizability testing (the paper's Theorem 11): record a
// concurrent history against each dictionary and verify a valid
// linearization exists for every key. The key space and duration are sized
// so per-key histories stay within the checker's 64-event limit.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "adapters/idictionary.hpp"
#include "baselines/avl_bronson.hpp"
#include "baselines/bonsai.hpp"
#include "baselines/lazy_skiplist.hpp"
#include "baselines/lockfree_bst.hpp"
#include "baselines/rcu_rbtree.hpp"
#include "citrus/citrus_tree.hpp"
#include "lineariz/checker.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::lineariz::CheckResult;
using citrus::lineariz::HistoryRecorder;
using citrus::lineariz::OpType;
using citrus::rcu::CounterFlagRcu;

template <typename Tree, typename Rcu>
CheckResult record_and_check(int threads, int ops_per_thread,
                             std::int64_t key_range, std::uint64_t seed) {
  Rcu domain;
  Tree tree(domain);
  // Prefill half the range so deletes and finds hit often.
  std::vector<std::int64_t> initial;
  {
    typename Rcu::Registration reg(domain);
    for (std::int64_t k = 0; k < key_range; k += 2) {
      tree.insert(k, k);
      initial.push_back(k);
    }
  }
  HistoryRecorder recorder(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      typename Rcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(seed + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        const auto key =
            static_cast<std::int64_t>(rng.bounded(key_range));
        const auto inv = recorder.invoke();
        switch (rng.bounded(3)) {
          case 0:
            recorder.record(t, key, OpType::kInsert, tree.insert(key, key),
                            inv);
            break;
          case 1:
            recorder.record(t, key, OpType::kErase, tree.erase(key), inv);
            break;
          default:
            recorder.record(t, key, OpType::kContains, tree.contains(key),
                            inv);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  return citrus::lineariz::check_history(recorder, initial);
}

// Same harness over a type-erased dictionary from the registry — used for
// the sharded composite, whose thread registration (all shard domains) is
// wrapped by enter_thread().
CheckResult record_and_check_dict(citrus::adapters::IDictionary& dict,
                                  int threads, int ops_per_thread,
                                  std::int64_t key_range, std::uint64_t seed) {
  std::vector<std::int64_t> initial;
  {
    const auto scope = dict.enter_thread();
    for (std::int64_t k = 0; k < key_range; k += 2) {
      dict.insert(k, k);
      initial.push_back(k);
    }
  }
  HistoryRecorder recorder(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const auto scope = dict.enter_thread();
      citrus::util::Xoshiro256 rng(seed + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        const auto key = static_cast<std::int64_t>(rng.bounded(key_range));
        const auto inv = recorder.invoke();
        switch (rng.bounded(3)) {
          case 0:
            recorder.record(t, key, OpType::kInsert, dict.insert(key, key),
                            inv);
            break;
          case 1:
            recorder.record(t, key, OpType::kErase, dict.erase(key), inv);
            break;
          default:
            recorder.record(t, key, OpType::kContains, dict.contains(key),
                            inv);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  return citrus::lineariz::check_history(recorder, initial);
}

// Parameters chosen so expected events/key = threads*ops/range ~ 24 << 64.
constexpr int kThreads = 4;
constexpr int kOps = 1500;
constexpr std::int64_t kRange = 512;

TEST(Linearizability, Citrus) {
  const auto r = record_and_check<citrus::core::CitrusTree<std::int64_t, std::int64_t>,
                                  CounterFlagRcu>(kThreads, kOps, kRange, 1);
  EXPECT_TRUE(r.linearizable)
      << "key " << r.failing_key << ": " << r.detail;
  EXPECT_GT(r.events_checked, 0u);
}

TEST(Linearizability, CitrusOnGlobalLockRcu) {
  using Tree = citrus::core::CitrusTree<std::int64_t, std::int64_t,
                                        citrus::rcu::GlobalLockRcu>;
  const auto r = record_and_check<Tree, citrus::rcu::GlobalLockRcu>(
      kThreads, kOps, kRange, 2);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, CitrusOnQsbr) {
  using Tree = citrus::core::CitrusTree<std::int64_t, std::int64_t,
                                        citrus::rcu::QsbrRcu>;
  const auto r = record_and_check<Tree, citrus::rcu::QsbrRcu>(
      kThreads, kOps, kRange, 9);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, CitrusSmallHotRange) {
  // Tiny key range maximizes two-child deletes and successor copies — the
  // linearizability-critical path (Figure 4's false-negative hazard).
  using Tree = citrus::core::CitrusTree<std::int64_t, std::int64_t>;
  const auto r = record_and_check<Tree, CounterFlagRcu>(3, 600, 48, 3);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, ShardedCitrus) {
  // The router is a pure function of the key, so each key's history lives
  // entirely in one shard; per-shard linearizability (Theorem 11 per
  // tree) must therefore compose to whole-map linearizability for point
  // operations. This drives the same history checker through the
  // registry's citrus-shard4 to confirm it end-to-end.
  auto dict = citrus::adapters::make_dictionary("citrus-shard4");
  const auto r = record_and_check_dict(*dict, kThreads, kOps, kRange, 10);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
  EXPECT_GT(r.events_checked, 0u);
}

TEST(Linearizability, ShardedCitrusSmallHotRange) {
  // Few keys per shard → frequent two-child deletes and successor copies
  // inside each shard, plus constant cross-shard interleaving.
  auto dict = citrus::adapters::make_dictionary("citrus-shard4");
  const auto r = record_and_check_dict(*dict, 3, 600, 48, 11);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, CitrusCop) {
  // The cop protocol moves the linearization point to a single publish
  // (HTM commit or release CAS); the history checker cannot tell — the
  // same histories must linearize.
  auto dict = citrus::adapters::make_dictionary("citrus-cop");
  const auto r = record_and_check_dict(*dict, kThreads, kOps, kRange, 12);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
  EXPECT_GT(r.events_checked, 0u);
}

TEST(Linearizability, CitrusCopReclaimSmallHotRange) {
  // Reclamation on, tiny hot range: maximizes cop two-child erases (the
  // hoisted successor copy + synchronize path) and validation failures
  // racing node recycling.
  citrus::adapters::Options options;
  options.reclaim = true;
  auto dict = citrus::adapters::make_dictionary("citrus-cop", options);
  const auto r = record_and_check_dict(*dict, 3, 600, 48, 13);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, ShardedCitrusCop) {
  // Per-shard cop linearizability must compose exactly like the
  // lock+validate sharding does.
  auto dict = citrus::adapters::make_dictionary("citrus-cop-shard4");
  const auto r = record_and_check_dict(*dict, kThreads, kOps, kRange, 14);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, CitrusCf) {
  // Background subtree rebuilds are content-preserving (abstract no-ops),
  // so the same histories must linearize with the maintainer racing every
  // update. The hot key range keeps the tree small enough that rebuild
  // candidates come and go while the workers run.
  auto dict = citrus::adapters::make_dictionary("citrus-cf");
  const auto r = record_and_check_dict(*dict, kThreads, kOps, kRange, 15);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
  EXPECT_GT(r.events_checked, 0u);
}

TEST(Linearizability, CitrusCfReclaimSmallHotRange) {
  // Reclamation on: the maintainer recycles replaced subtrees through real
  // grace periods while two-child erases park on theirs — the worst-case
  // interleaving of the two retire paths.
  citrus::adapters::Options options;
  options.reclaim = true;
  auto dict = citrus::adapters::make_dictionary("citrus-cf", options);
  const auto r = record_and_check_dict(*dict, 3, 600, 48, 16);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, ShardedCitrusCf) {
  // One maintainer per shard; per-shard linearizability must compose.
  auto dict = citrus::adapters::make_dictionary("citrus-cf-shard4");
  const auto r = record_and_check_dict(*dict, kThreads, kOps, kRange, 17);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, Avl) {
  const auto r =
      record_and_check<citrus::baselines::BronsonAvlTree<std::int64_t, std::int64_t>,
                       CounterFlagRcu>(kThreads, kOps, kRange, 4);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, Skiplist) {
  const auto r =
      record_and_check<citrus::baselines::LazySkiplist<std::int64_t, std::int64_t>,
                       CounterFlagRcu>(kThreads, kOps, kRange, 5);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, LockFree) {
  const auto r =
      record_and_check<citrus::baselines::LockFreeBst<std::int64_t, std::int64_t>,
                       CounterFlagRcu>(kThreads, kOps, kRange, 6);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, RbTree) {
  const auto r =
      record_and_check<citrus::baselines::RcuRedBlackTree<std::int64_t, std::int64_t>,
                       CounterFlagRcu>(kThreads, kOps, kRange, 7);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

TEST(Linearizability, Bonsai) {
  const auto r =
      record_and_check<citrus::baselines::BonsaiTree<std::int64_t, std::int64_t>,
                       CounterFlagRcu>(kThreads, kOps, kRange, 8);
  EXPECT_TRUE(r.linearizable) << "key " << r.failing_key << ": " << r.detail;
}

}  // namespace
