// assign / insert_or_assign: atomic value replacement by node-copy
// publication (extension over the paper; see the method comment in
// citrus_tree.hpp for why no grace period is required).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::core::CitrusTree;
using citrus::rcu::CounterFlagRcu;

class CitrusAssign : public ::testing::Test {
 protected:
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg{domain};
  CitrusTree<long, long> tree{domain};
};

TEST_F(CitrusAssign, AssignReplacesValue) {
  tree.insert(5, 50);
  EXPECT_TRUE(tree.assign(5, 55));
  EXPECT_EQ(tree.find(5), 55);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.check_structure().ok);
}

TEST_F(CitrusAssign, AssignAbsentKeyFails) {
  EXPECT_FALSE(tree.assign(5, 55));
  tree.insert(5, 50);
  tree.erase(5);
  EXPECT_FALSE(tree.assign(5, 55));
}

TEST_F(CitrusAssign, AssignNeedsNoGracePeriod) {
  tree.insert(5, 50);
  const auto before = domain.synchronize_calls();
  EXPECT_TRUE(tree.assign(5, 51));
  EXPECT_EQ(domain.synchronize_calls(), before);
}

TEST_F(CitrusAssign, AssignInteriorNodeKeepsSubtrees) {
  for (long k : {50, 30, 70, 20, 40, 60, 80}) tree.insert(k, k);
  EXPECT_TRUE(tree.assign(50, 5000));  // interior, two children
  EXPECT_EQ(tree.find(50), 5000);
  for (long k : {20, 30, 40, 60, 70, 80}) EXPECT_TRUE(tree.contains(k));
  EXPECT_EQ(tree.size(), 7u);
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST_F(CitrusAssign, InsertOrAssignComposite) {
  EXPECT_TRUE(tree.insert_or_assign(7, 70));   // inserted
  EXPECT_FALSE(tree.insert_or_assign(7, 71));  // assigned
  EXPECT_EQ(tree.find(7), 71);
  EXPECT_EQ(tree.size(), 1u);
}

TEST_F(CitrusAssign, SequentialOracle) {
  citrus::util::Xoshiro256 rng(99);
  std::map<long, long> oracle;
  for (int i = 0; i < 20000; ++i) {
    const long k = static_cast<long>(rng.bounded(150));
    const long v = static_cast<long>(rng());
    switch (rng.bounded(4)) {
      case 0:
        ASSERT_EQ(tree.insert(k, v), oracle.emplace(k, v).second);
        break;
      case 1:
        ASSERT_EQ(tree.erase(k), oracle.erase(k) > 0);
        break;
      case 2: {
        const bool present = oracle.count(k) > 0;
        ASSERT_EQ(tree.assign(k, v), present);
        if (present) oracle[k] = v;
        break;
      }
      default: {
        const auto got = tree.find(k);
        const auto it = oracle.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end());
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
      }
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
  EXPECT_TRUE(tree.check_structure().ok);
}

TEST(CitrusAssignConcurrent, ReadersSeeWholeValues) {
  // Writers continuously assign (k, stamp*k) with varying stamps; readers
  // must only ever observe values that are a multiple of their key (no
  // torn or stale-mixed values across the node copies).
  CounterFlagRcu domain;
  CitrusTree<long, long> tree(domain);
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 1; k <= 64; ++k) tree.insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = 1 + static_cast<long>(rng.bounded(64));
        tree.assign(k, k * static_cast<long>(1 + rng.bounded(1000)));
      }
    });
  }
  threads.emplace_back([&] {
    CounterFlagRcu::Registration reg(domain);
    citrus::util::Xoshiro256 rng(77);
    for (int i = 0; i < 60000; ++i) {
      const long k = 1 + static_cast<long>(rng.bounded(64));
      const auto v = tree.find(k);
      if (!v.has_value() || *v % k != 0) bad.store(true);
    }
    stop.store(true);
  });
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  EXPECT_TRUE(tree.check_structure().ok);
  EXPECT_EQ(tree.size(), 64u);
}

TEST(CitrusAssignConcurrent, AssignVsEraseRace) {
  // assign and erase fight over the same keys; final state must be exact
  // per-thread-stripe bookkeeping like everywhere else.
  CounterFlagRcu domain;
  CitrusTree<long, long> tree(domain);
  constexpr int kThreads = 4;
  std::vector<std::map<long, long>> owned(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 21);
      auto& mine = owned[t];
      for (int i = 0; i < 10000; ++i) {
        const long k = t * 100 + static_cast<long>(rng.bounded(100));
        const long v = static_cast<long>(rng());
        switch (rng.bounded(3)) {
          case 0:
            ASSERT_EQ(tree.insert(k, v), mine.emplace(k, v).second);
            break;
          case 1:
            ASSERT_EQ(tree.erase(k), mine.erase(k) > 0);
            break;
          default: {
            const bool present = mine.count(k) > 0;
            ASSERT_EQ(tree.assign(k, v), present);
            if (present) mine[k] = v;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  CounterFlagRcu::Registration reg(domain);
  std::size_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += owned[t].size();
    for (const auto& [k, v] : owned[t]) {
      ASSERT_EQ(tree.find(k), v) << "key " << k;
    }
  }
  EXPECT_EQ(tree.size(), expected);
  EXPECT_TRUE(tree.check_structure().ok);
}

}  // namespace
