// The QSBR domain's specific semantics (offline/online, checkpointing,
// synchronizer self-quiescence) and the asynchronous Reclaimer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"
#include "rcu/reclaimer.hpp"
#include "sync/barrier.hpp"
#include "util/rng.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using citrus::rcu::QsbrRcu;

TEST(Qsbr, IdleRegisteredThreadStartsOffline) {
  // A thread that registers but never reads must not stall grace periods.
  QsbrRcu domain;
  std::atomic<bool> registered{false};
  std::atomic<bool> release{false};
  std::thread idler([&] {
    QsbrRcu::Registration reg(domain);
    registered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!registered.load()) std::this_thread::yield();
  {
    QsbrRcu::Registration reg(domain);
    domain.synchronize();  // must return although the idler never checkpoints
  }
  release.store(true);
  idler.join();
  SUCCEED();
}

TEST(Qsbr, OnlineQuietThreadStallsUntilCheckpoint) {
  // The QSBR contract: a thread that has read (is online) and then goes
  // quiet blocks grace periods until it checkpoints or goes offline.
  QsbrRcu domain;
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> sync_done{false};
  std::atomic<bool> checkpoint_now{false};
  std::thread quiet([&] {
    QsbrRcu::Registration reg(domain);
    domain.read_lock();
    domain.read_unlock();  // online, one checkpoint
    barrier.arrive_and_wait();
    while (!checkpoint_now.load()) std::this_thread::yield();
    domain.quiescent_state();
    while (!sync_done.load()) std::this_thread::yield();
  });
  std::thread syncer([&] {
    QsbrRcu::Registration reg(domain);
    barrier.arrive_and_wait();
    domain.synchronize();
    sync_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(sync_done.load());  // stalled on the quiet online thread
  checkpoint_now.store(true);
  quiet.join();
  syncer.join();
  EXPECT_TRUE(sync_done.load());
}

TEST(Qsbr, OfflineGuardReleasesGracePeriods) {
  QsbrRcu domain;
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> sync_done{false};
  std::atomic<bool> release{false};
  std::thread offline_thread([&] {
    QsbrRcu::Registration reg(domain);
    domain.read_lock();
    domain.read_unlock();  // online
    QsbrRcu::OfflineGuard guard(domain);
    barrier.arrive_and_wait();
    while (!release.load()) std::this_thread::yield();
  });
  barrier.arrive_and_wait();
  {
    QsbrRcu::Registration reg(domain);
    domain.synchronize();  // returns despite the quiet (but offline) thread
  }
  sync_done.store(true);
  release.store(true);
  offline_thread.join();
  EXPECT_TRUE(sync_done.load());
}

TEST(Qsbr, ConcurrentSynchronizersDoNotDeadlock) {
  // Each synchronizer marks itself quiescent, so they never wait on each
  // other even when all of them are online.
  QsbrRcu domain;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      QsbrRcu::Registration reg(domain);
      for (int i = 0; i < 200; ++i) {
        domain.read_lock();
        domain.read_unlock();
        domain.synchronize();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(domain.synchronize_calls(), kThreads * 200u);
}

TEST(Qsbr, CitrusRunsOnQsbr) {
  QsbrRcu domain;
  citrus::core::CitrusTree<long, long, QsbrRcu> tree(domain);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      QsbrRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 11);
      for (int i = 0; i < 15000; ++i) {
        const long k = static_cast<long>(rng.bounded(256));
        switch (rng.bounded(3)) {
          case 0:
            tree.insert(k, k);
            break;
          case 1:
            tree.erase(k);
            break;
          default:
            tree.contains(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(domain.synchronize_calls(), 0u);
}

// ── Reclaimer ──────────────────────────────────────────────────────

TEST(Reclaimer, FreesAfterGracePeriod) {
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  CounterFlagRcu domain;
  {
    citrus::rcu::Reclaimer<CounterFlagRcu> reclaimer(domain);
    for (int i = 0; i < 100; ++i) reclaimer.enqueue_delete(new Obj);
    // Destructor drains.
  }
  EXPECT_EQ(freed.load(), 100);
}

TEST(Reclaimer, DoesNotFreeWhileReaderHoldsSection) {
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  CounterFlagRcu domain;
  citrus::rcu::Reclaimer<CounterFlagRcu> reclaimer(domain);
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> release{false};
  std::thread reader([&] {
    CounterFlagRcu::Registration reg(domain);
    domain.read_lock();
    barrier.arrive_and_wait();
    while (!release.load()) std::this_thread::yield();
    domain.read_unlock();
  });
  barrier.arrive_and_wait();  // reader is inside its section
  reclaimer.enqueue_delete(new Obj);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(freed.load(), 0);  // grace period cannot have elapsed
  release.store(true);
  reader.join();
  // Now the worker's synchronize completes and the object goes.
  while (freed.load() == 0) std::this_thread::yield();
  EXPECT_EQ(freed.load(), 1);
}

TEST(Reclaimer, ManyProducers) {
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  CounterFlagRcu domain;
  {
    citrus::rcu::Reclaimer<CounterFlagRcu> reclaimer(domain);
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&] {
        CounterFlagRcu::Registration reg(domain);
        for (int i = 0; i < 2000; ++i) {
          domain.read_lock();
          // Enqueue from inside a read section: legal, never blocks.
          reclaimer.enqueue_delete(new Obj);
          domain.read_unlock();
        }
      });
    }
    for (auto& th : producers) th.join();
  }
  EXPECT_EQ(freed.load(), 8000);
}

TEST(Reclaimer, BatchesAmortizeGracePeriods) {
  CounterFlagRcu domain;
  citrus::rcu::Reclaimer<CounterFlagRcu> reclaimer(domain);
  for (int i = 0; i < 1000; ++i) {
    reclaimer.enqueue(
        new int(i), [](void* p, void*) { delete static_cast<int*>(p); },
        nullptr);
  }
  while (reclaimer.pending() != 0) std::this_thread::yield();
  // Far fewer grace periods than objects: batching works.
  EXPECT_LT(reclaimer.batches(), 1000u);
  EXPECT_GE(reclaimer.batches(), 1u);
}

TEST(Reclaimer, WorksWithQsbrDomain) {
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  QsbrRcu domain;
  {
    citrus::rcu::Reclaimer<QsbrRcu> reclaimer(domain);
    QsbrRcu::Registration reg(domain);
    for (int i = 0; i < 50; ++i) {
      domain.read_lock();
      reclaimer.enqueue_delete(new Obj);
      domain.read_unlock();  // checkpoint lets the worker's grace complete
    }
  }
  EXPECT_EQ(freed.load(), 50);
}

}  // namespace
