// Fault-injection torture (rcutorture-style, seeded): every scenario arms
// a deterministic fault plan (src/fault/), drives a real workload into it,
// and asserts the robustness machinery reacts exactly as specified —
// the stall watchdog fires when (and only when) a stall is seeded, the
// reclaimer's backpressure watermark bounds the backlog, and allocation
// failures surface as clean kNoMemory results the linearizability checker
// accepts. No leak (every enqueued object is freed), no UAF (the asan CI
// lane runs this suite), no deadlock (every stall is released).
//
// The Injector is compiled in every build; the *hooks* are live only with
// -DCITRUS_FAULT_INJECT=ON, so scenarios that need a hook to fire skip
// themselves when fault::kEnabled is false. Injector-only unit tests and
// the real-exhaustion (pool cap) scenario run in every build.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "citrus/citrus_cop.hpp"
#include "citrus/citrus_tree.hpp"
#include "fault/fault.hpp"
#include "maint/citrus_cf.hpp"
#include "lineariz/checker.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/reclaimer.hpp"
#include "rcu/stall.hpp"
#include "sync/backoff.hpp"
#include "util/rng.hpp"

namespace {

namespace fault = citrus::fault;
using citrus::core::CitrusTree;
using citrus::core::DefaultTraits;
using citrus::core::UpdateStatus;
using citrus::lineariz::check_history;
using citrus::lineariz::HistoryRecorder;
using citrus::lineariz::OpType;
using citrus::rcu::CounterFlagRcu;
using citrus::rcu::Reclaimer;
using citrus::rcu::StallConfig;
using citrus::rcu::StallReport;
using citrus::rcu::StallWatchdog;

using namespace std::chrono_literals;

// Poll `pred` with backoff until it holds or `limit` elapses; returns the
// final value. Generous limits keep the suite deterministic under tsan.
template <typename Pred>
bool eventually(Pred&& pred, std::chrono::milliseconds limit = 10000ms) {
  return citrus::sync::spin_until(std::chrono::steady_clock::now() + limit,
                                  std::forward<Pred>(pred));
}

// RAII: no test leaves a plan armed for the next one.
struct DisarmAll {
  ~DisarmAll() { fault::Injector::instance().disarm_all(); }
};

// ── Injector unit tests (run in every build: the Injector is always
//    compiled; these call its backends directly, no hooks needed) ────────

TEST(Injector, NthOccurrenceAndMaxFires) {
  DisarmAll guard;
  auto& inj = fault::Injector::instance();
  fault::Plan p;
  p.site = fault::Site::kAllocFailure;
  p.first = 3;
  p.every = 2;  // occurrences 3, 5, 7, ...
  p.max_fires = 2;
  inj.arm(p);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(inj.fire(p.site));
  const std::vector<bool> expect = {false, false, true, false, true,
                                    false, false, false, false, false};
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(inj.occurrences(p.site), 10u);
  EXPECT_EQ(inj.fires(p.site), 2u);
}

TEST(Injector, UnarmedSiteNeverFires) {
  DisarmAll guard;
  auto& inj = fault::Injector::instance();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.fire(fault::Site::kLeaderStall));
  }
  EXPECT_EQ(inj.occurrences(fault::Site::kLeaderStall), 0u);
}

TEST(Injector, ProbabilityIsSeedDeterministic) {
  DisarmAll guard;
  auto& inj = fault::Injector::instance();
  fault::Plan p;
  p.site = fault::Site::kAllocFailure;
  p.probability = 0.3;
  p.seed = 1234;
  auto run = [&] {
    inj.arm(p);  // arm resets the occurrence counter
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(inj.fire(p.site));
    return fired;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);  // same seed, same occurrence indices -> same fires
  const auto hits = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(hits, 20u);  // ~60 expected; loose bounds, deterministic value
  EXPECT_LT(hits, 120u);
  p.seed = 99;
  const auto c = run();
  EXPECT_NE(a, c);  // a different seed picks a different subset
}

TEST(Injector, ThreadFilterCountsOnlyMatchingThreads) {
  DisarmAll guard;
  auto& inj = fault::Injector::instance();
  fault::Plan p;
  p.site = fault::Site::kAllocFailure;
  p.first = 1;
  p.every = 1;
  p.thread_filter = 7;
  inj.arm(p);
  // Untagged thread: filtered out entirely — not even counted.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(inj.fire(p.site));
  EXPECT_EQ(inj.occurrences(p.site), 0u);
  std::thread victim([&] {
    fault::ScopedThreadRole role(7);
    EXPECT_TRUE(inj.fire(p.site));
  });
  victim.join();
  EXPECT_EQ(inj.occurrences(p.site), 1u);
  EXPECT_EQ(inj.fires(p.site), 1u);
}

// ── Watchdog baseline: no seeded fault, no report (every build) ─────────

TEST(StallWatchdog, QuietOnHealthyDomain) {
  CounterFlagRcu domain;
  std::atomic<int> reports{0};
  StallConfig cfg;
  cfg.deadline = 20ms;
  cfg.poll = 1ms;
  StallWatchdog<CounterFlagRcu> dog(domain, cfg,
                                    [&](const StallReport&) { ++reports; });
  // Healthy traffic: sections and grace periods complete promptly.
  typename CounterFlagRcu::Registration reg(domain);
  for (int i = 0; i < 50; ++i) {
    domain.read_lock();
    domain.read_unlock();
    domain.synchronize();
  }
  std::this_thread::sleep_for(100ms);  // several deadlines of idle time
  EXPECT_EQ(dog.stalls_detected(), 0u);
  EXPECT_EQ(reports.load(), 0);
}

// ── Seeded stalls: watchdog must fire, diagnose, and see recovery ───────

TEST(StallWatchdog, DetectsSeededReaderStall) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  CounterFlagRcu domain;
  std::mutex mu;
  std::vector<StallReport> reports;
  StallConfig cfg;
  cfg.deadline = 50ms;
  cfg.poll = 1ms;
  StallWatchdog<CounterFlagRcu> dog(domain, cfg, [&](const StallReport& r) {
    std::lock_guard<std::mutex> g(mu);
    reports.push_back(r);
  });

  // Only the designated victim stalls; the synchronizer must not.
  fault::Plan p;
  p.site = fault::Site::kReaderStall;
  p.thread_filter = 42;
  inj.arm(p);

  std::thread victim([&] {
    fault::ScopedThreadRole role(42);
    typename CounterFlagRcu::Registration reg(domain);
    domain.read_lock();  // blocks inside the hook, section held open
    domain.read_unlock();
  });
  ASSERT_TRUE(eventually(
      [&] { return inj.stalled_now(fault::Site::kReaderStall) == 1; }));

  // A grace period now cannot complete: the updater blocks, the sequence
  // parks on an odd value, and the watchdog must cut a report.
  std::thread updater([&] {
    typename CounterFlagRcu::Registration reg(domain);
    domain.synchronize();
  });
  ASSERT_TRUE(eventually([&] { return dog.stalls_detected() >= 1; }));

  const StallReport r = dog.last_report();
  EXPECT_EQ(r.gp_seq & 1, 1u) << "reported sequence must be in-progress";
  EXPECT_EQ(r.pending_cookie, r.gp_seq + 1);
  EXPECT_GE(r.waited, cfg.deadline);
  ASSERT_EQ(r.stuck.size(), 1u) << "exactly the victim is pinned";
  EXPECT_NE(r.stuck[0].word, 0u);

  // While stuck, the report is re-emitted once per deadline.
  const std::uint64_t emitted = dog.reports_emitted();
  EXPECT_TRUE(eventually([&] { return dog.reports_emitted() > emitted; }));
  EXPECT_EQ(dog.stalls_detected(), 1u) << "one stall, many reports";

  // Release the victim: the grace period completes and the watchdog
  // counts the recovery. No deadlock anywhere on this path.
  inj.release(fault::Site::kReaderStall);
  updater.join();
  victim.join();
  EXPECT_TRUE(eventually([&] { return dog.recoveries() >= 1; }));
}

TEST(StallWatchdog, DetectsSeededLeaderStall) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  CounterFlagRcu domain;
  StallConfig cfg;
  cfg.deadline = 50ms;
  cfg.poll = 1ms;
  std::atomic<std::uint64_t> backlog{17};
  StallWatchdog<CounterFlagRcu> dog(
      domain, cfg, [](const StallReport&) {},
      [&] { return backlog.load(); });

  fault::Plan p;
  p.site = fault::Site::kLeaderStall;
  inj.arm(p);

  // The leader wins the even->odd transition, then is "descheduled"
  // before scanning: followers and the watchdog see a stuck odd sequence
  // with NO pinned reader — distinguishing it from a reader stall.
  std::thread leader([&] {
    typename CounterFlagRcu::Registration reg(domain);
    domain.synchronize();
  });
  ASSERT_TRUE(eventually([&] { return dog.stalls_detected() >= 1; }));
  const StallReport r = dog.last_report();
  EXPECT_EQ(r.gp_seq & 1, 1u);
  EXPECT_TRUE(r.stuck.empty()) << "no reader is pinned; the leader is gone";
  EXPECT_EQ(r.pending_reclaim, 17u) << "backlog probe is surfaced";

  inj.release(fault::Site::kLeaderStall);
  leader.join();
  EXPECT_TRUE(eventually([&] { return dog.recoveries() >= 1; }));
}

// ── Allocation failure: every operation succeeds or fails cleanly ───────

TEST(AllocFailure, MixedWorkloadStaysLinearizable) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  CounterFlagRcu domain;
  CitrusTree<std::int64_t, std::int64_t, CounterFlagRcu, DefaultTraits> tree(
      domain);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 12;  // joint history stays per-key small
  constexpr std::int64_t kKeyRange = 32;

  // Prefill half the range before arming (prefill must not fail).
  std::vector<std::int64_t> initial;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kKeyRange; k += 2) {
      ASSERT_EQ(tree.try_insert(k, k), UpdateStatus::kSuccess);
      initial.push_back(k);
    }
  }

  fault::Plan p;
  p.site = fault::Site::kAllocFailure;
  p.probability = 0.5;  // every occurrence eligible, coin per index
  p.seed = 0xFA11;
  inj.arm(p);

  HistoryRecorder history(kThreads);
  std::atomic<std::uint64_t> no_memory{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(77u + static_cast<unsigned>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t key =
            static_cast<std::int64_t>(rng.bounded(kKeyRange));
        const std::uint64_t inv = history.invoke();
        if ((rng() & 1) != 0) {
          switch (tree.try_insert(key, key)) {
            case UpdateStatus::kSuccess:
              history.record(t, key, OpType::kInsert, true, inv);
              break;
            case UpdateStatus::kNoOp:
              history.record(t, key, OpType::kInsert, false, inv);
              break;
            case UpdateStatus::kNoMemory:
              // No effect, no membership claim: a checker no-op.
              history.record_noop(t, key, OpType::kInsert, inv);
              no_memory.fetch_add(1);
              break;
          }
        } else {
          switch (tree.try_erase(key)) {
            case UpdateStatus::kSuccess:
              history.record(t, key, OpType::kErase, true, inv);
              break;
            case UpdateStatus::kNoOp:
              history.record(t, key, OpType::kErase, false, inv);
              break;
            case UpdateStatus::kNoMemory:
              history.record_noop(t, key, OpType::kErase, inv);
              no_memory.fetch_add(1);
              break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  inj.disarm(fault::Site::kAllocFailure);

  EXPECT_GT(no_memory.load(), 0u) << "the seeded OOM plan never fired";
  EXPECT_GT(inj.fires(fault::Site::kAllocFailure), 0u);

  // The tree survived every injected failure structurally intact...
  const auto report = tree.check_structure();
  EXPECT_TRUE(report.ok) << report.error;
  // ...and the recorded history — with kNoMemory results as no-assertion
  // no-ops — linearizes.
  const auto result = check_history(history, initial);
  EXPECT_TRUE(result.linearizable)
      << "key " << result.failing_key << ": " << result.detail;
}

// Real exhaustion, no injection: a capped pool fails over to kNoMemory in
// every build flavor. Deterministic and single-threaded.
TEST(AllocFailure, PoolCapFailsCleanlyWithoutInjection) {
  CounterFlagRcu domain;
  CitrusTree<std::int64_t, std::int64_t, CounterFlagRcu, DefaultTraits> tree(
      domain);
  typename CounterFlagRcu::Registration reg(domain);
  constexpr std::int64_t kKeys = 16;
  tree.set_max_live_nodes(2 + kKeys);  // two sentinels + kKeys leaves
  for (std::int64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(tree.try_insert(k, k), UpdateStatus::kSuccess) << k;
  }
  // At the cap: insert fails with kNoMemory (not kNoOp, not a retry
  // livelock), and the bool wrapper maps it to false.
  EXPECT_EQ(tree.try_insert(kKeys, kKeys), UpdateStatus::kNoMemory);
  EXPECT_FALSE(tree.insert(kKeys, kKeys));
  // Existing keys are untouched and still readable.
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(kKeys));
  for (std::int64_t k = 0; k < kKeys; ++k) EXPECT_TRUE(tree.contains(k));
  // Present-key no-op still reports kNoOp (allocation is never reached).
  EXPECT_EQ(tree.try_insert(3, 3), UpdateStatus::kNoOp);
  // Erase needs no allocation for a leaf and still works at the cap.
  EXPECT_EQ(tree.try_erase(kKeys - 1), UpdateStatus::kSuccess);
  const auto report = tree.check_structure();
  EXPECT_TRUE(report.ok) << report.error;
  // Lifting the cap restores growth.
  tree.set_max_live_nodes(0);
  EXPECT_EQ(tree.try_insert(kKeys, kKeys), UpdateStatus::kSuccess);
}

// ── Backpressure: a stalled reader cannot make the backlog unbounded ────

TEST(Backpressure, WatermarkBoundsBacklogUnderReaderStall) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  constexpr std::size_t kWatermark = 16;
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 64;  // well past the watermark

  CounterFlagRcu domain;
  Reclaimer<CounterFlagRcu> reclaimer(domain);
  reclaimer.set_backpressure(kWatermark, 2ms);

  // Pin one victim reader in a section: grace periods stop completing,
  // so the reclaim worker wedges mid-batch and the backlog would grow
  // without bound if producers kept deferring.
  fault::Plan p;
  p.site = fault::Site::kReaderStall;
  p.thread_filter = 9;
  inj.arm(p);
  std::thread victim([&] {
    fault::ScopedThreadRole role(9);
    typename CounterFlagRcu::Registration reg(domain);
    domain.read_lock();
    domain.read_unlock();
  });
  ASSERT_TRUE(eventually(
      [&] { return inj.stalled_now(fault::Site::kReaderStall) == 1; }));

  std::atomic<std::uint64_t> freed{0};
  auto free_fn = +[](void* ptr, void* ctx) {
    delete static_cast<std::uint64_t*>(ptr);
    static_cast<std::atomic<std::uint64_t>*>(ctx)->fetch_add(1);
  };
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      typename CounterFlagRcu::Registration reg(domain);
      for (int i = 0; i < kPerProducer; ++i) {
        // Not inside a read-side section: over the watermark this call
        // blocks on the stalled grace period instead of queueing — that
        // is the bound under test.
        reclaimer.enqueue(new std::uint64_t(1), free_fn, &freed);
      }
    });
  }

  // While the reader is stalled nothing drains, so the backlog must
  // plateau at most at watermark + one racing check-then-push per
  // producer — never grow toward kProducers * kPerProducer.
  std::this_thread::sleep_for(200ms);
  EXPECT_LE(reclaimer.pending(), kWatermark + kProducers);

  inj.release(fault::Site::kReaderStall);
  victim.join();
  for (auto& th : producers) th.join();
  EXPECT_GE(reclaimer.backpressure(), 1u)
      << "no producer ever switched to synchronous reclaim";

  // Everything drains: pending() is exact at quiescence and every object
  // is freed exactly once (asan would catch a double free).
  const auto total =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_TRUE(eventually([&] { return freed.load() == total; }));
  EXPECT_TRUE(eventually([&] { return reclaimer.pending() == 0; }));
}

// ── Cop updater: seeded transaction-abort storms (fault::Site::kTxAbort
//    fires in the validate/publish window whether or not the machine has
//    HTM) must degrade to the software path after exactly tx_retries()
//    simulated aborts per attempt — bounded by construction, no livelock ──

using CopTree =
    citrus::core::CitrusCopTree<std::int64_t, std::int64_t, CounterFlagRcu,
                                DefaultTraits>;

TEST(TxAbortStorm, FallsBackBounded) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  CounterFlagRcu domain;
  CopTree tree(domain);

  fault::Plan p;
  p.site = fault::Site::kTxAbort;
  p.first = 1;
  p.every = 1;  // storm: every transactional attempt aborts, forever
  inj.arm(p);

  // Deterministic phase: every update's transactional budget drains
  // (tx_retries() simulated aborts), then the software path commits.
  constexpr std::int64_t kKeys = 64;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(tree.try_insert(k, k), UpdateStatus::kSuccess) << k;
    }
    ASSERT_EQ(tree.try_erase(kKeys - 1), UpdateStatus::kSuccess);
  }

  // Concurrent phase: the storm persists under contention and nothing
  // livelocks — completion of the joins is the proof.
  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(911u + static_cast<unsigned>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t key =
            static_cast<std::int64_t>(rng.bounded(kKeys));
        if ((rng() & 1) != 0) {
          (void)tree.try_insert(key, key);
        } else {
          (void)tree.try_erase(key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  inj.disarm(fault::Site::kTxAbort);

  const auto s = tree.stats();
  EXPECT_GT(s.cop_fallbacks, 0u);
  EXPECT_GT(s.cop_commits, 0u);
  // The bound, exactly: each transactional attempt burns its whole budget
  // on simulated aborts, then enters the software path once. The two-child
  // erase path never attempts a transaction, so it adds to neither side.
  EXPECT_EQ(s.cop_aborts_htm, CopTree::tx_retries() * s.cop_fallbacks);

  const auto report = tree.check_structure();
  EXPECT_TRUE(report.ok) << report.error;
}

// Abort storm + seeded allocation failure: kNoMemory unwinds must free
// the private copy. kRetireBatch=1 recycles every retired node inline, so
// at quiescence the pool's live count is exactly sentinels + live keys —
// a leaked private copy (or a double recycle) breaks the equality.
struct CopOomTraits : DefaultTraits {
  static constexpr std::size_t kRetireBatch = 1;
};

TEST(TxAbortStorm, OomUnwindFreesPrivateCopies) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  CounterFlagRcu domain;
  citrus::core::CitrusCopTree<std::int64_t, std::int64_t, CounterFlagRcu,
                              CopOomTraits>
      tree(domain);
  constexpr std::int64_t kKeyRange = 48;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kKeyRange; k += 2) {
      ASSERT_EQ(tree.try_insert(k, k), UpdateStatus::kSuccess);
    }
  }

  fault::Plan storm;
  storm.site = fault::Site::kTxAbort;
  storm.first = 1;
  storm.every = 1;
  inj.arm(storm);
  fault::Plan oom;
  oom.site = fault::Site::kAllocFailure;
  oom.probability = 0.5;
  oom.seed = 0xC0FFEE;
  inj.arm(oom);

  constexpr int kThreads = 3;
  constexpr int kOpsPerThread = 200;
  std::atomic<std::uint64_t> no_memory{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(31u + static_cast<unsigned>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t key =
            static_cast<std::int64_t>(rng.bounded(kKeyRange));
        const auto st = ((rng() & 1) != 0) ? tree.try_insert(key, key)
                                           : tree.try_erase(key);
        if (st == UpdateStatus::kNoMemory) no_memory.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  inj.disarm_all();

  EXPECT_GT(no_memory.load(), 0u) << "the seeded OOM plan never fired";
  const auto s = tree.stats();
  EXPECT_GT(s.cop_fallbacks, 0u);

  const auto report = tree.check_structure();
  EXPECT_TRUE(report.ok) << report.error;
  // The no-leak equality: two sentinels plus one node per live key. Every
  // kNoMemory/kNoOp/validation-failure unwind must have recycled its
  // private copy for this to hold (kRetireBatch=1 leaves no batch slack).
  EXPECT_EQ(tree.live_nodes(),
            static_cast<std::int64_t>(2 + tree.size()));
}

// A private copy that turns out to be unnecessary (the key appears while
// the copy exists) is returned to the pool, not leaked: park an inserter
// right after its allocation, complete a competing insert, resume.
struct CopParkTraits : DefaultTraits {
  static inline std::atomic<bool> armed{false};
  static inline std::atomic<bool> parked{false};
  static inline std::atomic<bool> release{false};
  static void pause(citrus::core::PausePoint point) {
    if (point != citrus::core::PausePoint::kCopAfterCopy) return;
    if (!armed.exchange(false, std::memory_order_acq_rel)) return;
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
};

TEST(CopPrivateCopy, FreedOnNoOp) {
  CounterFlagRcu domain;
  citrus::core::CitrusCopTree<std::int64_t, std::int64_t, CounterFlagRcu,
                              CopParkTraits>
      tree(domain);
  CopParkTraits::parked.store(false);
  CopParkTraits::release.store(false);
  CopParkTraits::armed.store(true, std::memory_order_release);

  std::atomic<int> status{-1};
  std::thread inserter([&] {
    typename CounterFlagRcu::Registration reg(domain);
    status.store(static_cast<int>(tree.try_insert(7, 7)),
                 std::memory_order_release);
  });
  while (!CopParkTraits::parked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The inserter holds a fully built private leaf and nothing else; the
  // key arrives from elsewhere while it is parked.
  {
    typename CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.insert(7, 7));
  }
  CopParkTraits::release.store(true, std::memory_order_release);
  inserter.join();

  EXPECT_EQ(status.load(), static_cast<int>(UpdateStatus::kNoOp));
  {
    typename CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.contains(7));
  }
  // Two sentinels + the one published node: the parked thread's private
  // copy went back to the pool on the kNoOp unwind.
  EXPECT_EQ(tree.live_nodes(), 3);
  const auto report = tree.check_structure();
  EXPECT_TRUE(report.ok) << report.error;
}

// ── Reclaim delay: a slow worker is a backlog, not a leak ───────────────

TEST(ReclaimDelay, DelayedWorkerStillFreesEverything) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  fault::Plan p;
  p.site = fault::Site::kReclaimDelay;
  p.first = 1;
  p.every = 1;
  p.max_fires = 3;
  p.stall = 30ms;  // timed: self-releasing delay, no release() needed
  inj.arm(p);

  std::atomic<std::uint64_t> freed{0};
  const int kObjects = 48;
  {
    CounterFlagRcu domain;
    Reclaimer<CounterFlagRcu> reclaimer(domain);
    for (int i = 0; i < kObjects; ++i) {
      reclaimer.enqueue(
          new std::uint64_t(7),
          +[](void* ptr, void* ctx) {
            delete static_cast<std::uint64_t*>(ptr);
            static_cast<std::atomic<std::uint64_t>*>(ctx)->fetch_add(1);
          },
          &freed);
    }
    // The worker reaches the delay site asynchronously, sometime after
    // the first batch's grace period — wait for it rather than racing it.
    EXPECT_TRUE(eventually(
        [&] { return inj.occurrences(fault::Site::kReclaimDelay) > 0; }));
    // The Reclaimer destructor drains through the remaining delays.
  }
  EXPECT_EQ(freed.load(), static_cast<std::uint64_t>(kObjects));
}

TEST(ReclaimDelay, MaintainerBacklogIsBoundedAndDrains) {
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  DisarmAll guard;
  auto& inj = fault::Injector::instance();

  // Delay the maintainer's retire worker at the post-grace-period recycle
  // site: replaced subtrees pile up as an observable backlog
  // (pending_reclaim_nodes), then drain completely — a slow worker is a
  // backlog, never a leak or a use-after-free.
  fault::Plan p;
  p.site = fault::Site::kReclaimDelay;
  p.first = 1;
  p.every = 1;
  p.max_fires = 4;
  p.stall = 20ms;  // timed: self-releasing, no release() needed
  inj.arm(p);

  CounterFlagRcu domain;
  citrus::maint::CitrusCfTree<std::int64_t, std::int64_t, CounterFlagRcu,
                              citrus::maint::CfDefaultTraits>
      tree(domain);
  constexpr std::int64_t kN = 4096;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; ++k) {
      while (tree.try_insert(k, k) != UpdateStatus::kSuccess) {
      }
    }
    // Synchronous pass: the rebuild publishes, then the blocking drain
    // walks straight into the armed delay — and through it.
    tree.maintain_now();
  }
  EXPECT_GT(inj.occurrences(fault::Site::kReclaimDelay), 0u);
  EXPECT_EQ(tree.pending_reclaim_nodes(), 0u) << "backlog must fully drain";
  EXPECT_GT(tree.stats().maint_rebuilds, 0u);

  const auto report = tree.check_structure();
  EXPECT_TRUE(report.ok) << report.error;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; k += 7) {
      ASSERT_TRUE(tree.contains(k)) << k;
    }
  }
  // Every replaced node was recycled, none leaked: the live count is the
  // current tree plus its two sentinels.
  EXPECT_EQ(tree.live_nodes(), kN + 2);
}

}  // namespace
