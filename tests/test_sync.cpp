// Unit tests for the sync substrate: padding, spinlocks, barriers, backoff.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "sync/backoff.hpp"
#include "sync/barrier.hpp"
#include "sync/cache.hpp"
#include "sync/spinlock.hpp"

namespace {

using namespace citrus::sync;

TEST(Cache, PaddedOccupiesFullLine) {
  EXPECT_GE(sizeof(Padded<int>), kDestructiveInterference);
  EXPECT_GE(sizeof(Padded<std::atomic<std::uint64_t>>),
            kDestructiveInterference);
  EXPECT_EQ(alignof(Padded<char>), kDestructiveInterference);
}

TEST(Cache, PaddedArrayElementsOnDistinctLines) {
  Padded<std::uint64_t> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, kDestructiveInterference);
  }
}

TEST(Cache, PaddedAccessors) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p = 42;
  EXPECT_EQ(p.value, 42);
}

TEST(SpinLockTest, BasicLockUnlock) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLockTest, WorksWithLockGuard) {
  SpinLock lock;
  {
    std::lock_guard<SpinLock> guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLockTest, MutualExclusionCounter) {
  SpinLock lock;
  std::int64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(BackoffTest, CountsPauses) {
  Backoff bo;
  for (int i = 0; i < 10; ++i) bo.pause();
  EXPECT_EQ(bo.total(), 10u);
  bo.reset();
  bo.pause();
  EXPECT_EQ(bo.total(), 11u);  // total survives reset; rounds restart
}

TEST(BackoffTest, EscalatesToYieldWithoutHanging) {
  // Past the spin limit pause() must keep returning (yield path).
  Backoff bo(4);
  for (int i = 0; i < 1000; ++i) bo.pause();
  EXPECT_EQ(bo.total(), 1000u);
}

TEST(BackoffTest, PauseUntilReportsDeadline) {
  Backoff bo;
  // A generous future deadline: the wait may continue.
  EXPECT_TRUE(bo.pause_until(std::chrono::steady_clock::now() +
                             std::chrono::seconds(60)));
  // A past deadline: false, and the clock really has moved past it.
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_FALSE(bo.pause_until(past));
  EXPECT_GE(std::chrono::steady_clock::now(), past);
}

TEST(SpinUntilTest, ImmediateTrueNeverWaits) {
  // Even with an already-expired deadline, a true predicate wins.
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  int calls = 0;
  EXPECT_TRUE(citrus::sync::spin_until(past, [&] {
    ++calls;
    return true;
  }));
  EXPECT_EQ(calls, 1);  // evaluated at least once, exactly once here
}

TEST(SpinUntilTest, TimesOutAndElapsesDeadline) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(20);
  EXPECT_FALSE(citrus::sync::spin_until(deadline, [] { return false; }));
  // A false return guarantees the deadline truly elapsed (no under-run).
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(SpinUntilTest, ObservesConditionFlippedByAnotherThread) {
  std::atomic<bool> flag{false};
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    flag.store(true, std::memory_order_release);
  });
  EXPECT_TRUE(citrus::sync::spin_until(
      std::chrono::steady_clock::now() + std::chrono::seconds(30),
      [&] { return flag.load(std::memory_order_acquire); }));
  flipper.join();
}

TEST(SpinBarrierTest, ReleasesAllParties) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // Everyone must have arrived before anyone proceeds.
      EXPECT_EQ(before.load(), kThreads);
      after.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(after.load(), kThreads);
  EXPECT_EQ(barrier.generation(), 1u);
}

TEST(SpinBarrierTest, Reusable) {
  constexpr int kThreads = 3;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        sum.fetch_add(1);
        barrier.arrive_and_wait();
        // After each round-barrier, the sum is a multiple of kThreads.
        EXPECT_EQ(sum.load() % kThreads, 0);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sum.load(), kThreads * kRounds);
  EXPECT_EQ(barrier.generation(), 2u * kRounds);
}

}  // namespace
