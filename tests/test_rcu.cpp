// Semantics of the three RCU domains, typed-tested uniformly:
//   * the RCU property (Figure 2 of the paper): synchronize_rcu returns
//     only after all read-side critical sections that preceded it,
//   * registration lifecycle and record reuse,
//   * nesting,
//   * deferred reclamation (retire / flush),
//   * concurrent synchronizers (the paper's key scaling point).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"
#include "sync/barrier.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using citrus::rcu::EpochRcu;
using citrus::rcu::FlatCounterFlagRcu;
using citrus::rcu::GlobalLockRcu;
using citrus::rcu::QsbrRcu;

template <typename Rcu>
class RcuDomainTest : public ::testing::Test {};

using Domains = ::testing::Types<CounterFlagRcu, FlatCounterFlagRcu,
                                 GlobalLockRcu, EpochRcu, QsbrRcu>;
TYPED_TEST_SUITE(RcuDomainTest, Domains);

TYPED_TEST(RcuDomainTest, SatisfiesConcept) {
  static_assert(citrus::rcu::rcu_domain<TypeParam>);
}

TYPED_TEST(RcuDomainTest, RegistrationLifecycle) {
  TypeParam domain;
  EXPECT_EQ(domain.registrations(), 0u);
  EXPECT_FALSE(domain.thread_is_registered());
  {
    typename TypeParam::Registration reg(domain);
    EXPECT_EQ(domain.registrations(), 1u);
    EXPECT_TRUE(domain.thread_is_registered());
  }
  EXPECT_EQ(domain.registrations(), 0u);
  EXPECT_FALSE(domain.thread_is_registered());
}

TYPED_TEST(RcuDomainTest, MultipleDomainsSameThread) {
  TypeParam a, b;
  typename TypeParam::Registration ra(a);
  typename TypeParam::Registration rb(b);
  a.read_lock();
  b.read_lock();
  b.read_unlock();
  a.read_unlock();
  a.synchronize();
  b.synchronize();
  SUCCEED();
}

TYPED_TEST(RcuDomainTest, NestedReadSections) {
  TypeParam domain;
  typename TypeParam::Registration reg(domain);
  domain.read_lock();
  domain.read_lock();
  domain.read_unlock();
  // Still inside the outer section; a concurrent synchronize must wait.
  std::atomic<bool> returned{false};
  std::thread syncer([&] {
    typename TypeParam::Registration r(domain);
    domain.synchronize();
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(returned.load());
  domain.read_unlock();
  syncer.join();
  EXPECT_TRUE(returned.load());
}

// The RCU property itself: a synchronize invoked while a read-side
// critical section is open must not return until that section closes.
TYPED_TEST(RcuDomainTest, SynchronizeWaitsForPreexistingReader) {
  TypeParam domain;
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> reader_in_section{false};
  std::atomic<bool> reader_done{false};
  std::atomic<bool> sync_returned{false};

  std::thread reader([&] {
    typename TypeParam::Registration reg(domain);
    domain.read_lock();
    reader_in_section.store(true);
    barrier.arrive_and_wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    reader_done.store(true);
    domain.read_unlock();
  });

  std::thread updater([&] {
    typename TypeParam::Registration reg(domain);
    barrier.arrive_and_wait();
    ASSERT_TRUE(reader_in_section.load());
    domain.synchronize();
    // The reader's entire section must have completed.
    EXPECT_TRUE(reader_done.load());
    sync_returned.store(true);
  });

  reader.join();
  updater.join();
  EXPECT_TRUE(sync_returned.load());
}

TYPED_TEST(RcuDomainTest, SynchronizeDoesNotWaitForLaterSections) {
  TypeParam domain;
  typename TypeParam::Registration reg(domain);
  // No reader active: synchronize must return promptly even though other
  // threads keep opening new sections concurrently.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    typename TypeParam::Registration r(domain);
    while (!stop.load(std::memory_order_relaxed)) {
      domain.read_lock();
      domain.read_unlock();
    }
  });
  for (int i = 0; i < 100; ++i) domain.synchronize();
  stop.store(true);
  churner.join();
  EXPECT_GE(domain.synchronize_calls(), 100u);
}

TYPED_TEST(RcuDomainTest, GracePeriodPublishesData) {
  // Classic usage: unlink, synchronize, free. Readers that can still hold
  // the old pointer are waited out; afterwards the old buffer is never
  // referenced. We model "free" by poisoning.
  TypeParam domain;
  struct Buf {
    std::atomic<bool> poisoned{false};
    int payload = 0;
  };
  Buf bufs[2];
  bufs[0].payload = 1;
  bufs[1].payload = 2;
  std::atomic<Buf*> current{&bufs[0]};
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      typename TypeParam::Registration reg(domain);
      while (!stop.load(std::memory_order_relaxed)) {
        domain.read_lock();
        Buf* b = current.load(std::memory_order_acquire);
        if (b->poisoned.load(std::memory_order_acquire)) {
          violation.store(true);
        }
        domain.read_unlock();
      }
    });
  }

  {
    typename TypeParam::Registration reg(domain);
    for (int i = 0; i < 200; ++i) {
      Buf* old = current.load(std::memory_order_relaxed);
      Buf* fresh = old == &bufs[0] ? &bufs[1] : &bufs[0];
      fresh->poisoned.store(false, std::memory_order_release);
      current.store(fresh, std::memory_order_release);
      domain.synchronize();
      // No pre-existing reader can still hold `old`.
      old->poisoned.store(true, std::memory_order_release);
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(violation.load());
}

TYPED_TEST(RcuDomainTest, ConcurrentSynchronizersMakeProgress) {
  TypeParam domain;
  constexpr int kThreads = 4;
  constexpr int kSyncs = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      typename TypeParam::Registration reg(domain);
      for (int i = 0; i < kSyncs; ++i) {
        domain.read_lock();
        domain.read_unlock();
        domain.synchronize();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(domain.synchronize_calls(), kThreads * kSyncs);
}

TYPED_TEST(RcuDomainTest, RetireRunsAfterGracePeriod) {
  TypeParam domain;
  typename TypeParam::Registration reg(domain);
  domain.set_retire_batch(4);
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  for (int i = 0; i < 3; ++i) citrus::rcu::retire_delete(domain, new Obj);
  EXPECT_EQ(domain.pending_retired(), 3u);
  EXPECT_EQ(freed.load(), 0);
  citrus::rcu::retire_delete(domain, new Obj);  // batch reaches 4: flush
  EXPECT_EQ(domain.pending_retired(), 0u);
  EXPECT_EQ(freed.load(), 4);
}

TYPED_TEST(RcuDomainTest, RetireInsideReadSectionDefersFlush) {
  TypeParam domain;
  typename TypeParam::Registration reg(domain);
  domain.set_retire_batch(1);
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  domain.read_lock();
  citrus::rcu::retire_delete(domain, new Obj);
  // A flush here would deadlock on our own section; it must be deferred.
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(domain.pending_retired(), 1u);
  domain.read_unlock();
  domain.maybe_flush_retired();
  EXPECT_EQ(freed.load(), 1);
}

TYPED_TEST(RcuDomainTest, RegistrationTeardownFlushesRetired) {
  TypeParam domain;
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  std::thread worker([&] {
    typename TypeParam::Registration reg(domain);
    domain.set_retire_batch(1000);  // never reaches the threshold
    for (int i = 0; i < 5; ++i) citrus::rcu::retire_delete(domain, new Obj);
    EXPECT_EQ(freed.load(), 0);
  });
  worker.join();
  EXPECT_EQ(freed.load(), 5);
}

TYPED_TEST(RcuDomainTest, RecordReuseAcrossThreads) {
  TypeParam domain;
  // Sequential thread churn must recycle records instead of growing the
  // registry without bound.
  for (int i = 0; i < 64; ++i) {
    std::thread([&] {
      typename TypeParam::Registration reg(domain);
      domain.read_lock();
      domain.read_unlock();
    }).join();
  }
  typename TypeParam::Registration reg(domain);
  domain.synchronize();  // registry scan over recycled records stays sane
  SUCCEED();
}

TYPED_TEST(RcuDomainTest, ReadGuardRaii) {
  TypeParam domain;
  typename TypeParam::Registration reg(domain);
  {
    citrus::rcu::ReadGuard<TypeParam> guard(domain);
    // Inside the section a concurrent synchronize would block; we only
    // assert that unlock happens automatically.
  }
  domain.synchronize();  // must not deadlock
  SUCCEED();
}

TEST(EpochRcu, EpochAdvancesOnSynchronize) {
  EpochRcu domain;
  EpochRcu::Registration reg(domain);
  const auto before = domain.current_epoch();
  domain.synchronize();
  domain.synchronize();
  EXPECT_EQ(domain.current_epoch(), before + 2);
}

TEST(CounterFlagRcu, ReaderWordProtocol) {
  // White-box-ish: read_sections statistics advance per completed section.
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  for (int i = 0; i < 10; ++i) {
    domain.read_lock();
    domain.read_unlock();
  }
  // Nesting counts as one section.
  domain.read_lock();
  domain.read_lock();
  domain.read_unlock();
  domain.read_unlock();
  EXPECT_EQ(reg.record().read_sections, 11u);
}

}  // namespace
