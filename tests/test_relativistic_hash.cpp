// Relativistic hash table: resize behaviour on top of what the shared
// typed dictionary suite covers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "baselines/relativistic_hash.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using Table = citrus::baselines::RelativisticHashTable<long, long>;

TEST(RelHash, GrowsWithLoad) {
  CounterFlagRcu domain;
  Table t(domain);
  CounterFlagRcu::Registration reg(domain);
  const auto initial = t.bucket_count();
  for (long k = 0; k < 1000; ++k) ASSERT_TRUE(t.insert(k, k));
  EXPECT_GT(t.bucket_count(), initial);
  EXPECT_GE(t.resizes(), 1u);
  // Load factor maintained at <= ~1 after the triggering insert settles.
  EXPECT_GE(t.bucket_count() * 2, t.size());
  for (long k = 0; k < 1000; ++k) ASSERT_TRUE(t.contains(k));
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(RelHash, SemanticsSurviveResizes) {
  CounterFlagRcu domain;
  Table t(domain);
  CounterFlagRcu::Registration reg(domain);
  citrus::util::Xoshiro256 rng(2718);
  std::set<long> oracle;
  for (int i = 0; i < 30000; ++i) {
    const long k = static_cast<long>(rng.bounded(2000));
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k, k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(RelHash, ReadersNeverBlockedByResize) {
  // Readers hammer a permanent key set while inserts force repeated
  // growth; every lookup of a permanent key must succeed (old and new
  // table versions are both complete).
  CounterFlagRcu domain;
  Table t(domain);
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < 64; ++k) t.insert(k, k * 7);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> missed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(r);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = static_cast<long>(rng.bounded(64));
        const auto v = t.find(k);
        if (!v.has_value() || *v != k * 7) missed.store(true);
      }
    });
  }
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 1000; k < 9000; ++k) t.insert(k, k);  // forces growth
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_FALSE(missed.load());
  EXPECT_GE(t.resizes(), 3u);
  std::string err;
  CounterFlagRcu::Registration reg(domain);
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(RelHash, ConcurrentUpdatersAcrossBuckets) {
  CounterFlagRcu domain;
  Table t(domain);
  constexpr int kThreads = 5;
  constexpr long kStripe = 3000;
  std::vector<std::set<long>> owned(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(i + 1);
      auto& mine = owned[i];
      for (int j = 0; j < 15000; ++j) {
        const long k = i * kStripe + static_cast<long>(rng.bounded(kStripe));
        if (rng.bounded(2) == 0) {
          ASSERT_EQ(t.insert(k, k), mine.insert(k).second);
        } else {
          ASSERT_EQ(t.erase(k), mine.erase(k) > 0);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::size_t expected = 0;
  for (const auto& mine : owned) expected += mine.size();
  EXPECT_EQ(t.size(), expected);
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

}  // namespace
