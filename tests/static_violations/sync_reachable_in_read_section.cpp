// expect-finding: sync-in-read-section
//
// Violation class (d), reachability form: the grace-period wait is one
// call deep. `drain` is legal on its own; calling it from inside a read
// section is the deadlock. Requires the call-graph fixpoint — a purely
// local check cannot see it.
#include "corpus_common.hpp"

namespace corpus {

void drain(FakeRcu& rcu) { rcu.synchronize(); }

void caller_inside_section(FakeRcu& rcu) {
  ReadGuard guard(rcu);
  drain(rcu);
}

}  // namespace corpus
