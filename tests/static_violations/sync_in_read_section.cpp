// expect-finding: sync-in-read-section
//
// Violation class (d), direct form: synchronize() called while a read-side
// critical section is open. The grace period being awaited includes the
// waiter's own section — a self-deadlock (rcucheck's runtime class (d),
// caught here without executing the path).
#include "corpus_common.hpp"

namespace corpus {

void self_deadlock(FakeRcu& rcu) {
  ReadGuard guard(rcu);
  rcu.synchronize();
}

}  // namespace corpus
