// expect-finding: publish-not-release
//
// Violation class (c), cop-updater flavor: the copy-validate-publish
// protocol (src/citrus/citrus_cop.hpp) builds a private copy of the
// affected neighborhood, then makes it reachable by swinging exactly one
// parent link. That swing IS the linearization point, and it is the only
// store concurrent readers synchronize with — done relaxed, a reader's
// acquire load of the link can observe the copy before the copy's
// payload/children writes, i.e. a half-built node. The real protocol
// publishes through guarded_ptr::publish() (release by construction) or a
// release compare_exchange; this file seeds the raw-atomic relaxed form
// the analyzer must still catch even though the copy was built privately
// (private construction does not excuse the publish ordering).
#include <atomic>
#include <cstdint>

namespace corpus {

struct CopNode {
  std::int64_t key = 0;
  std::int64_t value = 0;
  std::atomic<CopNode*> child[2] = {{nullptr}, {nullptr}};
};

// Build a private replacement for `victim` (copy key/value, adopt its
// children) and publish it over the parent's link — with the wrong order.
void cop_publish_copy(CopNode* parent, int dir, CopNode* victim,
                      CopNode* copy) {
  copy->key = victim->key;
  copy->value = victim->value;
  copy->child[0].store(victim->child[0].load(std::memory_order_acquire),
                       std::memory_order_relaxed);  // private: fine
  copy->child[1].store(victim->child[1].load(std::memory_order_acquire),
                       std::memory_order_relaxed);  // private: fine
  // The publish: readers traverse parent->child[dir]. Relaxed here lets a
  // reader see `copy` without the payload stores above.
  parent->child[dir].store(copy, std::memory_order_relaxed);
}

}  // namespace corpus
