// expect-diagnostic: annotation error
//
// Grammar enforcement (shared with lint_rcu.py via rcu_annotations.py): a
// typo'd suppression key must be *rejected with a diagnostic*, not
// silently ignored — a suppression that quietly suppresses nothing is the
// worst failure mode an escape-hatch grammar can have.
#include "corpus_common.hpp"

namespace corpus {

// rcu-analyze: quiscent (typo for `quiescent` — must be rejected)
void fine(Node& root) { root.next.unguarded_store(nullptr); }

}  // namespace corpus
