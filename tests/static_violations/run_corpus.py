#!/usr/bin/env python3
"""run_corpus.py — regression driver for tools/rcu_analyze.py.

Three assertions, mirroring the rcucheck suite's shape:

  1. Every seeded-violation file in this directory is *flagged* with the
     finding kind its `// expect-finding:` header names (or produces an
     annotation diagnostic, for `// expect-diagnostic:` files).
  2. Files marked `// expect-clean` produce zero findings (false-positive
     guard).
  3. The analyzer stays clean on the real `src/` tree.

As a bonus, when a C++ compiler is available every corpus file is also
syntax-checked (`-fsyntax-only`) against the real wrapper header: the
violations must be *compilable* discipline bugs, not type errors — the
wrappers make indiscipline explicit, the analyzer makes it flagged.

Usage: tests/static_violations/run_corpus.py [--root DIR]
Exit 0 iff all assertions hold. Registered as a ctest (label: tier1).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

EXPECT_FINDING_RE = re.compile(r"//\s*expect-finding:\s*([\w-]+)")
EXPECT_DIAG_RE = re.compile(r"//\s*expect-diagnostic:\s*(.+)")
EXPECT_CLEAN_RE = re.compile(r"//\s*expect-clean\b")


def run_analyzer(root: pathlib.Path, target: pathlib.Path):
    return subprocess.run(
        [
            sys.executable,
            str(root / "tools" / "rcu_analyze.py"),
            "--root",
            str(root),
            str(target),
        ],
        capture_output=True,
        text=True,
        cwd=root,
    )


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=None, help="repo root")
    args = ap.parse_args()

    here = pathlib.Path(__file__).resolve().parent
    root = (
        pathlib.Path(args.root).resolve()
        if args.root
        else here.parent.parent
    )

    failures: list[str] = []
    checked = 0

    cxx = shutil.which("g++") or shutil.which("c++") or shutil.which("clang++")

    for case in sorted(here.glob("*.cpp")):
        text = case.read_text(encoding="utf-8")
        expect_kinds = EXPECT_FINDING_RE.findall(text)
        expect_diags = EXPECT_DIAG_RE.findall(text)
        expect_clean = EXPECT_CLEAN_RE.search(text) is not None
        if not (expect_kinds or expect_diags or expect_clean):
            failures.append(
                f"{case.name}: no expect-finding/expect-diagnostic/"
                f"expect-clean header — every corpus file must state its "
                f"contract"
            )
            continue

        proc = run_analyzer(root, case)
        out = proc.stdout + proc.stderr
        checked += 1

        if expect_clean:
            if proc.returncode != 0:
                failures.append(
                    f"{case.name}: expected clean, analyzer exited "
                    f"{proc.returncode}:\n{out}"
                )
        else:
            if proc.returncode == 0:
                failures.append(
                    f"{case.name}: seeded violation NOT flagged "
                    f"(analyzer exited 0):\n{out}"
                )
            for kind in expect_kinds:
                if f"[{kind}]" not in out:
                    failures.append(
                        f"{case.name}: expected finding kind "
                        f"[{kind}] absent from output:\n{out}"
                    )
            for diag in expect_diags:
                if diag.strip() not in out:
                    failures.append(
                        f"{case.name}: expected diagnostic text "
                        f"`{diag.strip()}` absent from output:\n{out}"
                    )

        if cxx is not None:
            cc = subprocess.run(
                [
                    cxx,
                    "-std=c++20",
                    "-fsyntax-only",
                    f"-I{root / 'src'}",
                    f"-I{here}",
                    str(case),
                ],
                capture_output=True,
                text=True,
            )
            if cc.returncode != 0:
                failures.append(
                    f"{case.name}: does not compile "
                    f"(violations must be valid C++):\n{cc.stderr}"
                )

    # The real tree must stay clean — the zero-findings half of the
    # acceptance contract.
    src = run_analyzer(root, root / "src")
    if src.returncode != 0:
        failures.append(
            f"src/: analyzer not clean:\n{src.stdout}{src.stderr}"
        )

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(f"\nrun_corpus: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(
        f"run_corpus: ok ({checked} corpus cases"
        f"{', compile-checked' if cxx else ''}; src/ clean)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
