// Shared scaffolding for the seeded-violation corpus. Each corpus file is
// a minimal, compilable (g++ -fsyntax-only -Isrc) translation unit that
// commits exactly one RCU-discipline violation for tools/rcu_analyze.py
// to flag — the analyzer's own regression suite, mirroring how
// tests/test_rcucheck.cpp seeds runtime violations for the checker.
//
// FakeRcu/ReadGuard carry the real protocol names (read_lock, read_unlock,
// synchronize, ReadGuard) so both analyzer frontends recognize them — the
// libclang backend through the CITRUS_RCU_*_FN annotate tags, the fallback
// through the identifiers. The violations themselves all *compile*: the
// typed wrappers make undisciplined code explicit (escape(), unguarded_*),
// not inexpressible, and the analyzer is what turns explicit into flagged.
#pragma once

#include "rcu/guarded_ptr.hpp"

namespace corpus {

struct Node {
  int value = 0;
  citrus::rcu::guarded_ptr<Node> next;
};

struct FakeRcu {
  CITRUS_RCU_READ_LOCK_FN void read_lock() noexcept {}
  CITRUS_RCU_READ_UNLOCK_FN void read_unlock() noexcept {}
  CITRUS_RCU_SYNCHRONIZE_FN void synchronize() noexcept {}
};

class ReadGuard {
 public:
  CITRUS_RCU_READ_LOCK_FN explicit ReadGuard(FakeRcu& r) noexcept : r_(r) {
    r_.read_lock();
  }
  CITRUS_RCU_READ_UNLOCK_FN ~ReadGuard() { r_.read_unlock(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  FakeRcu& r_;
};

}  // namespace corpus
