// expect-finding: quiescent-escape
//
// The quiescent escape hatches (unguarded_load/unguarded_store) are for
// single-owner phases: pre-publication construction, post-join teardown,
// post-grace-period scrubbing. Using one in an ordinary function without
// a quiescent suppression marker stating why no concurrent readers exist
// is a discipline hole — the store is relaxed and the cell may be
// concurrently read. (The marker itself is deliberately not spelled out
// in this comment: the grammar would parse it and bless the function.)
#include "corpus_common.hpp"

namespace corpus {

void sloppy_reset(Node& root) {
  root.next.unguarded_store(nullptr);
}

}  // namespace corpus
