// expect-finding: publish-not-release
//
// Violation class (c), maintainer flavor: the background structural
// maintainer (src/maint/citrus_cf.hpp) builds a perfectly balanced private
// copy of a degenerated subtree, then makes the whole copy reachable by
// swinging exactly ONE parent edge. Every node of the copy is private
// until that single store — so the store carries the release obligation
// for the entire subtree's construction: keys, values, and every internal
// child link. Done relaxed, a wait-free reader's acquire load of the
// parent edge can reach the copy's root before the interior of the copy is
// visible and walk half-built links. The real protocol swings the edge
// with a release compare_exchange under the parent's seqlock bump; this
// file seeds the raw-atomic relaxed form the analyzer must flag even
// though (especially because) everything else about the rebuild was done
// privately and correctly.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace corpus {

struct MaintNode {
  std::int64_t key = 0;
  std::int64_t value = 0;
  std::atomic<MaintNode*> child[2] = {{nullptr}, {nullptr}};
};

// Balanced private build over pairs[lo, hi): midpoint root, halves as
// children. All stores are to never-published nodes — genuinely fine.
inline MaintNode* maint_build_balanced(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& pairs,
    std::size_t lo, std::size_t hi) {
  if (lo >= hi) return nullptr;
  const std::size_t mid = lo + (hi - lo) / 2;
  MaintNode* n = new MaintNode;
  n->key = pairs[mid].first;
  n->value = pairs[mid].second;
  n->child[0].store(maint_build_balanced(pairs, lo, mid),
                    std::memory_order_relaxed);  // private: fine
  n->child[1].store(maint_build_balanced(pairs, mid + 1, hi),
                    std::memory_order_relaxed);  // private: fine
  return n;
}

// The one-edge subtree swing — with the wrong order. Readers traverse
// parent->child[dir]; relaxed here lets them see the fresh subtree's root
// without any of the private construction above.
inline void maint_publish_subtree(
    MaintNode* parent, int dir,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& pairs) {
  MaintNode* fresh = maint_build_balanced(pairs, 0, pairs.size());
  parent->child[dir].store(fresh, std::memory_order_relaxed);
}

}  // namespace corpus
