// expect-finding: region-escape
//
// Violation class (b): a protected pointer is captured by a deferred
// callback. The lambda runs whenever its owner invokes it — long after
// this frame's read-side critical section is gone.
#include <functional>

#include "corpus_common.hpp"

namespace corpus {

std::function<int()> defer(FakeRcu& rcu, Node& root) {
  ReadGuard guard(rcu);
  citrus::rcu::protected_ptr<Node> h = root.next.load_protected();
  Node* captured = h.escape();
  return [captured] { return captured->value; };
}

}  // namespace corpus
