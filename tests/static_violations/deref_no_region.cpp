// expect-finding: deref-outside-region
//
// Violation class (a), degenerate form: a guarded load and deref with no
// protection region anywhere in the function — the plain data race every
// rcu_dereference-without-rcu_read_lock bug reduces to.
#include "corpus_common.hpp"

namespace corpus {

int unprotected(Node& root) {
  citrus::rcu::protected_ptr<Node> h = root.next.load_protected();
  return h->value;
}

}  // namespace corpus
