// expect-finding: region-escape
//
// Violation class (b): a protected pointer escapes by being parked in a
// member field. The field outlives the read-side critical section, so any
// later reader of `last` holds a pointer with no protection at all.
#include "corpus_common.hpp"

namespace corpus {

struct Cache {
  Node* last = nullptr;

  void remember(FakeRcu& rcu, Node& root) {
    ReadGuard guard(rcu);
    citrus::rcu::protected_ptr<Node> h = root.next.load_protected();
    last = h.escape();
  }
};

}  // namespace corpus
