// expect-clean
//
// False-positive guard: a fully disciplined function — guarded walk inside
// a read-side critical section, release publish through the typed API, a
// teardown correctly annotated quiescent — must produce zero findings.
#include "corpus_common.hpp"

namespace corpus {

int sum_list(FakeRcu& rcu, Node& root) {
  ReadGuard guard(rcu);
  int total = 0;
  citrus::rcu::protected_ptr<Node> h = root.next.load_protected();
  while (h != nullptr) {
    total += h->value;
    h = h->next.load_protected();
  }
  return total;
}

void swing(Node& parent, Node* fresh) { parent.next.publish(fresh); }

// rcu-analyze: quiescent (teardown: all readers joined before this runs)
void teardown(Node& root) { root.next.unguarded_store(nullptr); }

}  // namespace corpus
