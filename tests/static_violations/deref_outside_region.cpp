// expect-finding: deref-outside-region
//
// Violation class (a), the use-after-region bug the paper's `get` protocol
// exists to prevent: a handle loaded inside a read-side critical section
// is dereferenced after the section's scope closes. Between the `}` and
// the deref a grace period may elapse and the node be reclaimed.
#include "corpus_common.hpp"

namespace corpus {

int stale_read(FakeRcu& rcu, Node& root) {
  citrus::rcu::protected_ptr<Node> h;
  {
    ReadGuard guard(rcu);
    h = root.next.load_protected();
  }
  return h->value;  // the protecting section ended at the brace above
}

}  // namespace corpus
