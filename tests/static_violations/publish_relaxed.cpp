// expect-finding: publish-not-release
//
// Violation class (c): a pointer swing that makes a node reachable to
// concurrent readers, done with a relaxed store on a raw atomic cell. A
// reader's acquire load of `head_` is not guaranteed to observe the
// node's initialization. Unwritable through guarded_ptr::publish() (which
// is release by construction) — this file deliberately bypasses the typed
// API to seed the raw-atomic form the analyzer must still catch.
#include <atomic>

namespace corpus {

struct RawNode {
  int value = 0;
  std::atomic<RawNode*> next{nullptr};
};

struct RawList {
  std::atomic<RawNode*> head_{nullptr};
};

void publish_new_head(RawList& list, RawNode* fresh) {
  fresh->next.store(list.head_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  list.head_.store(fresh, std::memory_order_relaxed);  // readers traverse this
}

}  // namespace corpus
