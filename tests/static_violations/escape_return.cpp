// expect-finding: region-escape
//
// Violation class (b): a protected pointer escapes its critical section by
// being returned. The caller receives a raw Node* whose protection ended
// at the callee's closing brace — unlike the tree's own get→lock handoff,
// nothing re-validates it, and there is no annotation claiming otherwise.
#include "corpus_common.hpp"

namespace corpus {

Node* leak_return(FakeRcu& rcu, Node& root) {
  ReadGuard guard(rcu);
  citrus::rcu::protected_ptr<Node> h = root.next.load_protected();
  return h.escape();
}

}  // namespace corpus
