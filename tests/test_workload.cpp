// Workload generator / runner: prefill level, operation-mix accounting,
// single-writer mode, result bookkeeping.
#include <gtest/gtest.h>

#include "adapters/idictionary.hpp"
#include "workload/config.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

#include <sstream>

namespace {

using citrus::adapters::make_dictionary;
using citrus::workload::RunResult;
using citrus::workload::WorkloadConfig;

TEST(Workload, PrefillReachesHalfRange) {
  auto dict = make_dictionary("citrus");
  WorkloadConfig config;
  config.key_range = 2000;
  config.threads = 3;
  citrus::workload::prefill(*dict, config);
  const auto scope = dict->enter_thread();
  EXPECT_EQ(dict->size(), 1000u);
}

TEST(Workload, MixFractionsRoughlyHonored) {
  auto dict = make_dictionary("citrus");
  WorkloadConfig config;
  config.key_range = 4096;
  config.threads = 2;
  config.seconds = 0.3;
  config.contains_fraction = 0.9;
  const RunResult r = citrus::workload::run_workload(*dict, config);
  ASSERT_GT(r.total_ops, 1000u);
  const double contains_share =
      static_cast<double>(r.contains_ops) / static_cast<double>(r.total_ops);
  EXPECT_NEAR(contains_share, 0.9, 0.03);
  // Remainder splits evenly between inserts and erases.
  EXPECT_NEAR(static_cast<double>(r.insert_ops),
              static_cast<double>(r.erase_ops),
              0.25 * static_cast<double>(r.insert_ops) + 50.0);
  EXPECT_EQ(r.total_ops, r.contains_ops + r.insert_ops + r.erase_ops);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(Workload, SingleWriterOnlyThreadZeroUpdates) {
  auto dict = make_dictionary("citrus");
  WorkloadConfig config;
  config.key_range = 1024;
  config.threads = 3;
  config.seconds = 0.2;
  config.single_writer = true;
  const RunResult r = citrus::workload::run_workload(*dict, config);
  // Updates exist (thread 0) and reads dominate (threads 1,2).
  EXPECT_GT(r.insert_ops + r.erase_ops, 0u);
  EXPECT_GT(r.contains_ops, 0u);
  // Mean sizes stay near the prefill level: inserts and erases balance.
  const auto scope = dict->enter_thread();
  EXPECT_NEAR(static_cast<double>(dict->size()), 512.0, 200.0);
}

TEST(Workload, HundredPercentContainsDoesNotModify) {
  auto dict = make_dictionary("citrus");
  WorkloadConfig config;
  config.key_range = 512;
  config.threads = 2;
  config.seconds = 0.15;
  config.contains_fraction = 1.0;
  const RunResult r = citrus::workload::run_workload(*dict, config);
  EXPECT_EQ(r.insert_ops, 0u);
  EXPECT_EQ(r.erase_ops, 0u);
  EXPECT_EQ(r.final_size, 256u);
}

TEST(Workload, GracePeriodsReportedForUpdateHeavyRuns) {
  auto dict = make_dictionary("citrus");
  WorkloadConfig config;
  config.key_range = 256;
  config.threads = 2;
  config.seconds = 0.15;
  config.contains_fraction = 0.0;  // all updates
  const RunResult r = citrus::workload::run_workload(*dict, config);
  EXPECT_GT(r.grace_periods, 0u);  // two-child deletes happened
}

TEST(Workload, QsbrDictionaryRunsToCompletion) {
  // Regression: a worker finishing its run must go offline before parking
  // at the exit barrier, or a QSBR grace period inside another worker's
  // last update stalls forever.
  auto dict = make_dictionary("citrus-qsbr");
  WorkloadConfig config;
  config.key_range = 256;
  config.threads = 4;
  config.seconds = 0.2;
  config.contains_fraction = 0.2;  // update-heavy: lots of grace periods
  const RunResult r = citrus::workload::run_workload(*dict, config);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.grace_periods, 0u);
}

TEST(Workload, RepeatedRunsAggregate) {
  WorkloadConfig config;
  config.key_range = 512;
  config.threads = 2;
  config.seconds = 0.1;
  const auto summary = citrus::workload::run_repeated("skiplist", config, 3);
  EXPECT_EQ(summary.count, 3u);
  EXPECT_GT(summary.mean, 0.0);
  EXPECT_LE(summary.min, summary.mean);
  EXPECT_GE(summary.max, summary.mean);
}

TEST(Report, FormatsEngineeringUnits) {
  using citrus::workload::format_ops;
  EXPECT_EQ(format_ops(1.5e9), "1.50G");
  EXPECT_EQ(format_ops(2.34e6), "2.34M");
  EXPECT_EQ(format_ops(45600), "45.6k");
  EXPECT_EQ(format_ops(321), "321");
}

TEST(Report, TableContainsSeriesAndThreads) {
  std::ostringstream out;
  std::vector<citrus::workload::SeriesPoint> points;
  citrus::util::Summary s;
  s.mean = 1e6;
  points.push_back({"citrus", 1, s});
  points.push_back({"citrus", 4, s});
  points.push_back({"avl", 1, s});
  citrus::workload::print_throughput_table(out, "test table", points);
  const std::string text = out.str();
  EXPECT_NE(text.find("citrus"), std::string::npos);
  EXPECT_NE(text.find("avl"), std::string::npos);
  EXPECT_NE(text.find("1.00M"), std::string::npos);
  EXPECT_NE(text.find("test table"), std::string::npos);
}

TEST(Workload, MixLabel) {
  WorkloadConfig c;
  c.contains_fraction = 0.98;
  EXPECT_EQ(c.mix_label(), "98% contains");
  c.single_writer = true;
  EXPECT_EQ(c.mix_label(), "single-writer");
}

}  // namespace
