// Seeded-violation suite for the rcucheck discipline verifier (src/check/).
//
// One deliberately broken mini-client per violation class (a)-(e) of
// DESIGN.md "Correctness tooling", each asserting that the checker's ring
// buffer names exactly that class; plus clean-run tests asserting zero
// false positives on correct concurrent usage of the tree and the sharded
// dictionary (the rest of the tier-1 suite enforces the same property
// process-wide, because the sink's default mode aborts).
//
// Under CITRUS_RCU_CHECK=OFF every seeded test skips and the suite instead
// verifies the hooks are inert no-ops.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "citrus/citrus_node.hpp"
#include "citrus/citrus_tree.hpp"
#include "citrus/node_pool.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "shard/sharded_dict.hpp"
#include "sync/spinlock.hpp"
#include "util/rng.hpp"

namespace {

using citrus::check::ViolationClass;
using citrus::check::ViolationSink;
using citrus::rcu::CounterFlagRcu;

using NodeLock = citrus::sync::UseSpinLock::type;
using Node = citrus::core::CitrusNode<long, long, NodeLock>;
using Pool = citrus::core::NodePool<Node>;

std::uint64_t count(ViolationClass c) {
  return ViolationSink::instance().count(c);
}

// Record mode for the duration of each seeded test; skips when the checker
// is compiled out.
class RcuCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!citrus::check::kEnabled) {
      GTEST_SKIP() << "CITRUS_RCU_CHECK is OFF; seeded violations need the "
                      "instrumented build";
    }
    ViolationSink::instance().clear();
    record_.emplace();
  }
  void TearDown() override {
    record_.reset();
    ViolationSink::instance().clear();
  }

 private:
  std::optional<citrus::check::ScopedRecordMode> record_;
};

Node* allocate_real(Pool& pool, long key, long value) {
  return pool.allocate(false, citrus::core::NodeKind::kReal, &key, &value,
                       nullptr, nullptr);
}

// (a) A traversal step with no read-side critical section, no node lock
// and no quiescent declaration.
TEST_F(RcuCheckTest, DetectsDerefOutsideReadSection) {
  Pool pool;
  Node* n = allocate_real(pool, 1, 2);
  citrus::check::on_node_access(n);  // broken reader: bare dereference
  EXPECT_EQ(count(ViolationClass::kDerefOutsideReadSection), 1u);
  n->marked.store(true, std::memory_order_relaxed);
  pool.recycle(n);
  EXPECT_EQ(count(ViolationClass::kDerefOutsideReadSection), 1u);
}

// Control for (a): the same dereference is legal inside a section, under a
// node lock, or inside a declared-quiescent scope.
TEST_F(RcuCheckTest, AllowsDerefInLegalContexts) {
  Pool pool;
  Node* n = allocate_real(pool, 1, 2);
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);

  domain.read_lock();
  citrus::check::on_node_access(n);
  domain.read_unlock();

  NodeLock lock;
  lock.lock();
  citrus::check::on_node_access(n);
  lock.unlock();

  {
    citrus::check::ScopedQuiescent quiescent;
    citrus::check::on_node_access(n);
  }
  EXPECT_EQ(ViolationSink::instance().total(), 0u);
  n->marked.store(true, std::memory_order_relaxed);
  pool.recycle(n);
}

// (b) synchronize_rcu from inside a read-side critical section.
TEST_F(RcuCheckTest, DetectsSynchronizeInsideReadSection) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  domain.read_lock();
  domain.synchronize();  // self-deadlock pattern (paper Section 3)
  domain.read_unlock();
  EXPECT_EQ(count(ViolationClass::kUnsafeSynchronize), 1u);
}

// (b) synchronize_rcu while holding a node lock, without the blessing the
// tree's two-child delete uses to assert readers take no locks.
TEST_F(RcuCheckTest, DetectsSynchronizeWhileHoldingNodeLock) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  NodeLock lock;
  lock.lock();
  domain.synchronize();  // unblessed: flagged
  EXPECT_EQ(count(ViolationClass::kUnsafeSynchronize), 1u);
  {
    citrus::check::AllowSyncWithHeldLocks blessed;
    domain.synchronize();  // blessed: the two-child-delete pattern
  }
  lock.unlock();
  EXPECT_EQ(count(ViolationClass::kUnsafeSynchronize), 1u);
}

// (c) Unlock of a lock the thread never acquired.
TEST_F(RcuCheckTest, DetectsUnlockWithoutLock) {
  NodeLock lock;
  lock.unlock();
  EXPECT_EQ(count(ViolationClass::kBadUnlock), 1u);
}

// (c) Unlock from a different thread than the one holding the lock.
TEST_F(RcuCheckTest, DetectsCrossThreadUnlock) {
  NodeLock lock;
  std::thread locker([&lock] { lock.lock(); });
  locker.join();
  lock.unlock();  // this thread's held-set does not contain it
  EXPECT_EQ(count(ViolationClass::kBadUnlock), 1u);
}

// (d) Recycling a node that was never marked: by Lemma 1 only marked nodes
// become unreachable, so this retiree is still wired into the structure.
TEST_F(RcuCheckTest, DetectsRetireOfReachableNode) {
  Pool pool;
  Node* n = allocate_real(pool, 7, 7);
  pool.recycle(n);  // retire-before-unlink
  EXPECT_EQ(count(ViolationClass::kRetireReachable), 1u);
}

// (e) Dereference of a node after it was reclaimed to the pool: the free
// canary + payload poison installed by recycle() trip the checked access.
TEST_F(RcuCheckTest, DetectsUseAfterReclaim) {
  Pool pool;
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  Node* n = allocate_real(pool, 3, 4);
  n->marked.store(true, std::memory_order_relaxed);
  pool.recycle(n);

  domain.read_lock();  // context is legal — the *lifetime* is not
  citrus::check::on_node_access(n);
  domain.read_unlock();
  EXPECT_EQ(count(ViolationClass::kUseAfterReclaim), 1u);
  EXPECT_EQ(count(ViolationClass::kDerefOutsideReadSection), 0u);
}

// The ring buffer names the class and carries file:line provenance of the
// instrumentation site (here: the unlock hook in sync/spinlock.hpp).
TEST_F(RcuCheckTest, RingBufferNamesClassAndProvenance) {
  NodeLock lock;
  lock.unlock();
  const auto snap = ViolationSink::instance().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].cls, ViolationClass::kBadUnlock);
  ASSERT_NE(snap[0].file, nullptr);
  EXPECT_NE(std::string(snap[0].file).find("spinlock.hpp"),
            std::string::npos);
  EXPECT_GT(snap[0].line, 0u);
  EXPECT_STREQ(citrus::check::to_string(snap[0].cls), "bad-unlock");
}

// Zero false positives on a correct concurrent workload over the full
// instrumented stack: searches, inserts, both erase shapes (the two-child
// path exercises the blessed synchronize-while-locked), reclamation.
TEST_F(RcuCheckTest, CleanTreeWorkloadReportsNothing) {
  CounterFlagRcu domain;
  citrus::core::CitrusTree<long, long> tree(domain);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&domain, &tree, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(17 + t);
      for (int i = 0; i < 4000; ++i) {
        const long k = static_cast<long>(rng.bounded(128));
        const std::uint64_t op = rng.bounded(100);
        if (op < 40) {
          tree.contains(k);
        } else if (op < 55) {
          tree.find(k);
        } else if (op < 80) {
          tree.insert(k, k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(tree.stats().two_child_erases, 0u);
  EXPECT_TRUE(tree.check_structure().ok);
  EXPECT_EQ(ViolationSink::instance().total(), 0u);
}

TEST_F(RcuCheckTest, CleanShardedWorkloadReportsNothing) {
  citrus::shard::ShardedCitrus<long, long> dict(4);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, t] {
      citrus::shard::ShardedCitrus<long, long>::Registration reg(dict);
      citrus::util::Xoshiro256 rng(91 + t);
      for (int i = 0; i < 3000; ++i) {
        const long k = static_cast<long>(rng.bounded(256));
        const std::uint64_t op = rng.bounded(100);
        if (op < 50) {
          dict.contains(k);
        } else if (op < 80) {
          dict.insert(k, k);
        } else {
          dict.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(dict.check_structure().ok);
  EXPECT_EQ(ViolationSink::instance().total(), 0u);
}

// With the checker compiled out, every hook must be an inert no-op and the
// annotations empty objects — nothing reaches the sink.
TEST(RcuCheckDisabled, HooksAreInertWhenCompiledOut) {
  if (citrus::check::kEnabled) {
    GTEST_SKIP() << "this test asserts the CITRUS_RCU_CHECK=OFF contract";
  }
  Pool pool;
  Node* n = allocate_real(pool, 1, 1);
  citrus::check::on_node_access(n);
  citrus::check::on_retire(n, false);
  citrus::check::on_read_lock(nullptr);
  citrus::check::on_read_unlock(nullptr);
  citrus::check::on_synchronize(nullptr);
  {
    citrus::check::AllowSyncWithHeldLocks blessed;
    citrus::check::ScopedQuiescent quiescent;
  }
  EXPECT_EQ(citrus::check::read_depth(), 0u);
  EXPECT_EQ(citrus::check::held_lock_count(), 0u);
  EXPECT_EQ(ViolationSink::instance().total(), 0u);
  n->marked.store(true, std::memory_order_relaxed);
  pool.recycle(n);
}

}  // namespace
