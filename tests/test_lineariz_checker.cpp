// The linearizability checker itself must accept exactly the valid
// histories: unit tests with hand-built event sequences.
#include <gtest/gtest.h>

#include "lineariz/checker.hpp"

namespace {

using citrus::lineariz::check_key_history;
using citrus::lineariz::Event;
using citrus::lineariz::OpType;

Event ev(OpType t, bool result, std::uint64_t inv, std::uint64_t res) {
  return Event{0, t, result, inv, res, 0, 0, {}};
}

TEST(Checker, EmptyHistory) {
  EXPECT_TRUE(check_key_history({}, false, nullptr));
  EXPECT_TRUE(check_key_history({}, true, nullptr));
}

TEST(Checker, SequentialValid) {
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kContains, true, 2, 3),
          ev(OpType::kErase, true, 4, 5),
          ev(OpType::kContains, false, 6, 7),
      },
      false, nullptr));
}

TEST(Checker, SequentialInvalidContains) {
  // contains(false) strictly between a successful insert and anything
  // removing the key: impossible.
  std::string detail;
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kContains, false, 2, 3),
          ev(OpType::kContains, true, 4, 5),
      },
      false, &detail));
  EXPECT_FALSE(detail.empty());
}

TEST(Checker, SequentialInvalidDoubleInsert) {
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kInsert, true, 2, 3),  // second must have failed
      },
      false, nullptr));
}

// A kNoMemory update is recorded with noop=true: no effect, no membership
// claim. The same failed-insert shape WITHOUT the flag is a claim the key
// was present, which this history contradicts.
TEST(Checker, NoopEventIsAlwaysFeasible) {
  Event failed_insert = ev(OpType::kInsert, false, 2, 3);
  // Strictly between erase(true) and contains(false): the key is provably
  // absent, so insert(false) as a membership claim cannot linearize...
  std::vector<Event> h = {
      ev(OpType::kErase, true, 0, 1),
      failed_insert,
      ev(OpType::kContains, false, 4, 5),
  };
  EXPECT_FALSE(check_key_history(h, true, nullptr));
  // ...but the identical window as a no-assertion kNoMemory no-op does.
  h[1].noop = true;
  EXPECT_TRUE(check_key_history(h, true, nullptr));
}

// A noop event never changes the state: surrounding operations must still
// linearize against the unmodified set.
TEST(Checker, NoopEventLeavesStateUntouched) {
  Event noop_erase = ev(OpType::kErase, false, 2, 3);
  noop_erase.noop = true;
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          noop_erase,  // kNoMemory: the key stays present
          ev(OpType::kContains, true, 4, 5),
          ev(OpType::kErase, true, 6, 7),
      },
      false, nullptr));
}

TEST(Checker, InitiallyPresentMatters) {
  const std::vector<Event> h = {ev(OpType::kErase, true, 0, 1)};
  EXPECT_TRUE(check_key_history(h, true, nullptr));
  EXPECT_FALSE(check_key_history(h, false, nullptr));
}

TEST(Checker, OverlapAllowsEitherOrder) {
  // insert(true) and contains(false) overlapping: contains may linearize
  // before the insert.
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kContains, false, 1, 9),
      },
      false, nullptr));
  // But if contains strictly follows the insert's response, no.
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kContains, false, 11, 12),
      },
      false, nullptr));
}

TEST(Checker, ConcurrentInsertsExactlyOneWins) {
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kInsert, false, 1, 9),
      },
      false, nullptr));
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kInsert, true, 1, 9),  // both claim the win
      },
      false, nullptr));
}

TEST(Checker, InsertDeleteRace) {
  // delete(true) can only follow the insert; contains sees either state
  // while overlapping both.
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kErase, true, 2, 12),
          ev(OpType::kContains, true, 4, 8),
      },
      false, nullptr));
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kErase, true, 2, 12),
          ev(OpType::kContains, false, 4, 8),
      },
      false, nullptr));
}

TEST(Checker, RealTimeOrderIsRespected) {
  // Non-overlapping ops must take effect in real-time order: erase(false)
  // strictly after insert(true) with nothing else around is impossible.
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kErase, false, 2, 3),
      },
      false, nullptr));
}

TEST(Checker, LongAlternatingHistoryValid) {
  std::vector<Event> h;
  std::uint64_t t = 0;
  for (int i = 0; i < 30; ++i) {
    h.push_back(ev(OpType::kInsert, true, t, t + 1));
    t += 2;
    h.push_back(ev(OpType::kErase, true, t, t + 1));
    t += 2;
  }
  EXPECT_TRUE(check_key_history(h, false, nullptr));
}

TEST(Checker, RejectsOversizedHistories) {
  std::vector<Event> h;
  for (int i = 0; i < 65; ++i) {
    h.push_back(ev(OpType::kContains, false, 2 * i, 2 * i + 1));
  }
  std::string detail;
  EXPECT_FALSE(check_key_history(h, false, &detail));
  EXPECT_NE(detail.find("too long"), std::string::npos);
}

// --- Range operations: per-key projection (check_history) ---

using citrus::lineariz::check_history;
using citrus::lineariz::check_multikey_history;
using citrus::lineariz::HistoryRecorder;

TEST(Checker, RangeProjectionSequentialValid) {
  HistoryRecorder rec(1);
  // Initial {2, 4}; insert 6; scan [1, 10] sees {2, 4, 6}.
  auto t0 = rec.invoke();
  rec.record(0, 6, OpType::kInsert, true, t0);
  auto t1 = rec.invoke();
  rec.record_range(0, 1, 10, {2, 4, 6}, t1);
  const auto r = check_history(rec, {2, 4});
  EXPECT_TRUE(r.linearizable) << r.detail;
}

TEST(Checker, RangeProjectionMissedStableKey) {
  HistoryRecorder rec(1);
  // Key 4 is present throughout (initial, never erased) but the scan over
  // [1, 10] failed to report it: a real violation at every consistency
  // level this repo implements.
  auto t0 = rec.invoke();
  rec.record_range(0, 1, 10, {2}, t0);
  const auto r = check_history(rec, {2, 4});
  EXPECT_FALSE(r.linearizable);
  EXPECT_EQ(r.failing_key, 4);
}

TEST(Checker, RangeProjectionPhantomKey) {
  HistoryRecorder rec(1);
  // The scan reports key 5, but 5 was never inserted and is not initial.
  auto t0 = rec.invoke();
  rec.record_range(0, 1, 10, {2, 5}, t0);
  const auto r = check_history(rec, {2});
  EXPECT_FALSE(r.linearizable);
  EXPECT_EQ(r.failing_key, 5);
}

TEST(Checker, RangeProjectionConcurrentInsertEitherWay) {
  // A scan overlapping insert(7) may or may not include 7.
  for (const bool sees : {false, true}) {
    HistoryRecorder rec(2);
    auto ti = rec.invoke();
    auto ts = rec.invoke();
    rec.record_range(1, 1, 10, sees ? std::vector<std::int64_t>{7}
                                    : std::vector<std::int64_t>{},
                     ts);
    rec.record(0, 7, OpType::kInsert, true, ti);
    const auto r = check_history(rec, {});
    EXPECT_TRUE(r.linearizable) << "sees=" << sees << ": " << r.detail;
  }
}

TEST(Checker, RangeProjectionRespectsBounds) {
  HistoryRecorder rec(1);
  // Key 20 is present but out of bounds: the scan rightly omits it.
  auto t0 = rec.invoke();
  rec.record_range(0, 1, 10, {2}, t0);
  const auto r = check_history(rec, {2, 20});
  EXPECT_TRUE(r.linearizable) << r.detail;
}

// --- Range operations: exact joint check (check_multikey_history) ---

TEST(Checker, JointAcceptsAtomicScan) {
  HistoryRecorder rec(1);
  auto t0 = rec.invoke();
  rec.record(0, 3, OpType::kInsert, true, t0);
  auto t1 = rec.invoke();
  rec.record_range(0, 0, 100, {1, 3}, t1);
  auto t2 = rec.invoke();
  rec.record(0, 1, OpType::kErase, true, t2);
  const auto r = check_multikey_history(rec, {1});
  EXPECT_TRUE(r.linearizable) << r.detail;
}

TEST(Checker, JointRejectsTornScan) {
  // Sequential: insert(3), erase(1), then a scan reporting {1}. No point
  // in time after both updates contains that set (the state is {3}), so
  // the scan's observation is torn and the joint check must reject it.
  HistoryRecorder rec(1);
  auto t0 = rec.invoke();
  rec.record(0, 3, OpType::kInsert, true, t0);
  auto t1 = rec.invoke();
  rec.record(0, 1, OpType::kErase, true, t1);
  auto t2 = rec.invoke();
  rec.record_range(0, 0, 100, {1}, t2);
  const auto r = check_multikey_history(rec, {1});
  EXPECT_FALSE(r.linearizable);
}

TEST(Checker, JointAcceptsOverlappingScan) {
  // Scan overlaps both updates: any prefix of the update sequence is an
  // acceptable observation.
  for (const auto& observed : std::vector<std::vector<std::int64_t>>{
           {1}, {1, 3}, {3}}) {
    HistoryRecorder rec(2);
    auto ts = rec.invoke();
    auto t0 = rec.invoke();
    rec.record(0, 3, OpType::kInsert, true, t0);
    auto t1 = rec.invoke();
    rec.record(0, 1, OpType::kErase, true, t1);
    rec.record_range(1, 0, 100, observed, ts);
    const auto r = check_multikey_history(rec, {1});
    EXPECT_TRUE(r.linearizable) << r.detail;
  }
}

TEST(Checker, JointRejectsWhatProjectionCannot) {
  // Two concurrent inserts and two concurrent scans that disagree on the
  // insertion order: scan A observes {1} (so 1 before 2), scan B observes
  // {2} (so 2 before 1). Every per-key bit is individually justifiable —
  // the projection accepts — but no single total order satisfies both
  // scans, which only the joint multi-key search can see.
  HistoryRecorder rec(4);
  auto ti1 = rec.invoke();
  auto ti2 = rec.invoke();
  auto tsa = rec.invoke();
  auto tsb = rec.invoke();
  rec.record_range(2, 0, 10, {1}, tsa);
  rec.record_range(3, 0, 10, {2}, tsb);
  rec.record(0, 1, OpType::kInsert, true, ti1);
  rec.record(1, 2, OpType::kInsert, true, ti2);
  EXPECT_TRUE(check_history(rec, {}).linearizable);
  EXPECT_FALSE(check_multikey_history(rec, {}).linearizable);
}

TEST(Checker, JointRejectsOversizedHistories) {
  HistoryRecorder rec(1);
  for (int i = 0; i < 65; ++i) {
    auto t = rec.invoke();
    rec.record(0, i, OpType::kInsert, true, t);
  }
  const auto r = check_multikey_history(rec, {});
  EXPECT_FALSE(r.linearizable);
  EXPECT_NE(r.detail.find("too long"), std::string::npos);
}

TEST(Checker, DeepInterleavingSearch) {
  // A tangle of overlapping ops with a unique valid linearization; checks
  // the DFS explores enough of the order space.
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 100),
          ev(OpType::kErase, true, 1, 99),
          ev(OpType::kInsert, true, 2, 98),
          ev(OpType::kErase, true, 3, 97),
          ev(OpType::kContains, true, 4, 96),
          ev(OpType::kContains, false, 5, 95),
      },
      false, nullptr));
}

}  // namespace
