// The linearizability checker itself must accept exactly the valid
// histories: unit tests with hand-built event sequences.
#include <gtest/gtest.h>

#include "lineariz/checker.hpp"

namespace {

using citrus::lineariz::check_key_history;
using citrus::lineariz::Event;
using citrus::lineariz::OpType;

Event ev(OpType t, bool result, std::uint64_t inv, std::uint64_t res) {
  return Event{0, t, result, inv, res};
}

TEST(Checker, EmptyHistory) {
  EXPECT_TRUE(check_key_history({}, false, nullptr));
  EXPECT_TRUE(check_key_history({}, true, nullptr));
}

TEST(Checker, SequentialValid) {
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kContains, true, 2, 3),
          ev(OpType::kErase, true, 4, 5),
          ev(OpType::kContains, false, 6, 7),
      },
      false, nullptr));
}

TEST(Checker, SequentialInvalidContains) {
  // contains(false) strictly between a successful insert and anything
  // removing the key: impossible.
  std::string detail;
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kContains, false, 2, 3),
          ev(OpType::kContains, true, 4, 5),
      },
      false, &detail));
  EXPECT_FALSE(detail.empty());
}

TEST(Checker, SequentialInvalidDoubleInsert) {
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kInsert, true, 2, 3),  // second must have failed
      },
      false, nullptr));
}

TEST(Checker, InitiallyPresentMatters) {
  const std::vector<Event> h = {ev(OpType::kErase, true, 0, 1)};
  EXPECT_TRUE(check_key_history(h, true, nullptr));
  EXPECT_FALSE(check_key_history(h, false, nullptr));
}

TEST(Checker, OverlapAllowsEitherOrder) {
  // insert(true) and contains(false) overlapping: contains may linearize
  // before the insert.
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kContains, false, 1, 9),
      },
      false, nullptr));
  // But if contains strictly follows the insert's response, no.
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kContains, false, 11, 12),
      },
      false, nullptr));
}

TEST(Checker, ConcurrentInsertsExactlyOneWins) {
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kInsert, false, 1, 9),
      },
      false, nullptr));
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kInsert, true, 1, 9),  // both claim the win
      },
      false, nullptr));
}

TEST(Checker, InsertDeleteRace) {
  // delete(true) can only follow the insert; contains sees either state
  // while overlapping both.
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kErase, true, 2, 12),
          ev(OpType::kContains, true, 4, 8),
      },
      false, nullptr));
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 10),
          ev(OpType::kErase, true, 2, 12),
          ev(OpType::kContains, false, 4, 8),
      },
      false, nullptr));
}

TEST(Checker, RealTimeOrderIsRespected) {
  // Non-overlapping ops must take effect in real-time order: erase(false)
  // strictly after insert(true) with nothing else around is impossible.
  EXPECT_FALSE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 1),
          ev(OpType::kErase, false, 2, 3),
      },
      false, nullptr));
}

TEST(Checker, LongAlternatingHistoryValid) {
  std::vector<Event> h;
  std::uint64_t t = 0;
  for (int i = 0; i < 30; ++i) {
    h.push_back(ev(OpType::kInsert, true, t, t + 1));
    t += 2;
    h.push_back(ev(OpType::kErase, true, t, t + 1));
    t += 2;
  }
  EXPECT_TRUE(check_key_history(h, false, nullptr));
}

TEST(Checker, RejectsOversizedHistories) {
  std::vector<Event> h;
  for (int i = 0; i < 65; ++i) {
    h.push_back(ev(OpType::kContains, false, 2 * i, 2 * i + 1));
  }
  std::string detail;
  EXPECT_FALSE(check_key_history(h, false, &detail));
  EXPECT_NE(detail.find("too long"), std::string::npos);
}

TEST(Checker, DeepInterleavingSearch) {
  // A tangle of overlapping ops with a unique valid linearization; checks
  // the DFS explores enough of the order space.
  EXPECT_TRUE(check_key_history(
      {
          ev(OpType::kInsert, true, 0, 100),
          ev(OpType::kErase, true, 1, 99),
          ev(OpType::kInsert, true, 2, 98),
          ev(OpType::kErase, true, 3, 97),
          ev(OpType::kContains, true, 4, 96),
          ev(OpType::kContains, false, 5, 95),
      },
      false, nullptr));
}

}  // namespace
