// Ordered operations — succ/pred/range/snapshot — checked against a
// std::map oracle for every registered dictionary, at every scan
// consistency level, with randomized and adversarial boundary keys.
// Sequential here (the oracle must stay exact); concurrency is
// test_scan_torture's job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "adapters/dictionary.hpp"
#include "adapters/idictionary.hpp"
#include "baselines/seq_bst.hpp"
#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::adapters::available_dictionaries;
using citrus::adapters::DictionaryInfo;
using citrus::adapters::Entry;
using citrus::adapters::IDictionary;
using citrus::adapters::make_dictionary;
using citrus::adapters::ScanConsistency;
using citrus::adapters::ScanOptions;

constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

using Oracle = std::map<std::int64_t, std::int64_t>;

std::vector<std::int64_t> oracle_range(const Oracle& oracle, std::int64_t lo,
                                       std::int64_t hi, std::size_t limit) {
  std::vector<std::int64_t> keys;
  if (hi < lo) return keys;
  for (auto it = oracle.lower_bound(lo); it != oracle.end() && it->first <= hi;
       ++it) {
    if (limit != 0 && keys.size() == limit) break;
    keys.push_back(it->first);
  }
  return keys;
}

std::vector<std::int64_t> oracle_range_desc(const Oracle& oracle,
                                            std::int64_t lo, std::int64_t hi,
                                            std::size_t limit) {
  std::vector<std::int64_t> keys;
  if (hi < lo) return keys;
  auto it = oracle.upper_bound(hi);
  while (it != oracle.begin()) {
    --it;
    if (it->first < lo) break;
    if (limit != 0 && keys.size() == limit) break;
    keys.push_back(it->first);
  }
  return keys;
}

// Probe keys worth testing: every present key, the gaps next to them, the
// extremes of the int64 domain, and a spread of random keys.
std::vector<std::int64_t> probe_keys(const Oracle& oracle,
                                     citrus::util::Xoshiro256& rng) {
  std::vector<std::int64_t> probes = {kInt64Min, kInt64Min + 1, -1, 0, 1,
                                      kInt64Max - 1, kInt64Max};
  for (const auto& [k, v] : oracle) {
    probes.push_back(k);
    if (k > kInt64Min) probes.push_back(k - 1);
    if (k < kInt64Max) probes.push_back(k + 1);
  }
  for (int i = 0; i < 32; ++i) {
    probes.push_back(static_cast<std::int64_t>(rng() % 4096) - 1024);
  }
  return probes;
}

void check_succ_pred(IDictionary& dict, const Oracle& oracle,
                     const std::vector<std::int64_t>& probes) {
  for (const std::int64_t k : probes) {
    const auto s = dict.succ(k);
    const auto os = oracle.upper_bound(k);
    if (os == oracle.end()) {
      EXPECT_FALSE(s.has_value()) << dict.name() << " succ(" << k << ")";
    } else {
      ASSERT_TRUE(s.has_value()) << dict.name() << " succ(" << k << ")";
      EXPECT_EQ(s->key, os->first) << dict.name() << " succ(" << k << ")";
      EXPECT_EQ(s->value, os->second) << dict.name() << " succ(" << k << ")";
    }
    const auto p = dict.pred(k);
    auto op = oracle.lower_bound(k);
    if (op == oracle.begin()) {
      EXPECT_FALSE(p.has_value()) << dict.name() << " pred(" << k << ")";
    } else {
      --op;
      ASSERT_TRUE(p.has_value()) << dict.name() << " pred(" << k << ")";
      EXPECT_EQ(p->key, op->first) << dict.name() << " pred(" << k << ")";
      EXPECT_EQ(p->value, op->second) << dict.name() << " pred(" << k << ")";
    }
  }
}

void check_ranges(IDictionary& dict, const Oracle& oracle,
                  citrus::util::Xoshiro256& rng) {
  struct Case {
    std::int64_t lo, hi;
    std::size_t limit;
  };
  std::vector<Case> cases = {
      {kInt64Min, kInt64Max, 0},  // everything
      {0, 0, 0},                  // single key
      {10, 5, 0},                 // inverted -> empty
      {kInt64Min, -1, 0},
      {0, kInt64Max, 7},          // limited
  };
  for (int i = 0; i < 16; ++i) {
    const auto a = static_cast<std::int64_t>(rng() % 2048) - 512;
    const auto b = static_cast<std::int64_t>(rng() % 2048) - 512;
    cases.push_back({std::min(a, b), std::max(a, b), i % 3 == 0 ? 3u : 0u});
  }
  if (!oracle.empty()) {
    // Bounds exactly on present keys (inclusive both ends).
    cases.push_back({oracle.begin()->first, oracle.rbegin()->first, 0});
    cases.push_back({oracle.begin()->first, oracle.begin()->first, 0});
  }
  for (const ScanConsistency level :
       {ScanConsistency::kWeak, ScanConsistency::kChunked,
        ScanConsistency::kSnapshot}) {
    for (const Case& c : cases) {
      const auto want = oracle_range(oracle, c.lo, c.hi, c.limit);
      std::vector<std::int64_t> got;
      ScanOptions opts;
      opts.consistency = level;
      opts.limit = c.limit;
      opts.chunk = 3;  // force chunk re-entry on chunked scans
      const std::size_t n = dict.range(
          c.lo, c.hi,
          [&](std::int64_t k, std::int64_t v) {
            got.push_back(k);
            EXPECT_EQ(v, oracle.at(k)) << dict.name();
            return true;
          },
          opts);
      EXPECT_EQ(n, want.size())
          << dict.name() << " range[" << c.lo << "," << c.hi << "] limit "
          << c.limit << " level " << static_cast<int>(level);
      EXPECT_EQ(got, want)
          << dict.name() << " range[" << c.lo << "," << c.hi << "] limit "
          << c.limit << " level " << static_cast<int>(level);

      // Same window descending: every strategy serves reverse (natively
      // or via the pred-chain fallback), so the oracle applies verbatim.
      const auto want_desc = oracle_range_desc(oracle, c.lo, c.hi, c.limit);
      std::vector<std::int64_t> got_desc;
      ScanOptions desc_opts = opts;
      desc_opts.reverse = true;
      const std::size_t nd = dict.range(
          c.lo, c.hi,
          [&](std::int64_t k, std::int64_t v) {
            got_desc.push_back(k);
            EXPECT_EQ(v, oracle.at(k)) << dict.name();
            return true;
          },
          desc_opts);
      EXPECT_EQ(nd, want_desc.size())
          << dict.name() << " range_desc[" << c.lo << "," << c.hi
          << "] limit " << c.limit << " level " << static_cast<int>(level);
      EXPECT_EQ(got_desc, want_desc)
          << dict.name() << " range_desc[" << c.lo << "," << c.hi
          << "] limit " << c.limit << " level " << static_cast<int>(level);
    }
  }
}

void check_snapshot(IDictionary& dict, const Oracle& oracle) {
  const auto snap = dict.snapshot();
  auto it = oracle.begin();
  while (true) {
    const auto e = snap->next();
    if (it == oracle.end()) {
      EXPECT_FALSE(e.has_value()) << dict.name();
      break;
    }
    ASSERT_TRUE(e.has_value()) << dict.name();
    EXPECT_EQ(e->key, it->first) << dict.name();
    EXPECT_EQ(e->value, it->second) << dict.name();
    ++it;
  }
  // The snapshot serves at least weak and no more than the advertised
  // ceiling.
  EXPECT_LE(static_cast<int>(snap->consistency()),
            static_cast<int>(dict.traits().scan_consistency))
      << dict.name();
}

class OrderedOpsTest : public ::testing::TestWithParam<DictionaryInfo> {};

TEST_P(OrderedOpsTest, MatchesMapOracle) {
  const auto& info = GetParam();
  const auto dict = make_dictionary(info.name);
  const auto scope = dict->enter_thread();
  citrus::util::Xoshiro256 rng(0xC17256 + info.name.size());

  Oracle oracle;
  // Empty-dictionary boundary behavior first.
  EXPECT_FALSE(dict->succ(0).has_value());
  EXPECT_FALSE(dict->pred(0).has_value());
  EXPECT_FALSE(dict->snapshot()->next().has_value());

  // Grow/shrink in phases; re-verify the ordered API after each phase.
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 120; ++i) {
      const auto k = static_cast<std::int64_t>(rng() % 1024) - 256;
      if (rng() % 4 == 0) {
        dict->erase(k);
        oracle.erase(k);
      } else {
        const auto v = static_cast<std::int64_t>(rng() % 1000);
        if (dict->insert(k, v)) oracle.emplace(k, v);
      }
    }
    // A few adversarial extremes in the mix.
    for (const std::int64_t k : {kInt64Min, kInt64Min + 1, kInt64Max}) {
      if (dict->insert(k, k < 0 ? -7 : 7)) {
        oracle.emplace(k, k < 0 ? -7 : 7);
      }
    }
    const auto probes = probe_keys(oracle, rng);
    check_succ_pred(*dict, oracle, probes);
    check_ranges(*dict, oracle, rng);
    check_snapshot(*dict, oracle);
    // Remove the extremes again so later phases also test without them.
    for (const std::int64_t k : {kInt64Min, kInt64Min + 1, kInt64Max}) {
      dict->erase(k);
      oracle.erase(k);
    }
  }
}

TEST_P(OrderedOpsTest, TraitsAreConsistent) {
  const auto& info = GetParam();
  const auto dict = make_dictionary(info.name);
  const auto traits = dict->traits();
  EXPECT_EQ(traits.sharded, info.traits.sharded) << info.name;
  EXPECT_EQ(static_cast<int>(traits.scan_consistency),
            static_cast<int>(info.traits.scan_consistency))
      << info.name;
}

TEST_P(OrderedOpsTest, EarlyStopVisitor) {
  const auto& info = GetParam();
  const auto dict = make_dictionary(info.name);
  const auto scope = dict->enter_thread();
  for (std::int64_t k = 0; k < 50; ++k) dict->insert(k, k);
  std::size_t seen = 0;
  const std::size_t n = dict->range(0, 49, [&](std::int64_t, std::int64_t) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5u) << info.name;
  EXPECT_EQ(n, 5u) << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDictionaries, OrderedOpsTest,
    ::testing::ValuesIn(available_dictionaries()),
    [](const ::testing::TestParamInfo<DictionaryInfo>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Typed-layer spot checks the type-erased suite cannot express ---

TEST(OrderedOpsTyped, SeqBstOracleAgreesWithStdMap) {
  // The typed property-test oracle must itself be correct.
  citrus::baselines::SeqBst<long, long> bst;
  Oracle oracle;
  citrus::util::Xoshiro256 rng(42);
  for (int i = 0; i < 500; ++i) {
    const long k = static_cast<long>(rng() % 256);
    if (rng() % 3 == 0) {
      EXPECT_EQ(bst.erase(k), oracle.erase(k) > 0);
    } else if (bst.insert(k, i)) {
      oracle.emplace(k, i);
    }
  }
  for (long k = -2; k < 258; ++k) {
    const auto s = bst.succ(k);
    const auto os = oracle.upper_bound(k);
    EXPECT_EQ(s.has_value(), os != oracle.end());
    if (s && os != oracle.end()) {
      EXPECT_EQ(s->first, os->first);
    }
  }
}

TEST(OrderedOpsTyped, CitrusChunkBoundariesExact) {
  // Every chunk size must yield identical results — the cursor re-entry
  // logic (exclusive lower bound after the first chunk) must not skip or
  // duplicate keys, including around adjacent keys.
  citrus::rcu::CounterFlagRcu domain;
  citrus::core::CitrusTree<long, long> tree(domain);
  citrus::rcu::CounterFlagRcu::Registration reg(domain);
  std::vector<long> want;
  for (long k = 0; k < 100; ++k) {
    tree.insert(k, k);  // dense: adjacent keys stress chunk edges
    want.push_back(k);
  }
  for (const std::size_t chunk : {1u, 2u, 3u, 7u, 99u, 100u, 1000u}) {
    std::vector<long> got;
    tree.range(
        0, 99, [&](const long& k, const long&) { got.push_back(k); },
        /*limit=*/0, chunk);
    EXPECT_EQ(got, want) << "chunk=" << chunk;
  }
  const auto stats = tree.stats();
  EXPECT_GT(stats.scans, 0u);
  EXPECT_GT(stats.scan_keys_visited, 0u);
}

TEST(OrderedOpsTyped, CitrusDescChunkBoundariesExact) {
  // Descending cursor re-entry (exclusive upper bound after the first
  // chunk) must not skip or duplicate keys either.
  citrus::rcu::CounterFlagRcu domain;
  citrus::core::CitrusTree<long, long> tree(domain);
  citrus::rcu::CounterFlagRcu::Registration reg(domain);
  std::vector<long> want;
  for (long k = 0; k < 100; ++k) tree.insert(k, k);
  for (long k = 99; k >= 0; --k) want.push_back(k);
  for (const std::size_t chunk : {1u, 2u, 3u, 7u, 99u, 100u, 1000u}) {
    std::vector<long> got;
    tree.range_desc(
        0, 99, [&](const long& k, const long&) { got.push_back(k); },
        /*limit=*/0, chunk);
    EXPECT_EQ(got, want) << "chunk=" << chunk;
  }
}

TEST(OrderedOpsTyped, ScanStatsFlowThroughAdapter) {
  // "citrus" is paper-faithful BenchTraits (stats compiled out); the
  // reclaim variant runs DefaultTraits, which tracks the scan counters.
  const auto dict = make_dictionary("citrus-reclaim");
  const auto scope = dict->enter_thread();
  for (std::int64_t k = 0; k < 64; ++k) dict->insert(k, k);
  ScanOptions opts;
  opts.chunk = 8;
  dict->range(0, 63, [](std::int64_t, std::int64_t) { return true; }, opts);
  const auto snap = dict->stats();
  EXPECT_GE(snap.scans, 8u);  // 64 keys / chunk 8
  EXPECT_EQ(snap.scan_keys_visited, 64u);
}

TEST(OrderedOpsTyped, ShardedScanStatsAggregate) {
  citrus::adapters::Options options;
  options.reclaim = true;  // DefaultTraits: scan counters compiled in
  const auto dict = make_dictionary("citrus-shard4", options);
  const auto scope = dict->enter_thread();
  for (std::int64_t k = 0; k < 64; ++k) dict->insert(k, k);
  dict->range(0, 63, [](std::int64_t, std::int64_t) { return true; });
  const auto snap = dict->stats();
  EXPECT_GT(snap.scans, 0u);
  EXPECT_EQ(snap.shards.size(), 4u);
  std::uint64_t per_shard = 0;
  for (const auto& s : snap.shards) per_shard += s.scans;
  EXPECT_EQ(per_shard, snap.scans);
}

}  // namespace
