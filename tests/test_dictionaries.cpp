// One typed test suite over every concurrent dictionary in the repository
// (Citrus plus the five comparators of the paper's evaluation): identical
// semantic checks against a reference oracle, concurrent stripe-exactness,
// and structural audits. Each behaviour is written once and must hold for
// all six implementations. A second, registry-driven suite runs the same
// basic contract through the type-erased layer for every name
// available_dictionaries() reports, so additions to the registry are
// covered without editing this file.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adapters/dictionary.hpp"
#include "adapters/idictionary.hpp"
#include "shard/sharded_dict.hpp"
#include "baselines/avl_bronson.hpp"
#include "baselines/bonsai.hpp"
#include "baselines/lazy_skiplist.hpp"
#include "baselines/lockfree_bst.hpp"
#include "baselines/rcu_rbtree.hpp"
#include "baselines/relativistic_hash.hpp"
#include "baselines/seq_bst.hpp"
#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;

// Uniform harness: owns domain + tree, provides registration and a
// structure check.
template <typename Tree>
struct Harness {
  CounterFlagRcu domain;
  Tree tree{domain};

  auto enter() { return CounterFlagRcu::Registration(domain); }

  bool check(std::string* err) {
    if constexpr (requires(const Tree& t, std::string* e) {
                    { t.check_structure(e) } -> std::convertible_to<bool>;
                  }) {
      return tree.check_structure(err);
    } else {
      const auto rep = tree.check_structure();
      if (!rep.ok && err != nullptr) *err = rep.error;
      return rep.ok;
    }
  }
};

using CitrusTree = citrus::core::CitrusTree<long, long>;
using Avl = citrus::baselines::BronsonAvlTree<long, long>;
using Skiplist = citrus::baselines::LazySkiplist<long, long>;
using LockFree = citrus::baselines::LockFreeBst<long, long>;
using RbTree = citrus::baselines::RcuRedBlackTree<long, long>;
using Bonsai = citrus::baselines::BonsaiTree<long, long>;
using RelHash = citrus::baselines::RelativisticHashTable<long, long>;

// All satisfy the compile-time ordered_dictionary concept (point ops plus
// strict succ/pred), including the sequential oracle and the sharded dict.
static_assert(citrus::adapters::ordered_dictionary<CitrusTree>);
static_assert(citrus::adapters::ordered_dictionary<Avl>);
static_assert(citrus::adapters::ordered_dictionary<Skiplist>);
static_assert(citrus::adapters::ordered_dictionary<LockFree>);
static_assert(citrus::adapters::ordered_dictionary<RbTree>);
static_assert(citrus::adapters::ordered_dictionary<Bonsai>);
static_assert(citrus::adapters::ordered_dictionary<RelHash>);
static_assert(
    citrus::adapters::ordered_dictionary<citrus::baselines::SeqBst<long, long>>);
static_assert(
    citrus::adapters::ordered_dictionary<citrus::shard::ShardedCitrus<long, long>>);

template <typename Tree>
class DictionaryTest : public ::testing::Test {
 protected:
  Harness<Tree> h;
};

using Dictionaries = ::testing::Types<CitrusTree, Avl, Skiplist, LockFree,
                                      RbTree, Bonsai, RelHash>;
TYPED_TEST_SUITE(DictionaryTest, Dictionaries);

TYPED_TEST(DictionaryTest, BasicContract) {
  auto reg = this->h.enter();
  auto& t = this->h.tree;
  EXPECT_FALSE(t.contains(1));
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 20));
  EXPECT_EQ(t.find(1), 10);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_TRUE(t.empty());
}

TYPED_TEST(DictionaryTest, ReinsertAfterErase) {
  auto reg = this->h.enter();
  auto& t = this->h.tree;
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(t.insert(7, round));
    EXPECT_EQ(t.find(7), round);
    EXPECT_TRUE(t.erase(7));
  }
  EXPECT_TRUE(t.empty());
}

TYPED_TEST(DictionaryTest, SequentialOracle) {
  auto reg = this->h.enter();
  auto& t = this->h.tree;
  citrus::util::Xoshiro256 rng(2024);
  std::set<long> oracle;
  for (int i = 0; i < 25000; ++i) {
    const long k = static_cast<long>(rng.bounded(300));
    switch (rng.bounded(4)) {
      case 0:
        ASSERT_EQ(t.insert(k, k * 2), oracle.insert(k).second) << "key " << k;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << "key " << k;
        break;
      case 2:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << "key " << k;
        break;
      default: {
        const auto v = t.find(k);
        ASSERT_EQ(v.has_value(), oracle.count(k) > 0) << "key " << k;
        if (v.has_value()) {
          ASSERT_EQ(*v, k * 2);
        }
      }
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  std::string err;
  EXPECT_TRUE(this->h.check(&err)) << err;
}

TYPED_TEST(DictionaryTest, AscendingDescendingChains) {
  auto reg = this->h.enter();
  auto& t = this->h.tree;
  for (long k = 0; k < 400; ++k) ASSERT_TRUE(t.insert(k, k));
  EXPECT_EQ(t.size(), 400u);
  for (long k = 399; k >= 0; --k) ASSERT_TRUE(t.erase(k));
  EXPECT_TRUE(t.empty());
  std::string err;
  EXPECT_TRUE(this->h.check(&err)) << err;
}

TYPED_TEST(DictionaryTest, ConcurrentStripesExact) {
  constexpr int kThreads = 4;
  constexpr long kStripe = 500;
  auto& dict = this->h;
  std::vector<std::set<long>> owned(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, &owned, t] {
      auto reg = dict.enter();
      citrus::util::Xoshiro256 rng(55 + t);
      auto& mine = owned[t];
      for (int i = 0; i < 12000; ++i) {
        const long k = t * kStripe + static_cast<long>(rng.bounded(kStripe));
        if (rng.bounded(2) == 0) {
          ASSERT_EQ(dict.tree.insert(k, k), mine.insert(k).second);
        } else {
          ASSERT_EQ(dict.tree.erase(k), mine.erase(k) > 0);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto reg = dict.enter();
  std::size_t expected = 0;
  for (const auto& mine : owned) expected += mine.size();
  EXPECT_EQ(dict.tree.size(), expected);
  for (int t = 0; t < kThreads; ++t) {
    for (long k = t * kStripe; k < (t + 1) * kStripe; ++k) {
      ASSERT_EQ(dict.tree.contains(k), owned[t].count(k) > 0) << "key " << k;
    }
  }
  std::string err;
  EXPECT_TRUE(dict.check(&err)) << err;
}

TYPED_TEST(DictionaryTest, MixedStressKeepsStructure) {
  constexpr int kThreads = 6;
  auto& dict = this->h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, t] {
      auto reg = dict.enter();
      citrus::util::Xoshiro256 rng(500 + t);
      for (int i = 0; i < 12000; ++i) {
        const long k = static_cast<long>(rng.bounded(256));
        const std::uint64_t op = rng.bounded(100);
        if (op < 60) {
          dict.tree.contains(k);
        } else if (op < 80) {
          dict.tree.insert(k, k);
        } else {
          dict.tree.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  EXPECT_TRUE(dict.check(&err)) << err;
}

TYPED_TEST(DictionaryTest, ReadersSeeStampedValues) {
  auto& dict = this->h;
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&dict, &stop, t] {
      auto reg = dict.enter();
      citrus::util::Xoshiro256 rng(t + 5);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = static_cast<long>(rng.bounded(64));
        dict.tree.insert(k, k * 13);
        dict.tree.erase(static_cast<long>(rng.bounded(64)));
      }
    });
  }
  threads.emplace_back([&dict, &stop, &bad] {
    auto reg = dict.enter();
    citrus::util::Xoshiro256 rng(99);
    for (int i = 0; i < 40000; ++i) {
      const long k = static_cast<long>(rng.bounded(64));
      const auto v = dict.tree.find(k);
      if (v.has_value() && *v != k * 13) bad.store(true);
    }
    stop.store(true);
  });
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
}

// Registry-driven contract: every name the registry reports must uphold
// the dictionary semantics through the type-erased interface.
class RegistryDictionaryTest
    : public ::testing::TestWithParam<citrus::adapters::DictionaryInfo> {};

TEST_P(RegistryDictionaryTest, BasicContract) {
  const auto dict = citrus::adapters::make_dictionary(GetParam().name);
  const auto scope = dict->enter_thread();
  EXPECT_FALSE(dict->contains(1));
  EXPECT_TRUE(dict->insert(1, 10));
  EXPECT_FALSE(dict->insert(1, 20));
  EXPECT_EQ(dict->find(1), 10);
  EXPECT_EQ(dict->size(), 1u);
  EXPECT_TRUE(dict->erase(1));
  EXPECT_FALSE(dict->erase(1));
  EXPECT_FALSE(dict->find(1).has_value());
}

TEST_P(RegistryDictionaryTest, SequentialOracle) {
  const auto dict = citrus::adapters::make_dictionary(GetParam().name);
  const auto scope = dict->enter_thread();
  citrus::util::Xoshiro256 rng(2025);
  std::set<long> oracle;
  for (int i = 0; i < 4000; ++i) {
    const long k = static_cast<long>(rng.bounded(200));
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(dict->insert(k, k * 2), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(dict->erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(dict->contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(dict->size(), oracle.size());
  const auto rep = dict->check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, RegistryDictionaryTest,
    ::testing::ValuesIn(citrus::adapters::available_dictionaries()),
    [](const ::testing::TestParamInfo<citrus::adapters::DictionaryInfo>&
           param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The sequential oracle itself deserves a check against std::set.
TEST(SeqBst, MatchesStdSet) {
  citrus::baselines::SeqBst<long, long> t;
  citrus::util::Xoshiro256 rng(31337);
  std::set<long> oracle;
  for (int i = 0; i < 40000; ++i) {
    const long k = static_cast<long>(rng.bounded(500));
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k, k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  std::vector<long> keys;
  t.for_each([&keys](long k, long) { keys.push_back(k); });
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
