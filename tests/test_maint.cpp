// Background structural maintainer (src/maint/citrus_cf.hpp).
//
// The maintainer is an *optimization* with a strong safety contract: every
// rebuild is an abstract no-op (same key→value map before and after), all
// client operations stay correct while it runs, and a rebuild that loses
// any race aborts cleanly. These tests pin both halves: the performance
// contract (a sequentially-degenerated tree is restored to logarithmic
// depth) deterministically via maintain_now(), and the safety contract
// under churn, OOM, and immediate destruction. Concurrency coverage at
// scale lives in test_scan_torture.cpp / test_linearizability.cpp, which
// enumerate the citrus-cf registry entries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "adapters/idictionary.hpp"
#include "maint/citrus_cf.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "sync/backoff.hpp"
#include "util/rng.hpp"

namespace {

using citrus::adapters::make_dictionary;
using citrus::adapters::Options;
using citrus::adapters::ScanOptions;
using citrus::core::UpdateStatus;
using citrus::maint::CfBenchTraits;
using citrus::maint::CfDefaultTraits;
using citrus::maint::CitrusCfTree;
using citrus::rcu::CounterFlagRcu;

using namespace std::chrono_literals;

// TSan multiplies every instrumented atomic's cost by an order of
// magnitude, and these suites are nothing but atomics; the big-population
// structural tests only need their *shape* there (races, not asymptotics
// — the 1e5-key acceptance numbers live in the plain lane and AB5), so
// scale the populations down under it.
#if defined(__SANITIZE_THREAD__)
inline constexpr std::int64_t kLoadScale = 10;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr std::int64_t kLoadScale = 10;
#else
inline constexpr std::int64_t kLoadScale = 1;
#endif
#else
inline constexpr std::int64_t kLoadScale = 1;
#endif

template <typename Pred>
bool eventually(Pred&& pred, std::chrono::milliseconds limit = 20000ms) {
  return citrus::sync::spin_until(std::chrono::steady_clock::now() + limit,
                                  std::forward<Pred>(pred));
}

// ── The performance contract, deterministically ─────────────────────────

TEST(Maint, SequentialInsertionRestoredToLogDepth) {
  // Ascending insertion builds a right spine: depth n-1 before
  // maintenance. maintain_now() must restore the ISSUE's acceptance bound
  // (max_depth <= 4*log2(n)) and, because a full rebuild is perfectly
  // balanced, in fact the much tighter ceil(log2(n+1)) height.
  CounterFlagRcu domain;
  CitrusCfTree<std::int64_t, std::int64_t> tree(domain);
  using Tree = decltype(tree);
  constexpr std::int64_t kN = 100000 / kLoadScale;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; ++k) {
      // The background thread may transiently hold private build nodes;
      // treat kNoMemory as retryable (it never fires here without a cap,
      // but the loop keeps the test honest about the status channel).
      while (tree.try_insert(k, k) != UpdateStatus::kSuccess) {
      }
    }
    // A handful of passes: the first full rebuild can abort if it races
    // the background thread's own pass; the gate serializes, so a couple
    // of retries always converge once inserts have stopped.
    for (int pass = 0; pass < 8; ++pass) {
      tree.maintain_now();
      if (tree.check_structure().max_depth + 1 <= Tree::depth_bound(kN)) {
        break;
      }
    }
  }

  const auto rep = tree.check_structure();
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, static_cast<std::size_t>(kN));
  EXPECT_GT(rep.rebuilds, 0u);
  // Height (nodes on the longest path) within the maintainer's own bound…
  EXPECT_LE(rep.max_depth + 1, Tree::depth_bound(kN));
  // …which is far inside the acceptance bound.
  EXPECT_LE(static_cast<double>(rep.max_depth),
            4.0 * std::log2(static_cast<double>(kN)));
  // Histogram bookkeeping is self-consistent.
  const std::size_t hist_total =
      std::accumulate(rep.depth_histogram.begin(), rep.depth_histogram.end(),
                      std::size_t{0});
  EXPECT_EQ(hist_total, rep.node_count);
  ASSERT_FALSE(rep.depth_histogram.empty());
  EXPECT_EQ(rep.depth_histogram.size() - 1, rep.max_depth);
  EXPECT_GT(rep.avg_depth, 0.0);
  EXPECT_LE(rep.avg_depth, static_cast<double>(rep.max_depth));

  // The rebuild preserved the map exactly, and the blocking drain left no
  // retire backlog behind.
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(kN));
  EXPECT_EQ(tree.pending_reclaim_nodes(), 0u);
  const auto stats = tree.stats();
  EXPECT_GT(stats.maint_rebuilds, 0u);
  EXPECT_GE(stats.maint_nodes_rebuilt, static_cast<std::uint64_t>(kN) / 2);
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; k += 97) {
      const auto v = tree.find(k);
      ASSERT_TRUE(v.has_value()) << k;
      EXPECT_EQ(*v, k);
    }
    EXPECT_TRUE(tree.contains(kN - 1));
    EXPECT_FALSE(tree.contains(kN));
  }
}

TEST(Maint, BackgroundThreadRebalancesUnprompted) {
  // No maintain_now(): the 1-in-64 depth sampling plus the periodic probe
  // must notice the spine and fix it within the polling budget.
  const auto dict = make_dictionary("citrus-cf");
  constexpr std::int64_t kN = 30000 / kLoadScale;
  {
    const auto scope = dict->enter_thread();
    for (std::int64_t k = 0; k < kN; ++k) dict->insert(k, k);
  }
  const double bound = 4.0 * std::log2(static_cast<double>(kN));
  ASSERT_TRUE(eventually([&] {
    const auto rep = dict->check_structure();
    return rep.ok && rep.rebuilds > 0 &&
           static_cast<double>(rep.max_depth) <= bound;
  })) << "maintainer did not rebalance: max_depth="
      << dict->check_structure().max_depth;
  // Counters flow through the type-erased stats surface.
  const auto snap = dict->stats();
  EXPECT_GT(snap.maint_rebuilds, 0u);
  EXPECT_GT(snap.maint_nodes_rebuilt, 0u);
}

// ── Safety under concurrent churn ───────────────────────────────────────

TEST(Maint, ConcurrentChurnKeepsStableKeys) {
  // Stable keys (≡0 mod 3) must survive continuous rebuilds racing
  // updaters; churned keys (≡1) come and go. DefaultTraits: reclamation
  // on, so the maintainer's retire queue and the erase path's grace
  // periods interleave for real.
  CounterFlagRcu domain;
  CitrusCfTree<std::int64_t, std::int64_t, CounterFlagRcu, CfDefaultTraits>
      tree(domain);
  constexpr std::int64_t kSpan = 6000;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kSpan; k += 3) {
      ASSERT_TRUE(tree.insert(k, k));
    }
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int u = 0; u < 3; ++u) {
    threads.emplace_back([&, u] {
      typename CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(0xCF + u);
      while (!stop.load(std::memory_order_acquire)) {
        const std::int64_t k =
            static_cast<std::int64_t>(rng() % (kSpan / 3)) * 3 + 1;
        if (rng() & 1) {
          tree.insert(k, k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  threads.emplace_back([&] {
    typename CounterFlagRcu::Registration reg(domain);
    citrus::util::Xoshiro256 rng(0xF1);
    while (!stop.load(std::memory_order_acquire)) {
      const std::int64_t k = static_cast<std::int64_t>(rng() % kSpan);
      const auto v = tree.find(k);
      if (k % 3 == 0 && (!v.has_value() || *v != k)) {
        ADD_FAILURE() << "stable key " << k << " lost mid-run";
        stop.store(true, std::memory_order_release);
      }
    }
  });
  // Force rebuild pressure from a fourth participant while they run.
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (int i = 0; i < 20; ++i) {
      tree.maintain_now();
      std::this_thread::sleep_for(10ms);
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kSpan; k += 3) {
      ASSERT_TRUE(tree.contains(k)) << "stable key " << k;
    }
  }
  // Aborted rebuilds (if any) were counted, not silently retried into
  // corruption; stats() plumbs the rebuild counter consistently with the
  // report. The background thread may still be finishing work the churn
  // left behind, so settle first (a balanced tree yields no offenders):
  // wait for the counter to hold still, then compare the two surfaces.
  std::uint64_t last = tree.stats().maint_rebuilds;
  ASSERT_TRUE(eventually([&] {
    std::this_thread::sleep_for(100ms);
    const std::uint64_t now = tree.stats().maint_rebuilds;
    const bool stable = now == last;
    last = now;
    return stable;
  }));
  EXPECT_EQ(tree.stats().maint_rebuilds, tree.check_structure().rebuilds);
}

// ── OOM: a rebuild that cannot allocate must unwind to a no-op ──────────

// Traits for OOM determinism: manual mode — no background thread (it
// would race the cap with its own rebuild attempts), leaving
// maintain_now() as the only maintenance driver.
struct ManualMaintTraits : CfDefaultTraits {
  static constexpr bool kMaintBackgroundThread = false;
};

TEST(Maint, OomRebuildUnwindsCleanly) {
  // Degenerate the tree fully, then cap the pool with slack far below the
  // spine size: the single maintain_now() pass must hit allocation failure
  // mid-build, return every partial to the pool, and leave the (still
  // skewed) tree untouched. Manual mode means exactly this pass runs —
  // rebuilds stays at zero deterministically.
  CounterFlagRcu domain;
  CitrusCfTree<std::int64_t, std::int64_t, CounterFlagRcu, ManualMaintTraits>
      tree(domain);
  constexpr std::int64_t kN = 2000;
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; ++k) {
      ASSERT_EQ(tree.try_insert(k, k), UpdateStatus::kSuccess);
    }
    tree.set_max_live_nodes(kN + 2 + 8);  // keys + sentinels + tiny slack
    tree.maintain_now();
  }
  const auto stats = tree.stats();
  EXPECT_EQ(stats.maint_rebuilds, 0u);
  EXPECT_GE(stats.maint_validation_failures, 1u);  // the OOM-aborted pass
  const auto rep = tree.check_structure();
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, static_cast<std::size_t>(kN));
  EXPECT_EQ(tree.live_nodes(), static_cast<std::size_t>(kN) + 2);
  EXPECT_EQ(rep.max_depth, static_cast<std::size_t>(kN) - 1);  // untouched
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; k += 13) {
      ASSERT_TRUE(tree.contains(k)) << k;
    }
  }
}

TEST(Maint, CappedPoolDirectReclaimKeepsUpdatersLive) {
  // Regression: cap set BEFORE the inserts, background maintainer active.
  // Mid-insertion rebuilds succeed while slack allows and retire their old
  // spines; nothing in this workload ever synchronizes, so without direct
  // reclaim the awaiting-grace-period backlog pins live_ at the cap and
  // try_insert returns kNoMemory forever (this loop used to wedge). The
  // updater-side blocking drain must make every insert succeed within one
  // retry of memory actually being reclaimable.
  CounterFlagRcu domain;
  CitrusCfTree<std::int64_t, std::int64_t> tree(domain);
  constexpr std::int64_t kN = 2000;
  tree.set_max_live_nodes(kN + 2 + 8);
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; ++k) {
      // A background build may transiently hold the whole slack; bounded
      // retry, not unbounded: each failure reclaims or yields.
      while (tree.try_insert(k, k) != UpdateStatus::kSuccess) {
        std::this_thread::yield();
      }
    }
    tree.maintain_now();
  }
  const auto rep = tree.check_structure();
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, static_cast<std::size_t>(kN));
  EXPECT_EQ(tree.pending_reclaim_nodes(), 0u);
  EXPECT_EQ(tree.live_nodes(), static_cast<std::size_t>(kN) + 2);
  {
    typename CounterFlagRcu::Registration reg(domain);
    for (std::int64_t k = 0; k < kN; k += 13) {
      ASSERT_TRUE(tree.contains(k)) << k;
    }
  }
}

// ── Sharded composition ─────────────────────────────────────────────────

TEST(Maint, ShardedCfAggregatesMaintStats) {
  const auto dict = make_dictionary("citrus-cf-shard4");
  constexpr std::int64_t kN = 20000 / kLoadScale;
  {
    const auto scope = dict->enter_thread();
    // Ascending key order reaches every shard in ascending order too, so
    // each per-shard tree degenerates and every maintainer has work.
    for (std::int64_t k = 0; k < kN; ++k) dict->insert(k, k);
  }
  ASSERT_TRUE(eventually([&] { return dict->stats().maint_rebuilds > 0; }));
  // Settle: with updates stopped, the per-shard maintainers converge (a
  // balanced shard yields no offenders) — wait for the counter to hold
  // still so the three snapshots below describe the same quiescent state.
  std::uint64_t last = dict->stats().maint_rebuilds;
  ASSERT_TRUE(eventually([&] {
    std::this_thread::sleep_for(200ms);
    const std::uint64_t now = dict->stats().maint_rebuilds;
    const bool stable = now == last;
    last = now;
    return stable;
  }));
  const auto snap = dict->stats();
  ASSERT_EQ(snap.shards.size(), 4u);
  std::uint64_t per_shard = 0;
  for (const auto& s : snap.shards) per_shard += s.maint_rebuilds;
  EXPECT_EQ(per_shard, snap.maint_rebuilds);
  const auto rep = dict->check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, static_cast<std::size_t>(kN));
  EXPECT_EQ(rep.rebuilds, snap.maint_rebuilds);

  // Descending scan across the rebuilt shards stays exact.
  const auto scope = dict->enter_thread();
  ScanOptions opts;
  opts.reverse = true;
  std::int64_t expect = 499;
  std::size_t seen = 0;
  dict->range(100, 499,
              [&](std::int64_t k, std::int64_t v) {
                EXPECT_EQ(k, expect);
                EXPECT_EQ(v, k);
                --expect;
                ++seen;
                return true;
              },
              opts);
  EXPECT_EQ(seen, 400u);
}

// ── Lifecycle ───────────────────────────────────────────────────────────

TEST(Maint, DestructionRightAfterRebuildActivity) {
  // Destroy the tree immediately after heavy rebuild traffic: the
  // maintainer's epilogue must drain its retire queue behind real grace
  // periods and join cleanly (asan/tsan lanes make this assertion real).
  for (int round = 0; round < 3; ++round) {
    CounterFlagRcu domain;
    CitrusCfTree<std::int64_t, std::int64_t, CounterFlagRcu, CfDefaultTraits>
        tree(domain);
    {
      typename CounterFlagRcu::Registration reg(domain);
      for (std::int64_t k = 0; k < 5000; ++k) tree.insert(k, k);
      tree.maintain_now();
      // Leave fresh skew behind so the background thread is likely
      // mid-pass at destruction time.
      for (std::int64_t k = 5000; k < 9000; ++k) tree.insert(k, k);
    }
  }
  SUCCEED();
}

TEST(Maint, RegistryExposesCfFamily) {
  for (const char* name :
       {"citrus-cf", "citrus-cf-shard4", "citrus-cf-shard16",
        "citrus-cf-shard64"}) {
    const auto dict = make_dictionary(name);
    EXPECT_EQ(dict->name(), name);
    const auto scope = dict->enter_thread();
    EXPECT_TRUE(dict->insert(1, 2));
    EXPECT_EQ(dict->find(1).value_or(-1), 2);
  }
  // Options::reclaim picks the reclaiming tier, as for plain citrus.
  Options options;
  options.reclaim = true;
  const auto dict = make_dictionary("citrus-cf", options);
  EXPECT_TRUE(dict->traits().reclaiming);
}

}  // namespace
