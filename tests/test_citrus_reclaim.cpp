// Memory reclamation mode of the Citrus tree (the paper's future-work
// extension): nodes of deleted keys are recycled through grace periods and
// the type-stable pool, concurrently with readers and updaters, without
// breaking dictionary semantics.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::core::CitrusTree;
using citrus::core::DefaultTraits;
using citrus::rcu::CounterFlagRcu;

// Aggressive reclamation: tiny retire batches force frequent grace
// periods and immediate slot reuse.
struct EagerReclaimTraits : DefaultTraits {
  static constexpr std::size_t kRetireBatch = 2;
};

struct NoReclaimTraits : citrus::core::BenchTraits {};

TEST(CitrusReclaim, NodesAreRecycled) {
  CounterFlagRcu domain;
  CitrusTree<long, long, CounterFlagRcu, EagerReclaimTraits> tree(domain);
  CounterFlagRcu::Registration reg(domain);
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    for (long k = 0; k < 16; ++k) ASSERT_TRUE(tree.insert(k, k));
    for (long k = 0; k < 16; ++k) ASSERT_TRUE(tree.erase(k));
  }
  EXPECT_GT(tree.stats().recycled_nodes, 1000u);
  // Live payloads: just the two sentinels (plus at most a couple of
  // pending retired batches).
  EXPECT_LE(tree.pool_live_nodes(), 2 + 2 * 16);
  EXPECT_TRUE(tree.check_structure().ok);
}

TEST(CitrusReclaim, LeakModeNeverRecycles) {
  CounterFlagRcu domain;
  CitrusTree<long, long, CounterFlagRcu, NoReclaimTraits> tree(domain);
  CounterFlagRcu::Registration reg(domain);
  for (int r = 0; r < 10; ++r) {
    for (long k = 0; k < 16; ++k) ASSERT_TRUE(tree.insert(k, k));
    for (long k = 0; k < 16; ++k) ASSERT_TRUE(tree.erase(k));
  }
  // Every insert allocated a fresh slot; none came back.
  EXPECT_GE(tree.pool_live_nodes(), 10 * 16);
  EXPECT_TRUE(tree.check_structure().ok);
}

TEST(CitrusReclaim, StressWithEagerRecyclingKeepsSemantics) {
  // The hard case for the generation protocol: stale updaters locking
  // recycled slots must always fail validation. Any bug shows up as a
  // semantic divergence on the per-thread stripes or a broken structure.
  CounterFlagRcu domain;
  CitrusTree<long, long, CounterFlagRcu, EagerReclaimTraits> tree(domain);
  constexpr int kThreads = 6;
  constexpr long kStripe = 64;  // tiny stripes: constant slot churn
  std::vector<std::set<long>> owned(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(900 + t);
      auto& mine = owned[t];
      for (int i = 0; i < 15000; ++i) {
        const long k = t * kStripe + static_cast<long>(rng.bounded(kStripe));
        if (rng.bounded(2) == 0) {
          ASSERT_EQ(tree.insert(k, k), mine.insert(k).second) << "key " << k;
        } else {
          ASSERT_EQ(tree.erase(k), mine.erase(k) > 0) << "key " << k;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::size_t expected = 0;
  for (const auto& mine : owned) expected += mine.size();
  EXPECT_EQ(tree.size(), expected);
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(tree.stats().recycled_nodes, 0u);
}

TEST(CitrusReclaim, ReadersSafeUnderRecycling) {
  // Readers hammer a hot range whose nodes are continuously deleted,
  // recycled and reinserted; values are stamped per key so any
  // use-after-recycle read shows up as a mismatched value.
  CounterFlagRcu domain;
  CitrusTree<long, long, CounterFlagRcu, EagerReclaimTraits> tree(domain);
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 50);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = static_cast<long>(rng.bounded(40));
        tree.insert(k, k * 31);
        tree.erase(static_cast<long>(rng.bounded(40)));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 90);
      for (int i = 0; i < 40000; ++i) {
        const long k = static_cast<long>(rng.bounded(40));
        const auto v = tree.find(k);
        if (v.has_value() && *v != k * 31) bad.store(true);
      }
      stop.store(true);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  EXPECT_TRUE(tree.check_structure().ok);
}

TEST(CitrusReclaim, DestructionWithPendingRetires) {
  // Tree destruction must release everything even when retire queues are
  // non-empty (workers joined; quiescent).
  CounterFlagRcu domain;
  {
    CitrusTree<long, long, CounterFlagRcu, EagerReclaimTraits> tree(domain);
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < 100; ++k) tree.insert(k, k);
    for (long k = 0; k < 100; k += 3) tree.erase(k);
    // Destructor runs here with whatever is still queued.
  }
  SUCCEED();
}

}  // namespace
