// Type-stable node pool: allocation, recycling, generation bumps, the
// marked-bit handshake the Citrus reclaim path relies on.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "citrus/citrus_node.hpp"
#include "citrus/node_pool.hpp"
#include "sync/spinlock.hpp"

namespace {

using citrus::core::CitrusNode;
using citrus::core::NodeKind;
using citrus::core::NodePool;
using Node = CitrusNode<long, long, citrus::sync::SpinLock>;

TEST(NodePool, AllocateConstructsPayload) {
  NodePool<Node> pool;
  long k = 5, v = 50;
  Node* n = pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr);
  EXPECT_EQ(n->key(), 5);
  EXPECT_EQ(n->value(), 50);
  EXPECT_FALSE(n->marked.load());
  EXPECT_EQ(n->child[0].unguarded_load(), nullptr);
  EXPECT_EQ(n->tag[0].load(), 0u);
  EXPECT_EQ(pool.live(), 1);
  pool.destroy_with_pool(n);
  EXPECT_EQ(pool.live(), 0);
}

TEST(NodePool, AllocateLockedHandsOverTheLock) {
  NodePool<Node> pool;
  long k = 1, v = 1;
  Node* n = pool.allocate(true, NodeKind::kReal, &k, &v, nullptr, nullptr);
  EXPECT_FALSE(n->lock.try_lock());  // we already hold it
  n->lock.unlock();
  pool.destroy_with_pool(n);
}

TEST(NodePool, RecycleBumpsGenerationAndReusesSlot) {
  NodePool<Node> pool;
  long k = 1, v = 1;
  Node* n = pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr);
  const auto gen0 = n->generation.load();
  n->marked.store(true);  // recycling requires a marked node
  pool.recycle(n);
  EXPECT_EQ(pool.live(), 0);
  // Single free slot: the next allocation must reuse it.
  long k2 = 2, v2 = 2;
  Node* m = pool.allocate(false, NodeKind::kReal, &k2, &v2, nullptr, nullptr);
  EXPECT_EQ(m, n);
  EXPECT_GT(m->generation.load(), gen0);
  EXPECT_FALSE(m->marked.load());  // cleared on reuse, under the lock
  EXPECT_EQ(m->key(), 2);
  pool.destroy_with_pool(m);
}

TEST(NodePool, MarkedStaysSetUntilReuse) {
  // The reclaim correctness argument: between recycle() and the next
  // allocate(), a stale updater that locks the slot must see marked==true
  // (and the old generation), so its validation fails.
  NodePool<Node> pool;
  long k = 1, v = 1;
  Node* n = pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr);
  n->marked.store(true);
  pool.recycle(n);
  EXPECT_TRUE(n->marked.load());  // still marked while on the free list
}

TEST(NodePool, SentinelNodesHaveNoPayload) {
  NodePool<Node> pool;
  Node* minus = pool.allocate(false, NodeKind::kMinusInf, nullptr, nullptr,
                              nullptr, nullptr);
  Node* plus = pool.allocate(false, NodeKind::kPlusInf, nullptr, nullptr,
                             nullptr, nullptr);
  EXPECT_EQ(minus->compare(42L), +1);  // every key is greater than -inf
  EXPECT_EQ(plus->compare(42L), -1);
  pool.destroy_with_pool(minus);
  pool.destroy_with_pool(plus);
}

TEST(NodePool, GrowsBeyondOneSlab) {
  NodePool<Node> pool;
  std::vector<Node*> nodes;
  const std::size_t n = NodePool<Node>::kSlabNodes * 3 + 7;
  for (std::size_t i = 0; i < n; ++i) {
    long k = static_cast<long>(i), v = k;
    nodes.push_back(
        pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr));
  }
  EXPECT_EQ(pool.live(), static_cast<std::int64_t>(n));
  EXPECT_GE(pool.slab_count(), 3u);
  // All distinct slots.
  std::set<Node*> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), n);
  for (Node* node : nodes) pool.destroy_with_pool(node);
}

TEST(NodePool, ConcurrentAllocateRecycle) {
  NodePool<Node> pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        long k = t * kIters + i, v = k;
        Node* n =
            pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr);
        ASSERT_EQ(n->key(), k);  // nobody else scribbled on our payload
        n->marked.store(true);
        pool.recycle(n);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.live(), 0);
}

TEST(NodePool, NonTrivialPayloadDestroyed) {
  using StrNode = CitrusNode<std::string, std::string, citrus::sync::SpinLock>;
  NodePool<StrNode> pool;
  std::string k = "key-with-a-long-heap-allocated-payload-xxxxxxxxxxxxxxxx";
  std::string v = "value";
  StrNode* n = pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr);
  EXPECT_EQ(n->key(), k);
  n->marked.store(true);
  pool.recycle(n);  // destroys the strings; ASan would catch leaks/UAF
  std::string k2 = "second";
  StrNode* m = pool.allocate(false, NodeKind::kReal, &k2, &v, nullptr, nullptr);
  EXPECT_EQ(m->key(), "second");
  pool.destroy_with_pool(m);
}

TEST(NodePool, RecycleScrubsStaleLinks) {
  // Regression: free-list nodes used to keep their stale child pointers and
  // tags, so a straggling updater validating against a recycled slot could
  // see a child that matched a live node and pass validation it should
  // fail. recycle() must scrub links/tags — to nullptr in plain builds, to
  // the rcucheck poison pattern in checked builds (so a checked traversal
  // that follows one faults loudly).
  NodePool<Node> pool;
  long k = 1, v = 1;
  Node* a = pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr);
  Node* b = pool.allocate(false, NodeKind::kReal, &k, &v, nullptr, nullptr);
  a->child[0].unguarded_store(b);
  a->child[1].unguarded_store(b);
  a->tag[0].store(7);
  a->tag[1].store(9);
  a->marked.store(true);
  pool.recycle(a);
  Node* const scrubbed =
      citrus::check::kEnabled
          ? static_cast<Node*>(citrus::check::poison_pointer())
          : nullptr;
  EXPECT_EQ(a->child[0].unguarded_load(), scrubbed);
  EXPECT_EQ(a->child[1].unguarded_load(), scrubbed);
  EXPECT_EQ(a->tag[0].load(), 0u);
  EXPECT_EQ(a->tag[1].load(), 0u);
  b->marked.store(true);
  pool.recycle(b);
}

}  // namespace
