// rcutorture-style stress: many readers continuously dereference an
// RCU-protected pointer while updaters republish and poison retired
// versions strictly after a grace period. Any reader observing a poisoned
// version is a violated grace period. Run for every domain and for several
// reader/updater mixes (parameterized).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"
#include "sync/backoff.hpp"
#include "util/rng.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using citrus::rcu::EpochRcu;
using citrus::rcu::GlobalLockRcu;
using citrus::rcu::QsbrRcu;

struct TortureParam {
  int readers;
  int updaters;
  int updates_per_updater;
};

template <typename Rcu>
void torture(const TortureParam& p) {
  // A pool of versioned cells; updaters rotate through them.
  struct Cell {
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};  // invariant: b == a inside a version
    std::atomic<bool> dead{false};
    std::atomic<bool> claimed{false};  // writer-side ownership token
  };
  constexpr int kCells = 8;
  Cell cells[kCells];
  cells[0].claimed.store(true);  // the initially published cell
  std::atomic<Cell*> current{&cells[0]};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  Rcu domain;
  std::vector<std::thread> threads;
  for (int t = 0; t < p.readers; ++t) {
    threads.emplace_back([&] {
      typename Rcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
      while (!stop.load(std::memory_order_relaxed)) {
        domain.read_lock();
        Cell* c = current.load(std::memory_order_acquire);
        if (c->dead.load(std::memory_order_acquire)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        const std::uint64_t a = c->a.load(std::memory_order_acquire);
        // Some nested re-reads to vary section length.
        if ((rng() & 7) == 0) {
          domain.read_lock();
          domain.read_unlock();
        }
        const std::uint64_t b = c->b.load(std::memory_order_acquire);
        // A dead cell may be re-armed only after a grace period, so a/b
        // read inside one section always match.
        if (a != b) violations.fetch_add(1, std::memory_order_relaxed);
        domain.read_unlock();
      }
    });
  }

  for (int t = 0; t < p.updaters; ++t) {
    threads.emplace_back([&, t] {
      typename Rcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(1000u + t);
      for (int i = 0; i < p.updates_per_updater; ++i) {
        // Claim a free cell exclusively before writing into it.
        Cell* fresh = nullptr;
        for (int probe = 0; fresh == nullptr; ++probe) {
          Cell* cand = &cells[rng.bounded(kCells)];
          if (!cand->claimed.exchange(true, std::memory_order_acq_rel)) {
            fresh = cand;
          } else if (probe > 4 * kCells) {
            std::this_thread::yield();
          }
        }
        const std::uint64_t version =
            (static_cast<std::uint64_t>(t) << 32) |
            static_cast<std::uint32_t>(i + 1);
        fresh->a.store(version, std::memory_order_release);
        fresh->b.store(version, std::memory_order_release);
        Cell* old = current.exchange(fresh, std::memory_order_acq_rel);
        domain.synchronize();
        // No reader can still see `old`: poison it, then scramble its
        // invariant, then (after another grace period) re-arm and release
        // it for reuse.
        old->dead.store(true, std::memory_order_release);
        old->a.store(~0ull, std::memory_order_release);
        domain.synchronize();
        old->a.store(0, std::memory_order_release);
        old->b.store(0, std::memory_order_release);
        old->dead.store(false, std::memory_order_release);
        old->claimed.store(false, std::memory_order_release);
      }
      stop.store(true);
    });
  }

  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0u);
}

class TortureTest : public ::testing::TestWithParam<TortureParam> {};

TEST_P(TortureTest, CounterFlag) { torture<CounterFlagRcu>(GetParam()); }
TEST_P(TortureTest, GlobalLock) { torture<GlobalLockRcu>(GetParam()); }
TEST_P(TortureTest, Epoch) { torture<EpochRcu>(GetParam()); }
TEST_P(TortureTest, Qsbr) { torture<QsbrRcu>(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Mixes, TortureTest,
    ::testing::Values(TortureParam{2, 1, 300}, TortureParam{4, 1, 300},
                      TortureParam{2, 2, 200}, TortureParam{3, 3, 120}),
    // Not named `info`: the INSTANTIATE macro expands into a function whose
    // parameter is already called that, and -Wshadow objects.
    [](const ::testing::TestParamInfo<TortureParam>& tpi) {
      return std::to_string(tpi.param.readers) + "r" +
             std::to_string(tpi.param.updaters) + "u";
    });

// Reader starvation via the injection API (src/fault/): one designated
// victim reader is stalled inside its critical section, and the test
// asserts the contrapositive of the grace-period guarantee — synchronize
// must NOT complete while a pre-existing reader is still in its section —
// then releases the victim and sees the grace period finish promptly.
template <typename Rcu>
void reader_starvation() {
  namespace fault = citrus::fault;
  if (!fault::kEnabled) {
    GTEST_SKIP() << "build with -DCITRUS_FAULT_INJECT=ON";
  }
  auto& inj = fault::Injector::instance();
  fault::Plan p;
  p.site = fault::Site::kReaderStall;
  p.thread_filter = 5;
  inj.arm(p);

  Rcu domain;
  std::thread victim([&] {
    fault::ScopedThreadRole role(5);
    typename Rcu::Registration reg(domain);
    domain.read_lock();  // stalls inside the hook, section held open
    domain.read_unlock();
  });
  ASSERT_TRUE(citrus::sync::spin_until(
      std::chrono::steady_clock::now() + std::chrono::seconds(10),
      [&] { return inj.stalled_now(fault::Site::kReaderStall) == 1; }));

  std::atomic<bool> done{false};
  std::thread updater([&] {
    typename Rcu::Registration reg(domain);
    domain.synchronize();
    done.store(true, std::memory_order_release);
  });
  // The synchronize must still be blocked after a generous window...
  EXPECT_FALSE(citrus::sync::spin_until(
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200),
      [&] { return done.load(std::memory_order_acquire); }))
      << "synchronize completed while a reader was pinned in its section";
  // ...and must complete promptly once the starved reader is released.
  inj.release(fault::Site::kReaderStall);
  EXPECT_TRUE(citrus::sync::spin_until(
      std::chrono::steady_clock::now() + std::chrono::seconds(10),
      [&] { return done.load(std::memory_order_acquire); }));
  updater.join();
  victim.join();
  inj.disarm_all();
}

TEST(ReaderStarvation, CounterFlag) { reader_starvation<CounterFlagRcu>(); }
TEST(ReaderStarvation, GlobalLock) { reader_starvation<GlobalLockRcu>(); }
TEST(ReaderStarvation, Epoch) { reader_starvation<EpochRcu>(); }

}  // namespace
