// Property-style parameterized sweeps over the Citrus tree: for a grid of
// (threads, key range, operation mix), run a randomized workload and check
// the properties that must hold at quiescence regardless of schedule:
//   * the structural audit passes (WBST order, no marked reachable node,
//     single parent, size consistency),
//   * the quiescent key sequence is strictly sorted (no duplicates survive
//     a two-child delete's transient copy),
//   * point queries agree with the quiescent key set,
//   * with reclamation on, the pool's live-node count stays near the tree
//     size (no unbounded growth).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

using citrus::core::CitrusTree;
using citrus::core::DefaultTraits;
using citrus::rcu::CounterFlagRcu;

struct SweepParam {
  int threads;
  long key_range;
  int contains_percent;  // remainder split between insert/erase
  int ops_per_thread;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "t" + std::to_string(info.param.threads) + "_r" +
         std::to_string(info.param.key_range) + "_c" +
         std::to_string(info.param.contains_percent);
}

class CitrusSweep : public ::testing::TestWithParam<SweepParam> {};

struct SmallBatchTraits : DefaultTraits {
  static constexpr std::size_t kRetireBatch = 8;
};

TEST_P(CitrusSweep, QuiescentPropertiesHold) {
  const SweepParam p = GetParam();
  CounterFlagRcu domain;
  CitrusTree<long, long, CounterFlagRcu, SmallBatchTraits> tree(domain);

  std::vector<std::thread> threads;
  for (int t = 0; t < p.threads; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(0xABCDEFull * (t + 1) + p.key_range);
      for (int i = 0; i < p.ops_per_thread; ++i) {
        const long k = static_cast<long>(
            rng.bounded(static_cast<std::uint64_t>(p.key_range)));
        const auto dice = rng.bounded(100);
        if (dice < static_cast<std::uint64_t>(p.contains_percent)) {
          tree.contains(k);
        } else if (dice % 2 == 0) {
          tree.insert(k, k * 3);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // (1) structural audit
  const auto rep = tree.check_structure();
  ASSERT_TRUE(rep.ok) << rep.error;

  // (2) strictly sorted quiescent key set
  const auto keys = tree.keys_quiescent();
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  ASSERT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "duplicate key survived to quiescence";
  ASSERT_EQ(keys.size(), tree.size());

  // (3) point queries agree with the key set (spot-check a stride)
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < p.key_range; k += std::max(1L, p.key_range / 257)) {
      const bool in_set = std::binary_search(keys.begin(), keys.end(), k);
      ASSERT_EQ(tree.contains(k), in_set) << "key " << k;
      const auto v = tree.find(k);
      ASSERT_EQ(v.has_value(), in_set);
      if (v.has_value()) {
        ASSERT_EQ(*v, k * 3);
      }
    }
  }

  // (4) reclamation keeps pool occupancy near the live tree: live nodes =
  // size + 2 sentinels + bounded pending retires (16 shards * batch).
  const auto pending_bound =
      static_cast<std::int64_t>(16 * SmallBatchTraits::kRetireBatch);
  EXPECT_LE(tree.pool_live_nodes(),
            static_cast<std::int64_t>(tree.size()) + 2 + pending_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CitrusSweep,
    ::testing::Values(
        // threads, range, contains%, ops/thread
        SweepParam{1, 64, 0, 20000},     // sequential, update-only, hot
        SweepParam{2, 32, 0, 15000},     // tiny range: successor storms
        SweepParam{4, 128, 20, 12000},   // update-heavy
        SweepParam{4, 1024, 50, 12000},  // the paper's 50% mix
        SweepParam{8, 256, 50, 8000},    // oversubscribed
        SweepParam{4, 4096, 90, 12000},  // read-mostly
        SweepParam{3, 10000, 98, 10000}, // paper's 98% mix, sparse
        SweepParam{6, 512, 33, 8000}),   // three-way mix
    param_name);

// Zipf-skewed variant: hot keys concentrate two-child deletes on the same
// subtree; same quiescent properties must hold.
TEST(CitrusZipf, SkewedWorkloadKeepsProperties) {
  CounterFlagRcu domain;
  CitrusTree<long, long> tree(domain);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 77);
      citrus::util::ZipfGenerator zipf(2000, 0.9);
      for (int i = 0; i < 12000; ++i) {
        const long k = static_cast<long>(zipf(rng));
        switch (rng.bounded(3)) {
          case 0:
            tree.insert(k, k * 3);
            break;
          case 1:
            tree.erase(k);
            break;
          default:
            tree.contains(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto rep = tree.check_structure();
  ASSERT_TRUE(rep.ok) << rep.error;
  const auto keys = tree.keys_quiescent();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

}  // namespace
