// Deterministic replays of the exact concurrency scenarios the paper's
// correctness argument is built around, using the tree's PausePoint test
// hooks to freeze an operation at a chosen step:
//
//   * Figure 3(c)-(e) / Figure 4: a search overlapping a two-child delete
//     finds the successor either in its old position (search began before
//     synchronize_rcu) or in its new copy (search began after) — never in
//     neither (the false negative Figure 4 illustrates).
//   * Figure 5: an insert whose parent is deleted between its search and
//     its lock acquisition must fail validation and restart, not attach
//     the new key to a removed node.
//   * The ABA tag: a child slot that goes ⊥ → occupied → ⊥ between an
//     insert's search and its validation is caught by the tag check.
//   * Lemma 1's marked-bit discipline: a reader paused on a bypassed node
//     still reaches everything below it.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "sync/barrier.hpp"

namespace {

using citrus::core::CitrusTree;
using citrus::core::PausePoint;
using citrus::rcu::CounterFlagRcu;

// Traits whose pause() blocks at an armed point until released. Function
// pointers are static (traits are types), so each TEST arms its own state
// and disarms before finishing.
struct HookTraits : citrus::core::DefaultTraits {
  static inline std::atomic<int> armed_point{-1};
  static inline std::atomic<bool> parked{false};
  static inline std::atomic<bool> release{false};
  static inline std::atomic<int> hit_count{0};

  static void pause(PausePoint point) {
    if (static_cast<int>(point) != armed_point.load(std::memory_order_acquire)) {
      return;
    }
    hit_count.fetch_add(1, std::memory_order_acq_rel);
    armed_point.store(-1, std::memory_order_release);  // one-shot
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    release.store(false, std::memory_order_release);
    parked.store(false, std::memory_order_release);
  }

  static void arm(PausePoint point) {
    parked.store(false);
    release.store(false);
    hit_count.store(0);
    armed_point.store(static_cast<int>(point), std::memory_order_release);
  }
  static void wait_parked() {
    while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  static void resume() { release.store(true, std::memory_order_release); }
  static void disarm() { armed_point.store(-1, std::memory_order_release); }
};

using HookedTree = CitrusTree<long, long, CounterFlagRcu, HookTraits>;

class ScenarioTest : public ::testing::Test {
 protected:
  void TearDown() override { HookTraits::disarm(); }
  CounterFlagRcu domain;
  HookedTree tree{domain};
};

// Figure 3(c)-(e): during the window between publishing the successor's
// copy and unlinking the original, *both* copies are reachable; a search
// for the successor's key succeeds throughout, and a pre-existing reader
// blocks the grace period.
TEST_F(ScenarioTest, SuccessorVisibleThroughoutTwoChildDelete) {
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k : {50, 30, 70, 60, 80, 65}) tree.insert(k, k);
  }
  // Freeze the erase right after the copy is published (pre-grace).
  HookTraits::arm(PausePoint::kAfterReplacementPublish);
  std::thread eraser([&] {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.erase(50));  // two children; successor is 60
  });
  HookTraits::wait_parked();

  {
    CounterFlagRcu::Registration reg(domain);
    // WBST window: the successor's key is found (old node and/or copy);
    // the deleted key's node is already unlinked.
    EXPECT_TRUE(tree.contains(60));
    EXPECT_FALSE(tree.contains(50));
    // All other keys unperturbed.
    for (long k : {30, 65, 70, 80}) EXPECT_TRUE(tree.contains(k));
  }
  HookTraits::resume();
  eraser.join();
  {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.contains(60));  // found at its new position
    EXPECT_FALSE(tree.contains(50));
  }
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

// Figure 4's false negative cannot happen: a reader whose section started
// before the delete reached synchronize_rcu still finds the successor in
// its *old* position, and the delete cannot pass the grace period while
// that reader is inside its section.
TEST_F(ScenarioTest, PreexistingReaderFindsOldSuccessorAndBlocksGrace) {
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k : {50, 30, 70, 60, 80}) tree.insert(k, k);
  }
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> erase_done{false};
  std::thread reader([&] {
    CounterFlagRcu::Registration reg(domain);
    domain.read_lock();  // outer section: the grace period must wait for us
    barrier.arrive_and_wait();
    // Wait until the eraser is (very likely) inside synchronize_rcu.
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_FALSE(erase_done.load()) << "grace period ignored our section";
    // Our pre-existing section still sees the successor somewhere.
    EXPECT_TRUE(tree.contains(60));
    domain.read_unlock();
  });
  std::thread eraser([&] {
    CounterFlagRcu::Registration reg(domain);
    barrier.arrive_and_wait();
    EXPECT_TRUE(tree.erase(50));  // blocks in synchronize_rcu on the reader
    erase_done.store(true);
  });
  reader.join();
  eraser.join();
  EXPECT_TRUE(erase_done.load());
  CounterFlagRcu::Registration reg(domain);
  EXPECT_TRUE(tree.contains(60));
  EXPECT_TRUE(tree.check_structure().ok);
}

// Figure 5: the insert's parent is deleted between search and lock. The
// validation (marked bit) must fail and the insert must restart — ending
// with the key present and attached to a live node.
TEST_F(ScenarioTest, InsertRestartsWhenParentRemoved) {
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k : {50, 30, 70}) tree.insert(k, k);
  }
  // insert(35) will pick 30 as its parent; freeze it pre-lock.
  HookTraits::arm(PausePoint::kInsertAfterGet);
  std::thread inserter([&] {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.insert(35, 35));
  });
  HookTraits::wait_parked();
  {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.erase(30));  // leaf delete: 30 is marked + unlinked
  }
  HookTraits::resume();
  inserter.join();

  CounterFlagRcu::Registration reg(domain);
  EXPECT_TRUE(tree.contains(35));  // inserted at a *live* location
  EXPECT_FALSE(tree.contains(30));
  EXPECT_GE(tree.stats().insert_retries, 1u);
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

// The ABA tag: insert(40) searches and finds slot 30.right == ⊥ with tag t.
// While it is frozen, 35 is inserted into that slot and then removed (slot
// back to ⊥, tag t+1). The insert's tag validation must fail and retry.
TEST_F(ScenarioTest, TagCatchesChildSlotAba) {
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k : {50, 30, 70}) tree.insert(k, k);
  }
  HookTraits::arm(PausePoint::kInsertAfterGet);
  std::thread inserter([&] {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.insert(40, 40));  // parent 30, right slot, tag snapshot
  });
  HookTraits::wait_parked();
  {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.insert(35, 35));  // slot ⊥ -> node
    EXPECT_TRUE(tree.erase(35));       // slot node -> ⊥, tag++
  }
  HookTraits::resume();
  inserter.join();

  CounterFlagRcu::Registration reg(domain);
  EXPECT_TRUE(tree.contains(40));
  EXPECT_FALSE(tree.contains(35));
  // The tag check forced at least one restart; without tags the insert
  // would have attached 40 to the stale snapshot without noticing the
  // intervening insert+delete.
  EXPECT_GE(tree.stats().insert_retries, 1u);
  EXPECT_TRUE(tree.check_structure().ok);
}

// Erase validation: the victim is removed by a competing delete between
// search and lock; the frozen erase must observe marked/child mismatch,
// restart, and return false (key already gone).
TEST_F(ScenarioTest, EraseLosesRaceGracefully) {
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k : {50, 30, 70}) tree.insert(k, k);
  }
  HookTraits::arm(PausePoint::kEraseAfterGet);
  std::thread eraser([&] {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_FALSE(tree.erase(30));  // the competing delete wins
  });
  HookTraits::wait_parked();
  {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.erase(30));
  }
  HookTraits::resume();
  eraser.join();
  CounterFlagRcu::Registration reg(domain);
  EXPECT_FALSE(tree.contains(30));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.check_structure().ok);
}

// Lemma 2's guarantee, observable form: a new search that starts *after*
// the successor's copy was published (but before the original is
// unlinked) finds the key via the copy; once the erase completes the old
// node is gone and the key remains reachable.
TEST_F(ScenarioTest, SearchAfterPublishSeesCopy) {
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k : {50, 30, 70, 60, 80, 55}) tree.insert(k, k);
  }
  HookTraits::arm(PausePoint::kBeforeSuccessorUnlink);
  std::thread eraser([&] {
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.erase(50));  // successor 55 (deep in 70's subtree)
  });
  HookTraits::wait_parked();
  {
    // Fresh searches during the both-copies window.
    CounterFlagRcu::Registration reg(domain);
    EXPECT_TRUE(tree.contains(55));
    EXPECT_EQ(tree.find(55), 55);
    EXPECT_FALSE(tree.contains(50));
  }
  HookTraits::resume();
  eraser.join();
  CounterFlagRcu::Registration reg(domain);
  EXPECT_TRUE(tree.contains(55));
  EXPECT_TRUE(tree.check_structure().ok);
}

}  // namespace
