// Concurrent scans vs. updates. Scanners sweep ranges while updaters
// churn keys; every emitted sequence must be strictly ascending, inside
// bounds, contain every key that is present throughout the run, and never
// contain a key that is absent throughout. On rcucheck builds the node
// canaries additionally verify no scan touches recycled memory (the
// chunked-cursor reclaim-safety argument: within a chunk the open
// read-side section blocks recycling, across chunks only the key
// survives).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapters/idictionary.hpp"
#include "lineariz/checker.hpp"
#include "util/rng.hpp"

namespace {

using citrus::adapters::make_dictionary;
using citrus::adapters::Options;
using citrus::adapters::ScanConsistency;
using citrus::adapters::ScanOptions;
using citrus::lineariz::check_multikey_history;
using citrus::lineariz::HistoryRecorder;
using citrus::lineariz::OpType;

// Key layout: keys ≡ 0 (mod 3) are stable (inserted up front, never
// touched), keys ≡ 1 are churned by updaters, keys ≡ 2 never exist.
constexpr std::int64_t kKeySpan = 3000;
bool is_stable(std::int64_t k) { return k % 3 == 0; }

struct TortureParams {
  std::string name;
  ScanConsistency level;
  std::size_t chunk;
  bool expect_scan_stats = false;  // implementation tracks scan counters
  bool reclaim = false;            // force DefaultTraits (stats + reclaim)
  bool reverse = false;            // descending scans (ScanOptions::reverse)
};

void run_torture(const TortureParams& p, int updaters, int scanners,
                 int scan_rounds) {
  Options options;
  options.key_range_hint = kKeySpan;
  if (p.reclaim) options.reclaim = true;
  const auto dict = make_dictionary(p.name, options);
  {
    const auto scope = dict->enter_thread();
    for (std::int64_t k = 0; k < kKeySpan; k += 3) {
      ASSERT_TRUE(dict->insert(k, k));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  for (int u = 0; u < updaters; ++u) {
    threads.emplace_back([&, u] {
      const auto scope = dict->enter_thread();
      citrus::util::Xoshiro256 rng(0xBEEF + u);
      while (!stop.load(std::memory_order_acquire)) {
        const std::int64_t k =
            static_cast<std::int64_t>(rng() % (kKeySpan / 3)) * 3 + 1;
        if (rng() & 1) {
          dict->insert(k, k);
        } else {
          dict->erase(k);
        }
      }
    });
  }

  for (int s = 0; s < scanners; ++s) {
    threads.emplace_back([&, s] {
      const auto scope = dict->enter_thread();
      citrus::util::Xoshiro256 rng(0xFEED + s);
      ScanOptions opts;
      opts.consistency = p.level;
      opts.chunk = p.chunk;
      opts.reverse = p.reverse;
      for (int round = 0; round < scan_rounds; ++round) {
        const auto lo = static_cast<std::int64_t>(rng() % kKeySpan);
        const auto hi =
            std::min<std::int64_t>(kKeySpan, lo + 50 + (rng() % 500));
        std::vector<std::int64_t> got;
        dict->range(
            lo, hi,
            [&](std::int64_t k, std::int64_t v) {
              got.push_back(k);
              // Every resident key was inserted with value == key.
              if (v != k) failures.fetch_add(1);
              return true;
            },
            opts);
        // Strictly monotone (ascending, or descending in reverse mode),
        // in bounds.
        for (std::size_t i = 0; i < got.size(); ++i) {
          if (got[i] < lo || got[i] > hi) failures.fetch_add(1);
          if (i > 0 && (p.reverse ? got[i - 1] <= got[i]
                                  : got[i - 1] >= got[i])) {
            failures.fetch_add(1);
          }
          if (got[i] % 3 == 2) failures.fetch_add(1);  // never inserted
        }
        // The stable-key sweep below walks ascending; flip a descending
        // emission first.
        if (p.reverse) std::reverse(got.begin(), got.end());
        // Every stable key in [lo, hi] must appear (present throughout:
        // a validated chunk covering it must see it, and a weak succ
        // chain cannot step over a continuously-present key).
        std::size_t gi = 0;
        for (std::int64_t k = lo; k <= hi; ++k) {
          if (!is_stable(k) || k >= kKeySpan) continue;
          while (gi < got.size() && got[gi] < k) ++gi;
          if (gi == got.size() || got[gi] != k) failures.fetch_add(1);
        }
        // succ/pred under churn: results respect strictness and layout.
        const auto probe = static_cast<std::int64_t>(rng() % kKeySpan);
        if (const auto nx = dict->succ(probe)) {
          if (nx->key <= probe || nx->key % 3 == 2) failures.fetch_add(1);
        }
        if (const auto pv = dict->pred(probe)) {
          if (pv->key >= probe || pv->key % 3 == 2) failures.fetch_add(1);
        }
      }
    });
  }

  // Updaters stop when the scanners are done.
  for (std::size_t i = threads.size() - 1;
       i + 1 > static_cast<std::size_t>(updaters); --i) {
    threads[i].join();
    threads.pop_back();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << p.name;

  // Post-quiescence: the structure is intact and stable keys survive.
  const auto rep = dict->check_structure();
  EXPECT_TRUE(rep.ok) << p.name << ": " << rep.error;
  const auto scope = dict->enter_thread();
  for (std::int64_t k = 0; k < kKeySpan; k += 3) {
    ASSERT_TRUE(dict->contains(k)) << p.name << " lost stable key " << k;
  }
  if (p.expect_scan_stats) {
    const auto snap = dict->stats();
    EXPECT_GT(snap.scans, 0u) << p.name;
  }
}

TEST(ScanTorture, CitrusChunked) {
  run_torture({"citrus", ScanConsistency::kChunked, 64}, 3, 3, 150);
}

TEST(ScanTorture, CitrusSnapshotPasses) {
  run_torture({"citrus", ScanConsistency::kSnapshot, 0}, 2, 2, 60);
}

TEST(ScanTorture, CitrusReclaimChunked) {
  // Reclamation on: chunked scans ride over a tree whose nodes are being
  // recycled through the pool. The key-cursor re-entry must never chase a
  // recycled node (rcucheck canaries catch it if it does).
  run_torture({"citrus-reclaim", ScanConsistency::kChunked, 32, true, true}, 3, 3,
              150);
}

TEST(ScanTorture, CopChunked) {
  // Scans racing cop publishes: a chunk's seqlock validation must observe
  // the cop publish (HTM commit or release CAS) as one even→even version
  // step and retry, never emit a half-published neighborhood.
  run_torture({"citrus-cop", ScanConsistency::kChunked, 64}, 3, 3, 150);
}

TEST(ScanTorture, CopReclaimChunked) {
  // Cop with reclamation: private copies that lose validation go straight
  // back to the pool (no grace period owed), published victims retire
  // through the deferred machinery — scans must never see either early.
  run_torture({"citrus-cop", ScanConsistency::kChunked, 32, true, true}, 3,
              3, 150);
}

TEST(ScanTorture, CopShardedMerge) {
  run_torture({"citrus-cop-shard4", ScanConsistency::kChunked, 48, true, true},
              3, 3, 100);
}

TEST(ScanTorture, ShardedMerge) {
  run_torture({"citrus-shard4", ScanConsistency::kChunked, 48, true, true}, 3, 3,
              100);
}

TEST(ScanTorture, CfChunked) {
  // Scans racing background subtree rebuilds: the parent seqlock bump
  // around the one-edge swing must force any validated chunk through the
  // rebuilt neighborhood to retry, never emit a mix of old and new copy.
  run_torture({"citrus-cf", ScanConsistency::kChunked, 64}, 3, 3, 150);
}

TEST(ScanTorture, CfReclaimChunked) {
  // Maintainer + reclamation: replaced subtrees retire through real grace
  // periods while scans re-enter by key cursor (rcucheck canaries catch a
  // chunk chasing a recycled rebuilt-away node).
  run_torture({"citrus-cf", ScanConsistency::kChunked, 32, true, true}, 3, 3,
              150);
}

TEST(ScanTorture, CfShardedMerge) {
  run_torture({"citrus-cf-shard4", ScanConsistency::kChunked, 48, true, true},
              3, 3, 100);
}

TEST(ScanTorture, CitrusReverseChunked) {
  // Descending validated scans under churn: same invariants, mirrored.
  run_torture({"citrus", ScanConsistency::kChunked, 64, false, false, true},
              3, 3, 150);
}

TEST(ScanTorture, CfReverseChunked) {
  // Descending scans racing the maintainer's one-edge subtree swings.
  run_torture({"citrus-cf", ScanConsistency::kChunked, 64, false, false, true},
              3, 3, 100);
}

TEST(ScanTorture, ShardedReverseMerge) {
  run_torture(
      {"citrus-shard4", ScanConsistency::kChunked, 48, true, true, true}, 3, 3,
      100);
}

TEST(ScanTorture, WeakReverseFallback) {
  // The pred-chain fallback must uphold the stable-key invariants too.
  run_torture({"skiplist", ScanConsistency::kWeak, 0, false, false, true}, 2,
              2, 30);
}

TEST(ScanTorture, BonsaiSnapshot) {
  run_torture({"bonsai", ScanConsistency::kSnapshot, 0}, 2, 2, 80);
}

TEST(ScanTorture, WeakFallbackOnCitrus) {
  // The weak succ-chain path must uphold the stable-key invariants too.
  run_torture({"citrus", ScanConsistency::kWeak, 0}, 2, 2, 30);
}

TEST(ScanTorture, WeakBaselineSkiplist) {
  run_torture({"skiplist", ScanConsistency::kWeak, 0}, 2, 2, 30);
}

TEST(ScanTorture, CitrusScanHistoriesLinearize) {
  // Small checked rounds: full (updates + snapshot scans) histories must
  // admit a joint linearization — the Figure-1 regression, in-tree.
  const auto dict = make_dictionary("citrus");
  constexpr std::int64_t kA = 10, kB = 20;
  for (int round = 0; round < 40; ++round) {
    HistoryRecorder rec(3);
    std::vector<std::thread> threads;
    for (int s = 1; s <= 2; ++s) {
      threads.emplace_back([&, s] {
        const auto scope = dict->enter_thread();
        ScanOptions opts;
        opts.consistency = ScanConsistency::kSnapshot;
        for (int i = 0; i < 8; ++i) {
          const auto t = rec.invoke();
          std::vector<std::int64_t> observed;
          dict->range(
              kA, kB,
              [&](std::int64_t k, std::int64_t) {
                observed.push_back(k);
                return true;
              },
              opts);
          rec.record_range(s, kA, kB, std::move(observed), t);
        }
      });
    }
    {
      const auto scope = dict->enter_thread();
      for (int lap = 0; lap < 3; ++lap) {
        for (const std::int64_t k : {kA, kB}) {
          auto t = rec.invoke();
          rec.record(0, k, OpType::kInsert, dict->insert(k, k), t);
        }
        for (const std::int64_t k : {kA, kB}) {
          auto t = rec.invoke();
          rec.record(0, k, OpType::kErase, dict->erase(k), t);
        }
      }
    }
    for (auto& t : threads) t.join();
    const auto r = check_multikey_history(rec, {});
    ASSERT_TRUE(r.linearizable) << "round " << round << ": " << r.detail;
  }
}

}  // namespace
