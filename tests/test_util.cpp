// Unit tests for the util substrate: RNG, Zipf, statistics, CLI options.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

namespace {

using namespace citrus::util;

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(42);
  (void)c;
  EXPECT_NE(a(), a2());  // a has advanced
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedRoughlyUniform) {
  Xoshiro256 rng(123);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.bounded(kBuckets)];
  for (auto count : counts) {
    EXPECT_NEAR(count, kSamples / kBuckets, kSamples / kBuckets * 0.15);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(98, 100) ? 1 : 0;
  EXPECT_NEAR(hits, 98000, 600);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Xoshiro256 rng(3);
  ZipfGenerator zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(Zipf, SkewPrefersSmallKeys) {
  Xoshiro256 rng(3);
  ZipfGenerator zipf(1000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  // Rank-1 key should dominate rank-100 by roughly 100^0.99.
  EXPECT_GT(counts[0], counts[99] * 10);
  // All samples in range.
  for (const auto& [k, unused] : counts) EXPECT_LT(k, 1000u);
}

TEST(Zipf, LargeRangeNoSetupCost) {
  Xoshiro256 rng(9);
  ZipfGenerator zipf(2000000, 0.8);  // the paper's large key range
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf(rng), 2000000u);
}

TEST(Stats, SummarizeBasic) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummarizeEvenCountMedian) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, WelfordMatchesSummarize) {
  std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  Welford w;
  for (double x : xs) w.add(x);
  const Summary s = summarize(xs);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_NEAR(w.mean(), s.mean, 1e-12);
  EXPECT_NEAR(std::sqrt(w.variance()), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Stats, WelfordMerge) {
  Welford a, b, whole;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    whole.add(i);
  }
  for (int i = 50; i < 100; ++i) {
    b.add(i * 1.5);
    whole.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
}

TEST(Stats, LogHistogramQuantiles) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.add(100);    // bucket [64,128)
  for (int i = 0; i < 10; ++i) h.add(10000);  // bucket [8192,16384)
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.quantile(0.5), 64u);
  EXPECT_EQ(h.quantile(0.99), 8192u);
}

TEST(Stats, LogHistogramMerge) {
  LogHistogram a, b;
  a.add(10);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
}

TEST(Cli, ParsesKeyValues) {
  const char* argv[] = {"prog", "--threads=8", "--seconds=2.5",
                        "--verbose", "--name=test"};
  Options opts(5, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("threads", 1), 8);
  EXPECT_DOUBLE_EQ(opts.get_double("seconds", 1.0), 2.5);
  EXPECT_TRUE(opts.get_bool("verbose", false));
  EXPECT_EQ(opts.get("name", ""), "test");
  EXPECT_EQ(opts.get_int("missing", 42), 42);
  EXPECT_TRUE(opts.has("threads"));
  EXPECT_FALSE(opts.has("missing"));
}

TEST(Cli, ParsesIntLists) {
  const char* argv[] = {"prog", "--threads=1,2,4,8"};
  Options opts(2, const_cast<char**>(argv));
  const auto list = opts.get_int_list("threads", {});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[3], 8);
  EXPECT_EQ(opts.get_int_list("other", {5}).at(0), 5);
}

TEST(Cli, EnvironmentFallback) {
  ::setenv("CITRUS_TEST_KNOB", "17", 1);
  const char* argv[] = {"prog"};
  Options opts(1, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("test-knob", 0), 17);
  ::unsetenv("CITRUS_TEST_KNOB");
}

TEST(Cli, CommandLineBeatsEnvironment) {
  ::setenv("CITRUS_TEST_KNOB", "17", 1);
  const char* argv[] = {"prog", "--test-knob=5"};
  Options opts(2, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("test-knob", 0), 5);
  ::unsetenv("CITRUS_TEST_KNOB");
}

TEST(Cli, RejectsMalformedArguments) {
  const char* argv[] = {"prog", "nonsense"};
  EXPECT_THROW(Options(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Timer, StopwatchMonotone) {
  Stopwatch w;
  const double a = w.elapsed_seconds();
  const double b = w.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(w.elapsed_nanos(), 0u);
  w.reset();
  EXPECT_GE(w.elapsed_seconds(), 0.0);
}

}  // namespace
