// Structure-specific behaviour of the comparator implementations, beyond
// the shared typed suite: red-black invariants, Bonsai snapshots and
// balance, skiplist level structure, the lock-free tree's edge marks, and
// the AVL tree's routing nodes / relaxed balance.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "baselines/avl_bronson.hpp"
#include "baselines/bonsai.hpp"
#include "baselines/lazy_skiplist.hpp"
#include "baselines/lockfree_bst.hpp"
#include "baselines/rcu_rbtree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;

TEST(RbTree, StaysBalancedUnderAdversarialOrder) {
  // Ascending inserts then ascending deletes: the classic rotation
  // torture. check_structure verifies black-height equality throughout.
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::baselines::RcuRedBlackTree<long, long> t(domain);
  for (long k = 0; k < 2000; ++k) {
    ASSERT_TRUE(t.insert(k, k));
    if (k % 128 == 0) {
      std::string err;
      ASSERT_TRUE(t.check_structure(&err)) << "insert " << k << ": " << err;
    }
  }
  for (long k = 0; k < 2000; k += 2) {
    ASSERT_TRUE(t.erase(k));
    if (k % 256 == 0) {
      std::string err;
      ASSERT_TRUE(t.check_structure(&err)) << "erase " << k << ": " << err;
    }
  }
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
  EXPECT_EQ(t.size(), 1000u);
}

TEST(RbTree, TwoChildDeletePaysGracePeriod) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::baselines::RcuRedBlackTree<long, long> t(domain);
  for (long k : {50, 30, 70, 60, 80}) t.insert(k, k);
  const auto before = domain.synchronize_calls();
  EXPECT_TRUE(t.erase(50));  // two children -> successor copy + sync
  EXPECT_GT(domain.synchronize_calls(), before);
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(RbTree, ReadersDuringWriterBurst) {
  CounterFlagRcu domain;
  citrus::baselines::RcuRedBlackTree<long, long> t(domain);
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < 512; ++k) t.insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(r + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = static_cast<long>(rng.bounded(512));
        const auto v = t.find(k);
        if (v.has_value() && *v != k) bad.store(true);
      }
    });
  }
  {
    CounterFlagRcu::Registration reg(domain);
    citrus::util::Xoshiro256 rng(99);
    for (int i = 0; i < 4000; ++i) {
      const long k = static_cast<long>(rng.bounded(512));
      t.erase(k);
      t.insert(k, k);
    }
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(Bonsai, SnapshotIsSortedAndConsistent) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::baselines::BonsaiTree<long, long> t(domain);
  for (long k = 0; k < 100; ++k) t.insert(k, k * 3);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 100u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].first, static_cast<long>(i));
    EXPECT_EQ(snap[i].second, static_cast<long>(i) * 3);
  }
}

TEST(Bonsai, SnapshotUnderConcurrentUpdatesIsAtomic) {
  // Each update inserts (k, stamp) and (k+1, stamp) with the same stamp
  // under one... two separate updates are not atomic, so instead verify a
  // weaker but still discriminating property: a snapshot is sorted and
  // duplicate-free — the torn-iteration anomaly of Figure 1 produces
  // out-of-order or repeated keys with in-place trees.
  CounterFlagRcu domain;
  citrus::baselines::BonsaiTree<long, long> t(domain);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int u = 0; u < 2; ++u) {
    threads.emplace_back([&, u] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(u);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = static_cast<long>(rng.bounded(300));
        if (rng.bounded(2) == 0) {
          t.insert(k, k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  {
    CounterFlagRcu::Registration reg(domain);
    for (int i = 0; i < 300; ++i) {
      const auto snap = t.snapshot();
      ASSERT_TRUE(std::is_sorted(snap.begin(), snap.end()));
      ASSERT_TRUE(std::adjacent_find(snap.begin(), snap.end()) == snap.end());
    }
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(Bonsai, StaysWeightBalanced) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::baselines::BonsaiTree<long, long> t(domain);
  for (long k = 0; k < 4000; ++k) {
    ASSERT_TRUE(t.insert(k, k));  // ascending: worst case for balance
  }
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
  for (long k = 0; k < 4000; k += 3) ASSERT_TRUE(t.erase(k));
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(Skiplist, StructureAfterChurn) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::baselines::LazySkiplist<long, long> t(domain);
  citrus::util::Xoshiro256 rng(8);
  std::set<long> oracle;
  for (int i = 0; i < 20000; ++i) {
    const long k = static_cast<long>(rng.bounded(400));
    if (rng.bounded(2) == 0) {
      ASSERT_EQ(t.insert(k, k), oracle.insert(k).second);
    } else {
      ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
    }
  }
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
  EXPECT_EQ(t.size(), oracle.size());
}

TEST(LockFree, HelpsStalledDeletes) {
  // Hammering a tiny range with updates exercises the helping paths
  // (injection vs cleanup races) constantly; semantics stay exact per
  // stripe and the final structure carries no leftover flags/tags.
  CounterFlagRcu domain;
  citrus::baselines::LockFreeBst<long, long> t(domain);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(i);
      for (int j = 0; j < 20000; ++j) {
        const long k = static_cast<long>(rng.bounded(16));  // extreme contention
        if (rng.bounded(2) == 0) {
          t.insert(k, k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(Avl, RoutingNodesAppearOnTwoChildDelete) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::baselines::BronsonAvlTree<long, long> t(domain);
  for (long k : {50, 30, 70, 20, 40, 60, 80}) t.insert(k, k);
  EXPECT_TRUE(t.erase(50));  // two children: becomes a routing node
  EXPECT_FALSE(t.contains(50));
  EXPECT_EQ(t.size(), 6u);
  // Reviving the routing node must work as a plain insert.
  EXPECT_TRUE(t.insert(50, 555));
  EXPECT_EQ(t.find(50), 555);
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
}

TEST(Avl, BalanceStaysNearAvlUnderChurn) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::baselines::BronsonAvlTree<long, long> t(domain);
  for (long k = 0; k < 4096; ++k) ASSERT_TRUE(t.insert(k, k));
  // Relaxed balance: not strictly AVL, but ascending inserts with inline
  // repair must stay within a small constant of it.
  EXPECT_LE(t.max_imbalance(), 3);
  citrus::util::Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const long k = static_cast<long>(rng.bounded(4096));
    if (rng.bounded(2) == 0) {
      t.erase(k);
    } else {
      t.insert(k, k);
    }
  }
  std::string err;
  EXPECT_TRUE(t.check_structure(&err)) << err;
  EXPECT_LE(t.max_imbalance(), 6);  // routing nodes may defer some repairs
}

TEST(Avl, WaitsOutShrinkingNodes) {
  // Readers racing with continuous rotations (ascending insert storm) must
  // neither miss keys nor crash.
  CounterFlagRcu domain;
  citrus::baselines::BronsonAvlTree<long, long> t(domain);
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 0; k < 1024; k += 2) t.insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> missed{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(r);
      while (!stop.load(std::memory_order_relaxed)) {
        // Even keys are permanent; a miss is a real violation.
        const long k = 2 * static_cast<long>(rng.bounded(512));
        if (!t.contains(k)) missed.store(true);
      }
    });
  }
  {
    CounterFlagRcu::Registration reg(domain);
    for (long k = 1; k < 1024; k += 2) t.insert(k, k);  // rotation storm
    for (long k = 1; k < 1024; k += 2) t.erase(k);
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_FALSE(missed.load());
}

}  // namespace
