// The shared grace-period engine (rcu/gp_seq.hpp) and the hierarchical
// counter-flag domain built on it:
//   * cookie arithmetic (an in-flight grace period must not be adopted),
//   * leader election / piggybacking and the started+shared accounting,
//   * start/poll/synchronize(cookie) deferred grace periods,
//   * hint-trim + repair (a reader whose group hint was trimmed while it
//     was idle must become visible to the next scan again),
//   * the expedited flat path,
//   * the grace-period-sharing torture: many concurrent synchronizers
//     publishing/poisoning their own buffers under churning readers, with
//     total scans ≪ total synchronize calls.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/gp_seq.hpp"
#include "rcu/reclaimer.hpp"
#include "sync/barrier.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using citrus::rcu::EpochRcu;
using citrus::rcu::FlatCounterFlagRcu;
using citrus::rcu::GpCookie;
using citrus::rcu::GpSeq;

static_assert(citrus::rcu::gp_poll_domain<CounterFlagRcu>);
static_assert(citrus::rcu::gp_poll_domain<EpochRcu>);
static_assert(!citrus::rcu::gp_poll_domain<FlatCounterFlagRcu>);

// ── Raw engine semantics ─────────────────────────────────────────────

TEST(GpSeq, CookieNamesNextFullGracePeriodWhenIdle) {
  GpSeq gp;
  EXPECT_EQ(gp.current(), 0u);
  const GpCookie c = gp.snap();
  EXPECT_EQ(c, 2u);  // idle (even): the very next grace period suffices
  EXPECT_FALSE(gp.done(c));
  int scans = 0;
  gp.drive(c, [&] { ++scans; });
  EXPECT_EQ(scans, 1);
  EXPECT_EQ(gp.current(), 2u);
  EXPECT_TRUE(gp.done(c));
  EXPECT_EQ(gp.started(), 1u);
  EXPECT_EQ(gp.shared(), 0u);
}

TEST(GpSeq, CompletedGracePeriodIsSharedNotRescanned) {
  GpSeq gp;
  int scans = 0;
  gp.drive(gp.snap(), [&] { ++scans; });
  // A cookie snapped before that grace period completed is already done:
  // driving it again must not scan.
  gp.drive(2, [&] { ++scans; });
  EXPECT_EQ(scans, 1);
  EXPECT_EQ(gp.started(), 1u);
  EXPECT_EQ(gp.shared(), 1u);
}

TEST(GpSeq, SnapDuringInFlightGracePeriodRequiresTheNextOne) {
  GpSeq gp;
  GpCookie inner = 0;
  gp.drive(gp.snap(), [&] {
    // Sequence is odd here (grace period in progress). A snap taken now
    // must NOT be satisfied by the in-flight grace period — its sampling
    // fence may predate this caller's unlinks.
    inner = gp.snap();
  });
  EXPECT_EQ(gp.current(), 2u);
  EXPECT_EQ(inner, 4u);
  EXPECT_FALSE(gp.done(inner));
  int scans = 0;
  gp.drive(inner, [&] { ++scans; });
  EXPECT_EQ(scans, 1);
  EXPECT_TRUE(gp.done(inner));
}

TEST(GpSeq, ConcurrentDriversAccountEveryCallExactlyOnce) {
  GpSeq gp;
  constexpr int kThreads = 8;
  constexpr int kDrives = 200;
  std::atomic<std::uint64_t> scans{0};
  citrus::sync::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kDrives; ++i) {
        gp.drive(gp.snap(), [&] { scans.fetch_add(1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(gp.started() + gp.shared(), kThreads * kDrives);
  EXPECT_EQ(gp.started(), scans.load());
  EXPECT_EQ(gp.current(), 2 * gp.started());
}

// ── Deferred grace periods on the counter-flag domain ────────────────

TEST(CounterFlagGp, StartPollSynchronizeCookie) {
  CounterFlagRcu domain;
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> release_reader{false};
  std::atomic<bool> reader_done{false};

  std::thread reader([&] {
    CounterFlagRcu::Registration reg(domain);
    domain.read_lock();
    barrier.arrive_and_wait();
    while (!release_reader.load()) std::this_thread::yield();
    reader_done.store(true);
    domain.read_unlock();
  });

  CounterFlagRcu::Registration reg(domain);
  barrier.arrive_and_wait();
  const GpCookie cookie = domain.start_grace_period();
  // Nothing is driving grace periods, so the cookie cannot complete on
  // its own — poll stays false without blocking.
  EXPECT_FALSE(domain.poll(cookie));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(domain.poll(cookie));
  release_reader.store(true);
  domain.synchronize(cookie);  // drives the scan, waits out the reader
  EXPECT_TRUE(reader_done.load());
  EXPECT_TRUE(domain.poll(cookie));
  reader.join();
  EXPECT_GE(domain.grace_periods_started(), 1u);
}

TEST(CounterFlagGp, TrimmedReaderIsWaitedForAgain) {
  // A reader that goes idle long enough to be hint-trimmed must become
  // visible to later scans the moment it re-enters a section (the
  // trim_seq repair handshake).
  CounterFlagRcu domain;
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> release_reader{false};
  std::atomic<bool> reader_done{false};

  std::thread reader([&] {
    CounterFlagRcu::Registration reg(domain);
    domain.read_lock();  // publish the hint bit once
    domain.read_unlock();
    barrier.arrive_and_wait();  // idle while the main thread trims
    barrier.arrive_and_wait();
    domain.read_lock();  // re-enter: the repair path must re-publish
    barrier.arrive_and_wait();
    while (!release_reader.load()) std::this_thread::yield();
    reader_done.store(true);
    domain.read_unlock();
  });

  CounterFlagRcu::Registration reg(domain);
  barrier.arrive_and_wait();
  // Each scan trims idle records; the reader's hint bit is certainly
  // clear after these.
  for (int i = 0; i < 10; ++i) domain.synchronize();
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();  // reader is now inside a section again
  std::atomic<bool> sync_returned{false};
  std::thread syncer([&] {
    CounterFlagRcu::Registration r(domain);
    domain.synchronize();
    EXPECT_TRUE(reader_done.load());
    sync_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(sync_returned.load());
  release_reader.store(true);
  syncer.join();
  reader.join();
  EXPECT_TRUE(sync_returned.load());
}

TEST(CounterFlagGp, ExpeditedWaitsForPreexistingReader) {
  CounterFlagRcu domain;
  citrus::sync::SpinBarrier barrier(2);
  std::atomic<bool> release_reader{false};
  std::atomic<bool> reader_done{false};

  std::thread reader([&] {
    CounterFlagRcu::Registration reg(domain);
    domain.read_lock();
    barrier.arrive_and_wait();
    while (!release_reader.load()) std::this_thread::yield();
    reader_done.store(true);
    domain.read_unlock();
  });

  CounterFlagRcu::Registration reg(domain);
  barrier.arrive_and_wait();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release_reader.store(true);
  });
  domain.synchronize_expedited();
  EXPECT_TRUE(reader_done.load());
  EXPECT_EQ(domain.grace_periods_expedited(), 1u);
  EXPECT_EQ(domain.grace_periods_started(), 0u);  // bypassed the engine
  releaser.join();
  reader.join();
}

// ── The grace-period-sharing torture (satellite task) ────────────────
//
// Many synchronizers, each running the classic unlink/synchronize/poison
// loop on its own buffer pair, under readers that validate every
// publisher's current buffer. A slow reader stretches each grace period,
// so concurrent synchronize calls pile onto the in-flight scan. Asserts
// both the RCU property (no poisoned buffer is ever read) and the
// engine's whole point: total scans ≪ total synchronize calls.
TEST(CounterFlagGp, SharingTorture) {
  CounterFlagRcu domain;
  constexpr int kSyncers = 8;
  constexpr int kReaders = 2;
  constexpr int kIters = 50;

  struct Buf {
    std::atomic<bool> poisoned{false};
  };
  struct Publisher {
    Buf bufs[2];
    std::atomic<Buf*> current{&bufs[0]};
  };
  std::vector<Publisher> pubs(kSyncers);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      CounterFlagRcu::Registration reg(domain);
      while (!stop.load(std::memory_order_relaxed)) {
        domain.read_lock();
        for (auto& p : pubs) {
          Buf* b = p.current.load(std::memory_order_acquire);
          if (b->poisoned.load(std::memory_order_acquire)) {
            violation.store(true);
          }
        }
        // Stretch the section so grace periods overlap and synchronizers
        // are forced to share scans.
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        domain.read_unlock();
      }
    });
  }

  std::vector<std::thread> syncers;
  for (int t = 0; t < kSyncers; ++t) {
    syncers.emplace_back([&, t] {
      CounterFlagRcu::Registration reg(domain);
      Publisher& p = pubs[static_cast<std::size_t>(t)];
      for (int i = 0; i < kIters; ++i) {
        Buf* old = p.current.load(std::memory_order_relaxed);
        Buf* fresh = old == &p.bufs[0] ? &p.bufs[1] : &p.bufs[0];
        fresh->poisoned.store(false, std::memory_order_release);
        p.current.store(fresh, std::memory_order_release);
        domain.synchronize();
        // No pre-existing reader can still hold `old`.
        old->poisoned.store(true, std::memory_order_release);
      }
    });
  }
  for (auto& th : syncers) th.join();
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_FALSE(violation.load());
  const std::uint64_t calls = kSyncers * kIters;
  const std::uint64_t started = domain.grace_periods_started();
  const std::uint64_t shared = domain.grace_periods_shared();
  EXPECT_EQ(domain.synchronize_calls(), calls);
  // Exact engine invariant: every gp-path call either led or piggybacked.
  EXPECT_EQ(started + shared, calls);
  // The point of the engine: scans ≪ calls. With sections stretched to
  // ~500us, piggybacking is overwhelming; half is a very loose bound.
  EXPECT_LE(started, calls / 2) << "started=" << started
                                << " shared=" << shared;
}

// ── Registry growth and reuse under the grouped layout ───────────────

TEST(CounterFlagGp, ManyConcurrentRegistrationsSpanGroups) {
  CounterFlagRcu domain;
  constexpr int kThreads = 20;  // > 2 groups of 8
  citrus::sync::SpinBarrier barrier(kThreads);
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      CounterFlagRcu::Registration reg(domain);
      domain.read_lock();
      domain.read_unlock();
      barrier.arrive_and_wait();  // hold all registrations live at once
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (domain.registrations() != kThreads) std::this_thread::yield();
  {
    CounterFlagRcu::Registration reg(domain);
    domain.synchronize();  // scan across multiple groups
  }
  release.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(domain.registrations(), 0u);
}

// ── Pipelined Reclaimer over the poll API ────────────────────────────

TEST(ReclaimerPoll, PipelinedReclaimFreesEverything) {
  static std::atomic<int> freed;
  freed = 0;
  struct Obj {
    ~Obj() { freed.fetch_add(1); }
  };
  CounterFlagRcu domain;
  {
    citrus::rcu::Reclaimer<CounterFlagRcu> reclaimer(domain);
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&] {
        CounterFlagRcu::Registration reg(domain);
        for (int i = 0; i < 250; ++i) {
          domain.read_lock();
          reclaimer.enqueue_delete(new Obj);
          domain.read_unlock();
        }
      });
    }
    for (auto& th : producers) th.join();
    while (reclaimer.pending() != 0) std::this_thread::yield();
    EXPECT_EQ(freed.load(), 1000);
    EXPECT_GE(reclaimer.batches(), 1u);
    EXPECT_LT(reclaimer.batches(), 1000u);  // batching amortized
  }
}

// ── Epoch domain rides the same engine ───────────────────────────────

TEST(EpochGp, CookieApiDrivesEpochGracePeriods) {
  EpochRcu domain;
  EpochRcu::Registration reg(domain);
  const auto epoch_before = domain.current_epoch();
  const GpCookie cookie = domain.start_grace_period();
  EXPECT_FALSE(domain.poll(cookie));
  domain.synchronize(cookie);
  EXPECT_TRUE(domain.poll(cookie));
  EXPECT_EQ(domain.current_epoch(), epoch_before + 1);  // one scan led
  EXPECT_EQ(domain.grace_periods_started(), 1u);
}

}  // namespace
