// Single-threaded semantics of the Citrus tree: the dictionary contract,
// the delete cases of Figure 3 (leaf / one child / two children / successor
// is the right child), tag behaviour, generic key types, structure audits.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::core::CitrusTree;
using citrus::rcu::CounterFlagRcu;

class CitrusBasic : public ::testing::Test {
 protected:
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg{domain};
  CitrusTree<long, long> tree{domain};

  void expect_ok() {
    const auto rep = tree.check_structure();
    EXPECT_TRUE(rep.ok) << rep.error;
  }
};

TEST_F(CitrusBasic, EmptyTree) {
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.contains(1));
  EXPECT_FALSE(tree.erase(1));
  EXPECT_EQ(tree.find(1), std::nullopt);
  expect_ok();
}

TEST_F(CitrusBasic, InsertFindErase) {
  EXPECT_TRUE(tree.insert(10, 100));
  EXPECT_FALSE(tree.insert(10, 999));  // duplicate insert fails...
  EXPECT_EQ(tree.find(10), 100);       // ...and does not clobber the value
  EXPECT_TRUE(tree.contains(10));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.erase(10));
  EXPECT_FALSE(tree.erase(10));
  EXPECT_FALSE(tree.contains(10));
  EXPECT_TRUE(tree.empty());
  expect_ok();
}

TEST_F(CitrusBasic, DeleteLeaf) {
  for (long k : {50, 30, 70}) tree.insert(k, k);
  EXPECT_TRUE(tree.erase(30));  // leaf
  EXPECT_FALSE(tree.contains(30));
  EXPECT_TRUE(tree.contains(50));
  EXPECT_TRUE(tree.contains(70));
  expect_ok();
}

TEST_F(CitrusBasic, DeleteNodeWithOneChild) {
  // 50 -> 30 -> 20 : 30 has a single (left) child. Figure 3 (a)-(b).
  for (long k : {50, 30, 20}) tree.insert(k, k);
  EXPECT_TRUE(tree.erase(30));
  EXPECT_TRUE(tree.contains(20));
  EXPECT_TRUE(tree.contains(50));
  EXPECT_EQ(tree.size(), 2u);
  expect_ok();
}

TEST_F(CitrusBasic, DeleteNodeWithTwoChildren) {
  // Figure 3 (c)-(e): the victim is replaced by a copy of its successor
  // and a grace period is paid before the original successor goes.
  for (long k : {50, 30, 70, 60, 80, 65}) tree.insert(k, k);
  const auto grace_before = domain.synchronize_calls();
  EXPECT_TRUE(tree.erase(50));  // successor is 60 (deep: 70 -> 60)
  EXPECT_GT(domain.synchronize_calls(), grace_before);
  EXPECT_FALSE(tree.contains(50));
  for (long k : {30, 60, 65, 70, 80}) EXPECT_TRUE(tree.contains(k));
  EXPECT_EQ(tree.size(), 5u);
  expect_ok();
  EXPECT_GE(tree.stats().two_child_erases, 1u);
}

TEST_F(CitrusBasic, DeleteWhereSuccessorIsRightChild) {
  // The paper's Line 76 case: succ == curr's right child.
  for (long k : {50, 30, 70, 80}) tree.insert(k, k);
  EXPECT_TRUE(tree.erase(50));  // successor 70 is 50's right child
  for (long k : {30, 70, 80}) EXPECT_TRUE(tree.contains(k));
  EXPECT_EQ(tree.size(), 3u);
  expect_ok();
}

TEST_F(CitrusBasic, DeleteRootRepeatedly) {
  for (long k = 0; k < 64; ++k) tree.insert((k * 37) % 64, k);
  for (int i = 0; i < 64; ++i) {
    const auto keys = tree.keys_quiescent();
    ASSERT_FALSE(keys.empty());
    EXPECT_TRUE(tree.erase(keys[keys.size() / 2]));
    expect_ok();
  }
  EXPECT_TRUE(tree.empty());
}

TEST_F(CitrusBasic, ValuesSurviveSuccessorCopy) {
  // The successor's value must ride along with the copied node.
  for (long k : {50, 30, 70, 60}) tree.insert(k, k * 1000);
  EXPECT_TRUE(tree.erase(50));
  EXPECT_EQ(tree.find(60), 60000);
  EXPECT_EQ(tree.find(70), 70000);
}

TEST_F(CitrusBasic, InOrderTraversalSorted) {
  citrus::util::Xoshiro256 rng(17);
  std::set<long> oracle;
  for (int i = 0; i < 500; ++i) {
    const long k = static_cast<long>(rng.bounded(10000));
    tree.insert(k, k);
    oracle.insert(k);
  }
  const auto keys = tree.keys_quiescent();
  EXPECT_EQ(keys.size(), oracle.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
}

TEST_F(CitrusBasic, RandomOpsAgainstOracle) {
  citrus::util::Xoshiro256 rng(4242);
  std::set<long> oracle;
  for (int i = 0; i < 30000; ++i) {
    const long k = static_cast<long>(rng.bounded(200));
    switch (rng.bounded(3)) {
      case 0:
        EXPECT_EQ(tree.insert(k, k), oracle.insert(k).second) << "key " << k;
        break;
      case 1:
        EXPECT_EQ(tree.erase(k), oracle.erase(k) > 0) << "key " << k;
        break;
      default:
        EXPECT_EQ(tree.contains(k), oracle.count(k) > 0) << "key " << k;
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
  expect_ok();
}

TEST_F(CitrusBasic, ExtremeKeysAreOrdinary) {
  // No reserved key values: the numeric extremes are usable (the paper's
  // -1/infinity dummies are node kinds here, not stolen key values).
  EXPECT_TRUE(tree.insert(std::numeric_limits<long>::min(), 1));
  EXPECT_TRUE(tree.insert(std::numeric_limits<long>::max(), 2));
  EXPECT_TRUE(tree.insert(-1, 3));
  EXPECT_TRUE(tree.contains(std::numeric_limits<long>::min()));
  EXPECT_TRUE(tree.contains(std::numeric_limits<long>::max()));
  EXPECT_TRUE(tree.erase(std::numeric_limits<long>::max()));
  expect_ok();
}

TEST_F(CitrusBasic, AscendingAndDescendingChains) {
  // Degenerate shapes (the tree is unbalanced by design).
  for (long k = 0; k < 300; ++k) ASSERT_TRUE(tree.insert(k, k));
  expect_ok();
  EXPECT_EQ(tree.check_structure().height, 301u);  // path + sentinel edge
  for (long k = 0; k < 300; ++k) ASSERT_TRUE(tree.erase(k));
  EXPECT_TRUE(tree.empty());
  for (long k = 300; k > 0; --k) ASSERT_TRUE(tree.insert(k, k));
  expect_ok();
  for (long k = 300; k > 0; --k) ASSERT_TRUE(tree.erase(k));
  expect_ok();
}

TEST(CitrusGenericKeys, StringKeys) {
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  CitrusTree<std::string, std::string> tree(domain);
  EXPECT_TRUE(tree.insert("banana", "yellow"));
  EXPECT_TRUE(tree.insert("apple", "red"));
  EXPECT_TRUE(tree.insert("cherry", "dark"));
  EXPECT_FALSE(tree.insert("apple", "green"));
  EXPECT_EQ(tree.find("apple"), "red");
  EXPECT_TRUE(tree.erase("banana"));
  EXPECT_FALSE(tree.contains("banana"));
  const auto keys = tree.keys_quiescent();
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "cherry"}));
  EXPECT_TRUE(tree.check_structure().ok);
}

TEST(CitrusGenericKeys, PairKeysOnlyNeedLess) {
  using K = std::pair<int, int>;  // operator< via std::pair
  CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  CitrusTree<K, int> tree(domain);
  EXPECT_TRUE(tree.insert({1, 2}, 12));
  EXPECT_TRUE(tree.insert({1, 1}, 11));
  EXPECT_TRUE(tree.insert({0, 9}, 9));
  EXPECT_EQ(tree.find({1, 2}), 12);
  EXPECT_TRUE(tree.erase({1, 1}));
  EXPECT_EQ(tree.size(), 2u);
}

TEST_F(CitrusBasic, StatsAccumulate) {
  for (long k : {50, 30, 70, 60, 40}) tree.insert(k, k);
  tree.erase(50);
  tree.erase(30);
  const auto stats = tree.stats();
  EXPECT_GE(stats.two_child_erases, 1u);
  // Sequentially there is no contention, so no retries.
  EXPECT_EQ(stats.insert_retries, 0u);
  EXPECT_EQ(stats.erase_retries, 0u);
}

TEST_F(CitrusBasic, GracePeriodOnlyForTwoChildDeletes) {
  tree.insert(10, 10);
  tree.insert(5, 5);
  const auto before = domain.synchronize_calls();
  EXPECT_TRUE(tree.erase(5));  // leaf: no synchronize_rcu on this path
  EXPECT_EQ(domain.synchronize_calls(), before);
}

}  // namespace
