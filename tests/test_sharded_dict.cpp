// ShardedCitrus: router distribution, single-thread parity with the
// unsharded tree, cross-shard aggregates, and multi-thread stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "adapters/dictionary.hpp"
#include "adapters/idictionary.hpp"
#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_dict.hpp"
#include "util/rng.hpp"
#include "workload/runner.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using citrus::shard::ShardedCitrus;
using citrus::shard::ShardRouter;
using Sharded = ShardedCitrus<std::int64_t, std::int64_t, CounterFlagRcu,
                              citrus::core::DefaultTraits>;

static_assert(citrus::adapters::dictionary<Sharded>);

TEST(ShardRouter, PowerOfTwoPredicate) {
  using citrus::shard::is_power_of_two;
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(6));
  EXPECT_FALSE(is_power_of_two(48));
}

TEST(ShardRouter, SingleShardRoutesEverythingToZero) {
  ShardRouter<std::int64_t> router(1);
  for (std::int64_t k : {-5, 0, 1, 1000000}) {
    EXPECT_EQ(router.shard_of(k), 0u);
  }
}

TEST(ShardRouter, StableAndInRange) {
  ShardRouter<std::int64_t> router(16);
  for (std::int64_t k = 0; k < 4096; ++k) {
    const std::size_t s = router.shard_of(k);
    EXPECT_LT(s, 16u);
    EXPECT_EQ(s, router.shard_of(k));  // pure function of the key
  }
}

// ISSUE acceptance: on a uniform 1M-key draw no shard receives more than
// 2x its fair share (the SplitMix finalizer should land far closer to
// 1.0x; 2x is the red line for adversarial clustering).
TEST(ShardRouter, UniformMillionKeysBalanced) {
  constexpr std::size_t kShards = 16;
  constexpr std::size_t kKeys = 1000000;
  ShardRouter<std::int64_t> router(kShards);
  std::vector<std::size_t> counts(kShards, 0);
  citrus::util::Xoshiro256 rng(42);
  for (std::size_t i = 0; i < kKeys; ++i) {
    ++counts[router.shard_of(static_cast<std::int64_t>(rng()))];
  }
  const std::size_t fair = kKeys / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_LT(counts[s], 2 * fair) << "shard " << s;
    EXPECT_GT(counts[s], fair / 2) << "shard " << s;
  }
}

// Sequential and strided key blocks — the clustering a raw modulo router
// would map to one or a few shards — must still spread.
TEST(ShardRouter, SequentialAndStridedKeysSpread) {
  constexpr std::size_t kShards = 8;
  ShardRouter<std::int64_t> router(kShards);
  for (std::int64_t stride : {1, 8, 4096}) {
    std::vector<std::size_t> counts(kShards, 0);
    for (std::int64_t i = 0; i < 80000; ++i) {
      ++counts[router.shard_of(i * stride)];
    }
    const std::size_t fair = 80000 / kShards;
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_LT(counts[s], 2 * fair) << "stride " << stride << " shard " << s;
      EXPECT_GT(counts[s], fair / 2) << "stride " << stride << " shard " << s;
    }
  }
}

TEST(ShardedDict, SingleThreadParityWithUnshardedCitrus) {
  CounterFlagRcu domain;
  citrus::core::CitrusTree<std::int64_t, std::int64_t> reference(domain);
  Sharded sharded(8);
  CounterFlagRcu::Registration reg(domain);
  Sharded::Registration sreg(sharded);

  citrus::util::Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<std::int64_t>(rng.bounded(512));
    switch (rng.bounded(4)) {
      case 0:
        EXPECT_EQ(sharded.insert(key, key * 2), reference.insert(key, key * 2));
        break;
      case 1:
        EXPECT_EQ(sharded.erase(key), reference.erase(key));
        break;
      case 2:
        EXPECT_EQ(sharded.contains(key), reference.contains(key));
        break;
      default:
        EXPECT_EQ(sharded.find(key), reference.find(key));
    }
  }
  EXPECT_EQ(sharded.size(), reference.size());
  EXPECT_EQ(sharded.keys_quiescent(), reference.keys_quiescent());
  EXPECT_TRUE(sharded.check_structure().ok);
}

TEST(ShardedDict, AssignAndInsertOrAssignRouteCorrectly) {
  Sharded dict(4);
  Sharded::Registration reg(dict);
  EXPECT_FALSE(dict.assign(10, 1));  // absent
  EXPECT_TRUE(dict.insert(10, 1));
  EXPECT_TRUE(dict.assign(10, 2));
  EXPECT_EQ(dict.find(10), 2);
  EXPECT_TRUE(dict.insert_or_assign(11, 3));   // inserted
  EXPECT_FALSE(dict.insert_or_assign(11, 4));  // overwritten
  EXPECT_EQ(dict.find(11), 4);
}

TEST(ShardedDict, AggregateSizeAndStructureAfterMixedWorkload) {
  Sharded dict(16);
  Sharded::Registration reg(dict);
  std::set<std::int64_t> model;
  citrus::util::Xoshiro256 rng(99);
  for (int i = 0; i < 50000; ++i) {
    const auto key = static_cast<std::int64_t>(rng.bounded(4096));
    if (rng.bounded(2) == 0) {
      EXPECT_EQ(dict.insert(key, key), model.insert(key).second);
    } else {
      EXPECT_EQ(dict.erase(key), model.erase(key) > 0);
    }
  }
  EXPECT_EQ(dict.size(), model.size());
  const auto rep = dict.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, model.size());
  const std::vector<std::int64_t> expected(model.begin(), model.end());
  EXPECT_EQ(dict.keys_quiescent(), expected);
}

TEST(ShardedDict, MultiThreadStressAcrossShards) {
  Sharded dict(8);
  constexpr int kThreads = 4;
  constexpr int kOps = 40000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&dict, t] {
      Sharded::Registration reg(dict);
      citrus::util::Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOps; ++i) {
        const auto key = static_cast<std::int64_t>(rng.bounded(1024));
        switch (rng.bounded(3)) {
          case 0:
            dict.insert(key, key);
            break;
          case 1:
            dict.erase(key);
            break;
          default:
            dict.contains(key);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  const auto rep = dict.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, dict.size());
  // Reclamation ran (DefaultTraits) and grace periods stayed shard-local
  // in aggregate terms: some shards drove synchronize_rcu.
  EXPECT_GT(dict.synchronize_calls(), 0u);
}

TEST(ShardedDict, ShardsAreIndependentDomains) {
  Sharded dict(4);
  Sharded::Registration reg(dict);
  // Insert keys and force two-child deletes until at least one shard has
  // driven a grace period; other shards' counters must be untouched by it.
  std::uint64_t before_total = dict.synchronize_calls();
  for (std::int64_t k = 0; k < 2000; ++k) dict.insert(k, k);
  for (std::int64_t k = 0; k < 2000; k += 2) dict.erase(k);
  EXPECT_GT(dict.synchronize_calls(), before_total);
  // Per-shard sums match the aggregate.
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < dict.shard_count(); ++i) {
    sum += dict.shard_synchronize_calls(i);
  }
  EXPECT_EQ(sum, dict.synchronize_calls());
}

TEST(ShardedDict, WorksThroughWorkloadRunner) {
  auto dict = citrus::adapters::make_dictionary("citrus-shard16");
  citrus::workload::WorkloadConfig config;
  config.key_range = 2048;
  config.threads = 4;
  config.seconds = 0.2;
  config.contains_fraction = 0.5;
  const auto r = citrus::workload::run_workload(*dict, config);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.grace_periods, 0u);  // two-child deletes across shards
  const auto rep = dict->check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.node_count, r.final_size);
}

}  // namespace
