// Concurrent behaviour of the Citrus tree: invariant preservation under
// contention, per-thread key ownership (exact-state verification), all
// three RCU domains, update-heavy two-child-delete pressure, and the
// wait-free-read property (readers keep completing while updaters hold
// locks across grace periods).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"
#include "util/rng.hpp"

namespace {

using citrus::core::CitrusTree;

template <typename Rcu>
class CitrusConcurrent : public ::testing::Test {};

using Domains =
    ::testing::Types<citrus::rcu::CounterFlagRcu, citrus::rcu::GlobalLockRcu,
                     citrus::rcu::EpochRcu, citrus::rcu::QsbrRcu>;
TYPED_TEST_SUITE(CitrusConcurrent, Domains);

TYPED_TEST(CitrusConcurrent, MixedStressKeepsStructure) {
  TypeParam domain;
  CitrusTree<long, long, TypeParam> tree(domain);
  constexpr int kThreads = 6;
  constexpr int kOps = 15000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename TypeParam::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 1);
      for (int i = 0; i < kOps; ++i) {
        const long k = static_cast<long>(rng.bounded(512));
        const std::uint64_t op = rng.bounded(100);
        if (op < 50) {
          tree.contains(k);
        } else if (op < 75) {
          tree.insert(k, k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TYPED_TEST(CitrusConcurrent, DisjointKeyOwnershipIsExact) {
  // Each thread owns a key stripe nobody else touches; its local
  // bookkeeping must match the final tree exactly. Catches lost updates
  // and phantom keys that a pure invariant check can miss.
  TypeParam domain;
  CitrusTree<long, long, TypeParam> tree(domain);
  constexpr int kThreads = 5;
  constexpr long kStripe = 1000;
  std::vector<std::set<long>> owned(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename TypeParam::Registration reg(domain);
      citrus::util::Xoshiro256 rng(100 + t);
      auto& mine = owned[t];
      for (int i = 0; i < 20000; ++i) {
        const long k = t * kStripe + static_cast<long>(rng.bounded(kStripe));
        if (rng.bounded(2) == 0) {
          EXPECT_EQ(tree.insert(k, k), mine.insert(k).second);
        } else {
          EXPECT_EQ(tree.erase(k), mine.erase(k) > 0);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::size_t expected = 0;
  for (const auto& mine : owned) expected += mine.size();
  EXPECT_EQ(tree.size(), expected);
  for (int t = 0; t < kThreads; ++t) {
    citrus::rcu::CounterFlagRcu* unused = nullptr;
    (void)unused;
    typename TypeParam::Registration reg(domain);
    for (long k = t * kStripe; k < (t + 1) * kStripe; ++k) {
      ASSERT_EQ(tree.contains(k), owned[t].count(k) > 0) << "key " << k;
    }
  }
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TYPED_TEST(CitrusConcurrent, UpdateOnlyTwoChildPressure) {
  // Small key range + no contains: maximizes two-child deletes and
  // therefore synchronize_rcu traffic and validation retries.
  TypeParam domain;
  CitrusTree<long, long, TypeParam> tree(domain);
  {
    typename TypeParam::Registration reg(domain);
    for (long k = 0; k < 64; k += 2) tree.insert(k, k);
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename TypeParam::Registration reg(domain);
      citrus::util::Xoshiro256 rng(7 * t + 3);
      for (int i = 0; i < 10000; ++i) {
        const long k = static_cast<long>(rng.bounded(64));
        if (rng.bounded(2) == 0) {
          tree.insert(k, k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(domain.synchronize_calls(), 0u);
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TYPED_TEST(CitrusConcurrent, ReadersProgressDuringGracePeriods) {
  // Wait-freedom of contains, observable form: readers complete a healthy
  // number of operations while updaters continuously hold node locks
  // across synchronize_rcu in two-child deletes.
  TypeParam domain;
  CitrusTree<long, long, TypeParam> tree(domain);
  {
    typename TypeParam::Registration reg(domain);
    for (long k = 0; k < 128; ++k) tree.insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    typename TypeParam::Registration reg(domain);
    citrus::util::Xoshiro256 rng(1);
    while (!stop.load(std::memory_order_relaxed)) {
      tree.contains(static_cast<long>(rng.bounded(128)));
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread updater([&] {
    typename TypeParam::Registration reg(domain);
    citrus::util::Xoshiro256 rng(2);
    // Don't start the clock until the reader is actually running, or an
    // oversubscribed scheduler can let the updater finish before the
    // reader's thread ever gets a slice.
    while (reads.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 3000; ++i) {
      const long k = static_cast<long>(rng.bounded(128));
      tree.erase(k);
      tree.insert(k, k);
    }
    stop.store(true);
  });
  reader.join();
  updater.join();
  EXPECT_GT(reads.load(), 1000u);
  const auto rep = tree.check_structure();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(CitrusConcurrentMisc, FindReturnsConsistentValues) {
  // Values are immutable per key-instance; a reader must never see a
  // value that does not match the key's stamp, even across successor
  // copies.
  citrus::rcu::CounterFlagRcu domain;
  CitrusTree<long, long> tree(domain);
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      citrus::rcu::CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t + 5);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = static_cast<long>(rng.bounded(100));
        tree.insert(k, k * 7);
        tree.erase(static_cast<long>(rng.bounded(100)));
      }
    });
  }
  threads.emplace_back([&] {
    citrus::rcu::CounterFlagRcu::Registration reg(domain);
    citrus::util::Xoshiro256 rng(77);
    for (int i = 0; i < 60000; ++i) {
      const long k = static_cast<long>(rng.bounded(100));
      const auto v = tree.find(k);
      if (v.has_value() && *v != k * 7) bad.store(true);
    }
    stop.store(true);
  });
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
}

TEST(CitrusConcurrentMisc, SharedDomainAcrossTrees) {
  // One RCU domain serving several structures, kernel-style.
  citrus::rcu::CounterFlagRcu domain;
  CitrusTree<long, long> a(domain);
  CitrusTree<long, long> b(domain);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      citrus::rcu::CounterFlagRcu::Registration reg(domain);
      citrus::util::Xoshiro256 rng(t);
      for (int i = 0; i < 8000; ++i) {
        const long k = static_cast<long>(rng.bounded(128));
        auto& tree = rng.bounded(2) == 0 ? a : b;
        switch (rng.bounded(3)) {
          case 0:
            tree.insert(k, k);
            break;
          case 1:
            tree.erase(k);
            break;
          default:
            tree.contains(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(a.check_structure().ok);
  EXPECT_TRUE(b.check_structure().ok);
}

}  // namespace
