// MICRO2: single-threaded per-operation latency of every structure
// (contains hit/miss, insert+erase round-trip) at two tree sizes, plus the
// sequential BST as the "what concurrency costs" floor.
#include <benchmark/benchmark.h>

#include <memory>

#include "adapters/idictionary.hpp"
#include "baselines/seq_bst.hpp"
#include "util/rng.hpp"

namespace {

using citrus::adapters::make_dictionary;

void fill(citrus::adapters::IDictionary& dict, std::int64_t range) {
  const auto scope = dict.enter_thread();
  citrus::util::Xoshiro256 rng(1);
  std::int64_t inserted = 0;
  while (inserted < range / 2) {
    if (dict.insert(static_cast<std::int64_t>(rng.bounded(
                        static_cast<std::uint64_t>(range))),
                    1)) {
      ++inserted;
    }
  }
}

void BM_Contains(benchmark::State& state, const char* name) {
  const std::int64_t range = state.range(0);
  auto dict = make_dictionary(name);
  fill(*dict, range);
  const auto scope = dict->enter_thread();
  citrus::util::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict->contains(static_cast<std::int64_t>(
        rng.bounded(static_cast<std::uint64_t>(range)))));
  }
}

void BM_InsertErase(benchmark::State& state, const char* name) {
  const std::int64_t range = state.range(0);
  auto dict = make_dictionary(name);
  fill(*dict, range);
  const auto scope = dict->enter_thread();
  citrus::util::Xoshiro256 rng(3);
  for (auto _ : state) {
    const auto k = static_cast<std::int64_t>(
        rng.bounded(static_cast<std::uint64_t>(range)));
    if (!dict->insert(k, k)) dict->erase(k);
  }
}

void BM_SeqBstContains(benchmark::State& state) {
  const std::int64_t range = state.range(0);
  citrus::baselines::SeqBst<std::int64_t, std::int64_t> tree;
  citrus::util::Xoshiro256 rng(1);
  std::int64_t inserted = 0;
  while (inserted < range / 2) {
    if (tree.insert(static_cast<std::int64_t>(
                        rng.bounded(static_cast<std::uint64_t>(range))),
                    1)) {
      ++inserted;
    }
  }
  citrus::util::Xoshiro256 rng2(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.contains(static_cast<std::int64_t>(
        rng2.bounded(static_cast<std::uint64_t>(range)))));
  }
}

}  // namespace

#define TREE_BENCH(name)                                              \
  BENCHMARK_CAPTURE(BM_Contains, name, #name)                        \
      ->Arg(1 << 14)                                                  \
      ->Arg(1 << 18);                                                 \
  BENCHMARK_CAPTURE(BM_InsertErase, name, #name)->Arg(1 << 14)->Arg(1 << 18)

TREE_BENCH(citrus);
TREE_BENCH(avl);
TREE_BENCH(skiplist);
TREE_BENCH(bonsai);
TREE_BENCH(rbtree);
TREE_BENCH(lockfree);
BENCHMARK_CAPTURE(BM_Contains, rcu_hash, "rcu-hash")->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_InsertErase, rcu_hash, "rcu-hash")->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_Contains, citrus_shard16, "citrus-shard16")->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_InsertErase, citrus_shard16, "citrus-shard16")->Arg(1 << 14)->Arg(1 << 18);


BENCHMARK(BM_SeqBstContains)->Arg(1 << 14)->Arg(1 << 18);
