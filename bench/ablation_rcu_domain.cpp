// Ablation AB1 (ours): the Citrus tree over each of the three RCU domains
// (counter+flag, stock global-lock, epoch-based), under the update-heavy
// mix where the grace-period mechanism dominates. Separates the
// contribution of the paper's *tree* from the contribution of its *RCU
// implementation*, and reports the grace-period counts per run.
#include <iostream>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16});
  const double seconds = opts.get_double("seconds", 0.3);
  const std::string csv = opts.get("csv", "");

  workload::WorkloadConfig config;
  config.key_range = opts.get_int("range", 200000);
  config.contains_fraction = opts.get_double("contains", 0.5);
  config.seconds = seconds;

  std::vector<workload::SeriesPoint> points;
  // citrus-cop rides along: same domain (counter+flag), different update
  // protocol — separates the grace-period cost from the lock-hold cost.
  for (const char* algorithm :
       {"citrus", "citrus-cop", "citrus-std-rcu", "citrus-epoch",
        "citrus-qsbr"}) {
    for (const auto t : threads) {
      config.threads = static_cast<int>(t);
      auto dict = adapters::make_dictionary(algorithm);
      const auto result = workload::run_workload(*dict, config);
      util::Summary s;
      s.count = 1;
      s.mean = s.min = s.max = s.median = result.throughput;
      points.push_back({algorithm, config.threads, s});
      std::cout << "ablation-rcu " << algorithm << " threads=" << t << " -> "
                << workload::format_ops(result.throughput) << " ops/s, "
                << result.grace_periods << " grace periods" << std::endl;
    }
  }
  workload::print_throughput_table(
      std::cout, "Ablation: Citrus across RCU domains (50% contains)",
      points);
  workload::append_csv(csv, "ablation-rcu", points);
  return 0;
}
