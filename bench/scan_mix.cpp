// Scan-mix sweep (harness extension; the paper's workloads are point-ops
// only): throughput under a mix that carves a scan fraction out of the
// update share, swept over scan-fraction x scan-width x threads.
//
// Series are the registry's scan-capable dictionaries (traits ceiling
// above kWeak: Citrus' validated chunked traversal, the sharded merge
// scan, Bonsai's snapshot) plus "skiplist" as the documented weak
// succ-chain fallback for contrast. The shape to look for: Citrus scan
// cost grows with width but stays flat across threads (chunked scans
// never stall grace periods), while the weak fallback pays one full
// point-lookup per key scanned.
//
// Defaults are sized for a quick run; a fuller sweep:
//   ./scan_mix --seconds=1 --repeats=3 --threads=1,2,4,8,16
//              --widths=100,1000,10000 --scan-pcts=5,20
// Pass --json=BENCH_scan_scaling.json for the machine-readable records
// archived by the CI bench-smoke lane.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace {

struct ScanPoint {
  std::string algorithm;
  int threads = 0;
  int scan_pct = 0;
  std::int64_t scan_width = 0;
  citrus::util::Summary throughput;  // total ops/sec over repeats
  double scans_per_sec = 0.0;
  double keys_per_scan = 0.0;
  double retries_per_scan = 0.0;  // 0 on stats-free (BenchTraits) builds
};

// {"figure":"scan_mix","points":[{...},...]} — same field names as the
// CSV columns so external tooling can consume either.
void write_json(const std::string& path, const std::vector<ScanPoint>& points) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "scan_mix: cannot open --json path " << path << "\n";
    return;
  }
  out << "{\"figure\":\"scan_mix\",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    if (i != 0) out << ",";
    out << "{\"series\":\"" << p.algorithm << "\",\"threads\":" << p.threads
        << ",\"scan_pct\":" << p.scan_pct
        << ",\"scan_width\":" << p.scan_width
        << ",\"mean_ops\":" << p.throughput.mean
        << ",\"stddev_ops\":" << p.throughput.stddev
        << ",\"repeats\":" << p.throughput.count
        << ",\"scans_per_sec\":" << p.scans_per_sec
        << ",\"keys_per_scan\":" << p.keys_per_scan
        << ",\"retries_per_scan\":" << p.retries_per_scan << "}";
  }
  out << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8});
  const auto widths = opts.get_int_list("widths", {100, 1000});
  const auto scan_pcts = opts.get_int_list("scan-pcts", {10});
  const double seconds = opts.get_double("seconds", 0.3);
  const int repeats = static_cast<int>(opts.get_int("repeats", 1));
  const std::string csv = opts.get("csv", "");
  const std::string json = opts.get("json", "");

  workload::WorkloadConfig config;
  config.key_range = opts.get_int("range", 200000);
  config.contains_fraction = opts.get_double("contains", 0.5);
  config.seconds = seconds;

  // Scan-capable series from registry introspection, weak contrast last.
  std::vector<std::string> algorithms;
  for (const auto& info : adapters::available_dictionaries()) {
    if (info.comparison &&
        info.traits.scan_consistency != adapters::ScanConsistency::kWeak) {
      algorithms.push_back(info.name);
    }
  }
  algorithms.push_back("skiplist");

  std::vector<ScanPoint> points;
  std::vector<workload::SeriesPoint> table;
  for (const auto pct : scan_pcts) {
    for (const auto width : widths) {
      config.scan_fraction = static_cast<double>(pct) / 100.0;
      config.scan_width = width;
      for (const auto& algorithm : algorithms) {
        for (const auto t : threads) {
          config.threads = static_cast<int>(t);
          adapters::Options dict_opts;
          dict_opts.key_range_hint = config.key_range;
          std::vector<double> ops;
          std::uint64_t scans = 0, keys = 0, retries = 0;
          double run_secs = 0.0;
          for (int rep = 0; rep < repeats; ++rep) {
            auto dict = adapters::make_dictionary(algorithm, dict_opts);
            workload::WorkloadConfig c = config;
            c.seed = config.seed + static_cast<std::uint64_t>(rep) * 7919;
            const auto r = workload::run_workload(*dict, c);
            ops.push_back(r.throughput);
            scans += r.scan_ops;
            keys += r.scan_keys;
            retries += r.scan_retries;
            run_secs += r.seconds;
          }
          ScanPoint p;
          p.algorithm = algorithm;
          p.threads = config.threads;
          p.scan_pct = static_cast<int>(pct);
          p.scan_width = width;
          p.throughput = util::summarize(std::move(ops));
          p.scans_per_sec =
              run_secs > 0.0 ? static_cast<double>(scans) / run_secs : 0.0;
          p.keys_per_scan =
              scans > 0 ? static_cast<double>(keys) / static_cast<double>(scans)
                        : 0.0;
          p.retries_per_scan =
              scans > 0
                  ? static_cast<double>(retries) / static_cast<double>(scans)
                  : 0.0;
          points.push_back(p);
          table.push_back({algorithm + "/s" + std::to_string(pct) + "/w" +
                               std::to_string(width),
                           config.threads, p.throughput});
          std::cout << "scan_mix " << algorithm << " scan=" << pct
                    << "% width=" << width << " threads=" << t << " -> "
                    << workload::format_ops(p.throughput.mean)
                    << " ops/s (" << workload::format_ops(p.scans_per_sec)
                    << " scans/s, " << p.keys_per_scan << " keys/scan)"
                    << std::endl;
        }
      }
    }
  }
  workload::print_throughput_table(
      std::cout, "Scan mix: total ops/s by series (algorithm/scan%/width)",
      table);
  workload::append_csv(csv, "scan_mix", table);
  write_json(json, points);
  return 0;
}
