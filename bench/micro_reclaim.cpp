// MICRO3: reclamation strategies in isolation.
//   * synchronous retire (DomainBase::retire): the retiring thread pays
//     one grace period per batch — the simple scheme whose latency lands
//     on the update path;
//   * asynchronous Reclaimer (call_rcu-style worker): enqueue cost only;
//     grace periods happen off the critical path;
//   * immediate delete (no safety) as the floor.
// Also measures how the retire batch size amortizes grace periods.
#include <benchmark/benchmark.h>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/reclaimer.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;

struct Payload {
  std::uint64_t data[8];
};

void BM_ImmediateDelete(benchmark::State& state) {
  for (auto _ : state) {
    auto* p = new Payload();
    benchmark::DoNotOptimize(p);
    delete p;
  }
}

void BM_SyncRetire(benchmark::State& state) {
  static CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  domain.set_retire_batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto* p = new Payload();
    benchmark::DoNotOptimize(p);
    citrus::rcu::retire_delete(domain, p);
  }
  domain.flush_retired();
  state.SetLabel("batch=" + std::to_string(state.range(0)));
}

void BM_AsyncReclaimer(benchmark::State& state) {
  static CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::rcu::Reclaimer<CounterFlagRcu> reclaimer(domain);
  for (auto _ : state) {
    auto* p = new Payload();
    benchmark::DoNotOptimize(p);
    reclaimer.enqueue_delete(p);
  }
}

// Bounded-backlog backpressure: same enqueue loop, but with a high
// watermark. When the producer outruns the worker, enqueues over the mark
// switch to synchronous reclaim — the reclaim_backpressure counter says
// how often, i.e. how much of the async win the bound gives back. Arg is
// the watermark (0 = unbounded, the BM_AsyncReclaimer baseline).
void BM_AsyncReclaimerBackpressure(benchmark::State& state) {
  static CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  citrus::rcu::Reclaimer<CounterFlagRcu> reclaimer(domain);
  reclaimer.set_backpressure(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto* p = new Payload();
    benchmark::DoNotOptimize(p);
    reclaimer.enqueue_delete(p);
  }
  state.counters["reclaim_backpressure"] =
      static_cast<double>(reclaimer.backpressure());
  state.counters["pending_at_stop"] =
      static_cast<double>(reclaimer.pending());
  state.SetLabel("watermark=" + std::to_string(state.range(0)));
}

// Grace-period amortization: how many synchronize calls a fixed number of
// retires costs at each batch size.
void BM_GracePeriodsPerThousandRetires(benchmark::State& state) {
  for (auto _ : state) {
    CounterFlagRcu domain;
    CounterFlagRcu::Registration reg(domain);
    domain.set_retire_batch(static_cast<std::size_t>(state.range(0)));
    for (int i = 0; i < 1000; ++i) {
      citrus::rcu::retire_delete(domain, new Payload());
    }
    domain.flush_retired();
    state.counters["grace_periods"] =
        static_cast<double>(domain.synchronize_calls());
  }
}

}  // namespace

BENCHMARK(BM_ImmediateDelete);
BENCHMARK(BM_SyncRetire)->Arg(1)->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK(BM_AsyncReclaimer);
BENCHMARK(BM_AsyncReclaimerBackpressure)->Arg(256)->Arg(4096);
BENCHMARK(BM_GracePeriodsPerThousandRetires)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);
