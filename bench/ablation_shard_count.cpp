// Ablation AB3 (ours): throughput vs shard count for the sharded Citrus
// dictionary, under the update-heavy mix where grace periods and node-lock
// contention dominate. Single-shard "citrus" is the baseline series; the
// shard variants add independent RCU domains, so a two-child delete's
// synchronize_rcu waits only for readers inside its own shard.
//
// Alongside throughput, the per-series stats line reports aggregate grace
// periods and the router's size-imbalance factor (max shard size / fair
// share — should stay near 1.0 for uniform keys); --breakdown=1 prints the
// full per-shard table of the last run of each series.
#include <iostream>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16});
  const double seconds = opts.get_double("seconds", 0.3);
  const std::string csv = opts.get("csv", "");
  const bool breakdown = opts.get_bool("breakdown", false);

  workload::WorkloadConfig config;
  config.key_range = opts.get_int("range", 200000);
  config.contains_fraction = opts.get_double("contains", 0.5);
  config.seconds = seconds;
  config.zipf_theta = opts.get_double("zipf", 0.0);

  std::vector<workload::SeriesPoint> points;
  for (const char* algorithm :
       {"citrus", "citrus-shard4", "citrus-shard16", "citrus-shard64"}) {
    for (const auto t : threads) {
      config.threads = static_cast<int>(t);
      adapters::Options dict_opts;
      dict_opts.key_range_hint = config.key_range;
      auto dict = adapters::make_dictionary(algorithm, dict_opts);
      const auto result = workload::run_workload(*dict, config);
      util::Summary s;
      s.count = 1;
      s.mean = s.min = s.max = s.median = result.throughput;
      points.push_back({algorithm, config.threads, s});
      const auto stats = dict->stats();
      std::cout << "ablation-shard " << algorithm << " threads=" << t
                << " -> " << workload::format_ops(result.throughput)
                << " ops/s, " << workload::format_stats(stats) << std::endl;
      if (breakdown && t == threads.back()) {
        workload::print_shard_breakdown(std::cout, stats);
      }
    }
  }
  workload::print_throughput_table(
      std::cout,
      "Ablation: Citrus shard count (" + config.mix_label() + ", range [0," +
          std::to_string(config.key_range) + "])",
      points);
  workload::append_csv(csv, "ablation-shard", points);
  return 0;
}
