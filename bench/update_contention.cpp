// A/B update-contention bench: the paper's lock+validate updater
// ("citrus") against the optimistic copy-validate-publish updater
// ("citrus-cop", DESIGN.md §8) across {threads} x {update fraction} x
// {key range}. Small key ranges concentrate updaters on few nodes — the
// regime where cop's hoisted allocation and single-CAS publish (or HTM
// commit) should pay; large ranges check it does not regress the
// uncontended case.
//
// Two passes per cell:
//   * throughput — stats-off traits (the timed A/B comparison);
//   * accounting — a short stats-on run whose cop_* counters demonstrate
//     the commit/abort/fallback bookkeeping (ISSUE acceptance: on
//     hardware without HTM every commit arrives via the software
//     fallback, so cop_fallbacks ≈ successful updates and
//     cop_aborts_htm = 0 unless fault::Site::kTxAbort is armed).
//
// Defaults are sized for a quick run; a contention study looks like
//   ./update_contention --seconds=2 --repeats=3 --threads=1,4,16,64 \
//       --updates=50,100 --ranges=512,200000
// Pass --json=BENCH_update_contention.json for the machine-readable
// records consumed by the CI bench-smoke lane.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace {

using namespace citrus;

struct CellPoint {
  std::string series;
  int threads = 0;
  int update_pct = 0;
  std::int64_t key_range = 0;
  util::Summary throughput;
  adapters::StatsSnapshot counters;  // from the stats-on accounting run
  std::uint64_t retries = 0;         // insert_retries + erase_retries
};

void write_json(const std::string& path, const std::vector<CellPoint>& points,
                double ratio_small_range) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "update_contention: cannot open --json path " << path
              << "\n";
    return;
  }
  out << "{\"figure\":\"update_contention\",\"cop_over_lock_small_range\":"
      << ratio_small_range << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    if (i != 0) out << ",";
    out << "{\"series\":\"" << p.series << "\",\"threads\":" << p.threads
        << ",\"update_pct\":" << p.update_pct
        << ",\"key_range\":" << p.key_range
        << ",\"mean_ops\":" << p.throughput.mean
        << ",\"stddev_ops\":" << p.throughput.stddev
        << ",\"repeats\":" << p.throughput.count
        << ",\"update_retries\":" << p.retries
        << ",\"lock_timeouts\":" << p.counters.lock_timeouts
        << ",\"cop_commits\":" << p.counters.cop_commits
        << ",\"cop_aborts_htm\":" << p.counters.cop_aborts_htm
        << ",\"cop_fallbacks\":" << p.counters.cop_fallbacks
        << ",\"cop_validation_failures\":"
        << p.counters.cop_validation_failures << "}";
  }
  out << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16});
  const auto updates = opts.get_int_list("updates", {20, 50, 100});
  const auto ranges = opts.get_int_list("ranges", {512, 200000});
  const double seconds = opts.get_double("seconds", 0.3);
  const int repeats = static_cast<int>(opts.get_int("repeats", 1));
  const std::string csv = opts.get("csv", "");
  const std::string json = opts.get("json", "");
  // The accounting pass is fixed-cost; keep it short.
  const double stats_seconds = opts.get_double("stats-seconds", 0.1);

  const char* algorithms[] = {"citrus", "citrus-cop"};

  std::vector<CellPoint> points;
  for (const auto range : ranges) {
    for (const auto upd : updates) {
      workload::WorkloadConfig config;
      config.key_range = range;
      config.contains_fraction = 1.0 - static_cast<double>(upd) / 100.0;
      config.seconds = seconds;

      std::vector<workload::SeriesPoint> table;
      for (const char* algorithm : algorithms) {
        for (const auto t : threads) {
          config.threads = static_cast<int>(t);
          CellPoint p;
          p.series = algorithm;
          p.threads = config.threads;
          p.update_pct = static_cast<int>(upd);
          p.key_range = range;
          p.throughput = workload::run_repeated(algorithm, config, repeats);

          // Accounting pass: reclaim=true selects the stats-on traits
          // tier, so the cop_* counters (and retry counts) are live.
          adapters::Options stats_opts;
          stats_opts.reclaim = true;
          stats_opts.key_range_hint = range;
          auto dict = adapters::make_dictionary(algorithm, stats_opts);
          workload::WorkloadConfig stats_config = config;
          stats_config.seconds = stats_seconds;
          (void)workload::run_workload(*dict, stats_config);
          p.counters = dict->stats();
          p.retries =
              p.counters.insert_retries + p.counters.erase_retries;

          table.push_back({p.series, p.threads, p.throughput});
          std::cout << "update-contention range=" << range << " updates="
                    << upd << "% " << algorithm << " threads=" << t
                    << " -> " << workload::format_ops(p.throughput.mean)
                    << " ops/s (retries=" << p.retries
                    << " cop_commits=" << p.counters.cop_commits
                    << " cop_aborts_htm=" << p.counters.cop_aborts_htm
                    << " cop_fallbacks=" << p.counters.cop_fallbacks
                    << " cop_validation_failures="
                    << p.counters.cop_validation_failures << ")"
                    << std::endl;
          points.push_back(std::move(p));
        }
      }
      workload::print_throughput_table(
          std::cout,
          "Update contention: " + std::to_string(upd) + "% updates, key "
          "range [0," + std::to_string(range) + "]",
          table);
      workload::append_csv(csv,
                           "update-contention-range" + std::to_string(range) +
                               "-upd" + std::to_string(upd),
                           table);
    }
  }

  // Headline ratio: cop vs lock+validate at the max swept thread count,
  // highest update fraction, smallest key range — the cell the ISSUE's
  // acceptance bar names.
  double ratio = 0.0;
  {
    std::int64_t small = ranges.front();
    for (const auto r : ranges) small = std::min(small, r);
    std::int64_t upd_max = updates.front();
    for (const auto u : updates) upd_max = std::max(upd_max, u);
    std::int64_t t_max = threads.front();
    for (const auto t : threads) t_max = std::max(t_max, t);
    double lock_ops = 0.0, cop_ops = 0.0;
    for (const auto& p : points) {
      if (p.key_range != small || p.update_pct != upd_max ||
          p.threads != t_max) {
        continue;
      }
      if (p.series == "citrus") lock_ops = p.throughput.mean;
      if (p.series == "citrus-cop") cop_ops = p.throughput.mean;
    }
    if (lock_ops > 0.0) ratio = cop_ops / lock_ops;
    std::cout << "\nheadline (threads=" << t_max << ", " << upd_max
              << "% updates, range [0," << small << "]): citrus-cop/citrus = "
              << ratio << "x" << std::endl;
  }
  write_json(json, points, ratio);
  return 0;
}
