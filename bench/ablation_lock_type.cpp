// Ablation AB2 (ours): Citrus node-lock implementation — test-and-test-
// and-set spinlock (default) vs std::mutex (closest to the paper's
// pthread mutexes). Node locks are held for a handful of instructions on
// the insert / one-child-delete paths but across a full grace period on
// the two-child-delete path; this ablation shows how much the lock choice
// matters under each regime.
#include <iostream>

#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16});
  const double seconds = opts.get_double("seconds", 0.3);
  const std::string csv = opts.get("csv", "");

  workload::WorkloadConfig config;
  config.key_range = opts.get_int("range", 200000);
  config.seconds = seconds;

  for (const double mix : {0.9, 0.5}) {
    config.contains_fraction = mix;
    std::vector<workload::SeriesPoint> points;
    // citrus-cop holds its node locks for strictly shorter windows (the
    // copy is built before acquisition), so it bounds how much the lock
    // choice can matter.
    for (const char* algorithm : {"citrus", "citrus-mutex", "citrus-cop"}) {
      for (const auto t : threads) {
        config.threads = static_cast<int>(t);
        const auto summary = workload::run_repeated(algorithm, config, 1);
        points.push_back({algorithm, config.threads, summary});
        std::cout << "ablation-lock mix=" << config.mix_label() << " "
                  << algorithm << " threads=" << t << " -> "
                  << workload::format_ops(summary.mean) << " ops/s"
                  << std::endl;
      }
    }
    workload::print_throughput_table(
        std::cout, "Ablation: node-lock type, " + config.mix_label(), points);
    workload::append_csv(csv, "ablation-lock-" + config.mix_label(), points);
  }
  return 0;
}
