// Skew-depth bench (harness extension; motivates the background subtree
// maintainer of src/maint/citrus_cf.hpp): adversarial insertion orders
// that degenerate a plain external BST, then a pure-lookup measurement of
// what the resulting depth costs — and what the maintainer buys back.
//
// Orders:
//   seq    — ascending keys: the worst case, a right spine of depth n-1.
//   zipf   — Zipf(s=1) draws over the key space until the set fills, the
//            stragglers appended ascending: partially sorted, long runs.
//   random — uniformly shuffled: the ~log n baseline the others contrast.
//
// Series are "citrus" (no maintainer: depth is whatever the order built)
// against the citrus-cf family. For citrus-cf the bench waits for the
// maintainer to settle (rebuild counter stable and the depth bound met or
// the settle budget spent) before timing, so the measured throughput is
// the steady state the maintainer converges to, and the per-point depth
// fields record both the as-built and the settled shape.
//
// The AB5 acceptance shape (EXPERIMENTS.md): at --n=100000 seq,
// citrus-cf settles to max_depth <= 4*log2(n) and its lookup throughput
// is >= 3x plain citrus (in practice orders of magnitude: the spine walk
// is O(n)).
//
// Quick run: ./skew_depth
// Fuller:    ./skew_depth --n=100000 --seconds=1 --repeats=3 \
//                         --threads=1,4 --orders=seq,zipf,random
// Pass --json=BENCH_skew_depth.json for the machine-readable records
// archived by the CI bench-smoke lane.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/report.hpp"

namespace {

struct DepthPoint {
  std::string algorithm;
  std::string order;
  int threads = 0;
  std::int64_t n = 0;
  citrus::util::Summary lookups;   // lookups/sec over repeats
  std::size_t max_depth_built = 0;  // after the last insert
  std::size_t max_depth = 0;        // after settling (== built for citrus)
  double avg_depth = 0.0;
  std::uint64_t rebuilds = 0;
  double settle_ms = 0.0;
};

// {"figure":"skew_depth","points":[{...},...]}, field names matching the
// CSV columns so external tooling can consume either.
void write_json(const std::string& path,
                const std::vector<DepthPoint>& points) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "skew_depth: cannot open --json path " << path << "\n";
    return;
  }
  out << "{\"figure\":\"skew_depth\",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    if (i != 0) out << ",";
    out << "{\"series\":\"" << p.algorithm << "\",\"order\":\"" << p.order
        << "\",\"threads\":" << p.threads << ",\"n\":" << p.n
        << ",\"mean_lookups\":" << p.lookups.mean
        << ",\"stddev_lookups\":" << p.lookups.stddev
        << ",\"repeats\":" << p.lookups.count
        << ",\"max_depth_built\":" << p.max_depth_built
        << ",\"max_depth\":" << p.max_depth
        << ",\"avg_depth\":" << p.avg_depth << ",\"rebuilds\":" << p.rebuilds
        << ",\"settle_ms\":" << p.settle_ms << "}";
  }
  out << "]}\n";
}

// The insertion sequence for one order; exactly n distinct keys [0, n).
std::vector<std::int64_t> make_order(const std::string& order, std::int64_t n,
                                     std::uint64_t seed) {
  std::vector<std::int64_t> keys;
  keys.reserve(static_cast<std::size_t>(n));
  if (order == "seq") {
    for (std::int64_t k = 0; k < n; ++k) keys.push_back(k);
    return keys;
  }
  if (order == "random") {
    for (std::int64_t k = 0; k < n; ++k) keys.push_back(k);
    citrus::util::Xoshiro256 rng(seed);
    for (std::size_t i = keys.size(); i > 1; --i) {
      std::swap(keys[i - 1], keys[rng.bounded(i)]);
    }
    return keys;
  }
  // zipf: rank-skewed draws (inverse-CDF over the harmonic weights) until
  // the distinct set stops growing usefully, stragglers appended
  // ascending — long monotone runs, the realistic skew adversary.
  citrus::util::Xoshiro256 rng(seed);
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double h = 0.0;
  for (std::int64_t r = 0; r < n; ++r) {
    h += 1.0 / static_cast<double>(r + 1);
    cdf[static_cast<std::size_t>(r)] = h;
  }
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::int64_t distinct = 0;
  const std::int64_t draws = 4 * n;
  for (std::int64_t d = 0; d < draws && distinct < n; ++d) {
    const double u =
        static_cast<double>(rng()) / 18446744073709551616.0 * h;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto k = static_cast<std::int64_t>(it - cdf.begin());
    if (!seen[static_cast<std::size_t>(k)]) {
      seen[static_cast<std::size_t>(k)] = true;
      keys.push_back(k);
      ++distinct;
    }
  }
  for (std::int64_t k = 0; k < n; ++k) {
    if (!seen[static_cast<std::size_t>(k)]) keys.push_back(k);
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const std::int64_t n = opts.get_int("n", 100000);
  const auto threads = opts.get_int_list("threads", {4});
  const double seconds = opts.get_double("seconds", 0.3);
  const int repeats = static_cast<int>(opts.get_int("repeats", 1));
  const double settle_budget_ms = opts.get_double("settle-ms", 10000.0);
  const std::string orders_flag = opts.get("orders", "seq,zipf,random");
  const std::string algos_flag =
      opts.get("algos", "citrus,citrus-cf,citrus-cf-shard16");
  const std::string csv = opts.get("csv", "");
  const std::string json = opts.get("json", "");
  const std::uint64_t seed = opts.get_int("seed", 42);

  auto split = [](const std::string& s) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::size_t end = comma == std::string::npos ? s.size() : comma;
      if (end > pos) out.push_back(s.substr(pos, end - pos));
      pos = end + 1;
    }
    return out;
  };
  const auto orders = split(orders_flag);
  const auto algorithms = split(algos_flag);

  const double depth_bound = 4.0 * std::log2(static_cast<double>(n));

  std::vector<DepthPoint> points;
  std::vector<workload::SeriesPoint> table;
  for (const auto& order : orders) {
    const auto keys = make_order(order, n, seed);
    for (const auto& algorithm : algorithms) {
      for (const auto t : threads) {
        std::vector<double> lookups_per_sec;
        DepthPoint p;
        p.algorithm = algorithm;
        p.order = order;
        p.threads = static_cast<int>(t);
        p.n = n;
        for (int rep = 0; rep < repeats; ++rep) {
          adapters::Options dict_opts;
          dict_opts.key_range_hint = n;
          auto dict = adapters::make_dictionary(algorithm, dict_opts);
          {
            const auto scope = dict->enter_thread();
            for (const auto k : keys) dict->insert(k, k);
          }
          p.max_depth_built = dict->check_structure().max_depth;
          // Settle: rebuild counter stable across a poll AND the depth
          // bound met, or the budget spent (plain citrus never rebuilds
          // and its built depth never meets the bound on seq, so the
          // "stable + can't improve" arm exits immediately).
          const auto settle_start = std::chrono::steady_clock::now();
          const auto settle_deadline =
              settle_start +
              std::chrono::microseconds(
                  static_cast<std::int64_t>(settle_budget_ms * 1000.0));
          std::uint64_t last_rebuilds = dict->stats().maint_rebuilds;
          for (;;) {
            const auto rep_now = dict->check_structure();
            const std::uint64_t now_rebuilds = dict->stats().maint_rebuilds;
            const bool stable = now_rebuilds == last_rebuilds;
            last_rebuilds = now_rebuilds;
            if (stable && (static_cast<double>(rep_now.max_depth) <=
                               depth_bound ||
                           now_rebuilds == 0)) {
              break;
            }
            if (std::chrono::steady_clock::now() >= settle_deadline) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
          p.settle_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - settle_start)
                  .count();
          const auto rep_final = dict->check_structure();
          p.max_depth = rep_final.max_depth;
          p.avg_depth = rep_final.avg_depth;
          p.rebuilds = rep_final.rebuilds;

          // Measure: pure uniform lookups, all keys present.
          std::atomic<bool> stop{false};
          std::vector<std::uint64_t> per_thread(
              static_cast<std::size_t>(t), 0);
          std::vector<std::thread> workers;
          workers.reserve(static_cast<std::size_t>(t));
          for (std::int64_t w = 0; w < t; ++w) {
            workers.emplace_back([&, w] {
              const auto scope = dict->enter_thread();
              util::Xoshiro256 rng(seed + 0x9E3779B97F4A7C15ull *
                                              static_cast<std::uint64_t>(
                                                  w + rep * 64 + 1));
              std::uint64_t ops = 0;
              while (!stop.load(std::memory_order_relaxed)) {
                for (int burst = 0; burst < 64; ++burst) {
                  const auto k = static_cast<std::int64_t>(
                      rng.bounded(static_cast<std::uint64_t>(n)));
                  if (!dict->contains(k)) std::abort();  // keys never leave
                  ++ops;
                }
              }
              per_thread[static_cast<std::size_t>(w)] = ops;
            });
          }
          const auto measure_start = std::chrono::steady_clock::now();
          std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
          stop.store(true, std::memory_order_relaxed);
          for (auto& w : workers) w.join();
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            measure_start)
                  .count();
          std::uint64_t total = 0;
          for (const auto ops : per_thread) total += ops;
          lookups_per_sec.push_back(static_cast<double>(total) / elapsed);
        }
        p.lookups = util::summarize(std::move(lookups_per_sec));
        points.push_back(p);
        table.push_back({p.algorithm + "/" + p.order, p.threads, p.lookups});
        std::cout << "skew_depth " << p.algorithm << " order=" << p.order
                  << " n=" << n << " threads=" << t << " -> "
                  << workload::format_ops(p.lookups.mean)
                  << " lookups/s (depth " << p.max_depth_built << " -> "
                  << p.max_depth << ", avg " << p.avg_depth << ", "
                  << p.rebuilds << " rebuilds, settle "
                  << static_cast<int>(p.settle_ms) << "ms)" << std::endl;
      }
    }
  }
  workload::print_throughput_table(
      std::cout, "Skew depth: lookups/s by series (algorithm/order)", table);
  workload::append_csv(csv, "skew_depth", table);
  write_json(json, points);

  // The AB5 headline, when both series ran: seq-order speedup and bound.
  for (const auto t : threads) {
    const DepthPoint* plain = nullptr;
    const DepthPoint* cf = nullptr;
    for (const auto& p : points) {
      if (p.order != "seq" || p.threads != t) continue;
      if (p.algorithm == "citrus") plain = &p;
      if (p.algorithm == "citrus-cf") cf = &p;
    }
    if (plain != nullptr && cf != nullptr && plain->lookups.mean > 0.0) {
      std::cout << "seq/" << t << "t: citrus-cf max_depth " << cf->max_depth
                << (static_cast<double>(cf->max_depth) <= depth_bound
                        ? " <= "
                        : " > ")
                << "4*log2(n) = " << depth_bound << ", speedup "
                << cf->lookups.mean / plain->lookups.mean << "x" << std::endl;
    }
  }
  return 0;
}
