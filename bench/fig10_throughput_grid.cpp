// Figure 10 — "Throughput of the different algorithms with key range
// [0, 2e5] and [0, 2e6] under different operation distribution": the 2x3
// grid {two key ranges} x {100%, 98%, 50% contains}.
//
// The paper's qualitative observations this harness lets you re-check:
//   * 100% contains: the RCU trees (red-black, Bonsai) look good — more so
//     at the large key range.
//   * 98% contains: "the shortcomings of RCU-based trees with
//     coarse-grained locks are seen already" — red-black and Bonsai stop
//     scaling while Citrus tracks the fine-grained trees.
//   * 50% contains: Citrus continues to scale, paying a visible
//     synchronize_rcu cost; it and the lock-free tree skip the balancing
//     cost the AVL tree pays.
#include <iostream>
#include <string>
#include <vector>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16, 32, 64});
  const double seconds = opts.get_double("seconds", 0.3);
  const int repeats = static_cast<int>(opts.get_int("repeats", 1));
  const std::string csv = opts.get("csv", "");
  const auto ranges = opts.get_int_list("ranges", {200000, 2000000});

  // The comparison set comes from registry introspection: one
  // representative per algorithm family (the paper's six, the relativistic
  // hash, and the 16-shard Citrus harness extension). New families join
  // the grid by registering with comparison=true — no list to edit here.
  std::vector<std::string> algorithms;
  for (const auto& info : adapters::available_dictionaries()) {
    if (info.comparison) algorithms.push_back(info.name);
  }
  const double mixes[] = {1.0, 0.98, 0.5};

  for (const auto range : ranges) {
    for (const double mix : mixes) {
      workload::WorkloadConfig config;
      config.key_range = range;
      config.contains_fraction = mix;
      config.seconds = seconds;

      std::vector<workload::SeriesPoint> points;
      for (const auto& algorithm : algorithms) {
        for (const auto t : threads) {
          config.threads = static_cast<int>(t);
          const auto summary =
              workload::run_repeated(algorithm, config, repeats);
          points.push_back({algorithm, config.threads, summary});
          std::cout << "fig10 range=" << range << " mix=" << config.mix_label()
                    << " " << algorithm << " threads=" << t << " -> "
                    << workload::format_ops(summary.mean) << " ops/s"
                    << std::endl;
        }
      }
      workload::print_throughput_table(
          std::cout,
          "Figure 10: " + config.mix_label() + ", key range [0," +
              std::to_string(range) + "]",
          points);
      workload::append_csv(
          csv, "fig10-range" + std::to_string(range) + "-" + config.mix_label(),
          points);
    }
  }
  return 0;
}
