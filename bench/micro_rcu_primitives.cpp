// MICRO1: cost of the RCU primitives per domain, via google-benchmark.
//   * read_lock/read_unlock round-trip (the per-search overhead every
//     Citrus get pays),
//   * synchronize_rcu with no readers (the floor a two-child delete pays),
//   * synchronize_rcu with active reader churn,
//   * multi-threaded synchronize throughput (the Figure 8 mechanism in
//     isolation: global-lock RCU serializes, the others do not).
#include <benchmark/benchmark.h>

#include <thread>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using citrus::rcu::EpochRcu;
using citrus::rcu::GlobalLockRcu;

template <typename Rcu>
void BM_ReadSection(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  for (auto _ : state) {
    domain.read_lock();
    benchmark::DoNotOptimize(&domain);
    domain.read_unlock();
  }
}

template <typename Rcu>
void BM_SynchronizeNoReaders(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  for (auto _ : state) domain.synchronize();
}

template <typename Rcu>
void BM_SynchronizeWithReaderChurn(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    typename Rcu::Registration r(domain);
    while (!stop.load(std::memory_order_relaxed)) {
      domain.read_lock();
      benchmark::DoNotOptimize(&domain);
      domain.read_unlock();
    }
  });
  for (auto _ : state) domain.synchronize();
  stop.store(true);
  churner.join();
}

// Threaded: every benchmark thread synchronizes concurrently. This is the
// contention point Figure 8 exposes.
template <typename Rcu>
void BM_ConcurrentSynchronize(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  for (auto _ : state) domain.synchronize();
}

}  // namespace

BENCHMARK_TEMPLATE(BM_ReadSection, CounterFlagRcu);
BENCHMARK_TEMPLATE(BM_ReadSection, GlobalLockRcu);
BENCHMARK_TEMPLATE(BM_ReadSection, EpochRcu);

BENCHMARK_TEMPLATE(BM_SynchronizeNoReaders, CounterFlagRcu);
BENCHMARK_TEMPLATE(BM_SynchronizeNoReaders, GlobalLockRcu);
BENCHMARK_TEMPLATE(BM_SynchronizeNoReaders, EpochRcu);

BENCHMARK_TEMPLATE(BM_SynchronizeWithReaderChurn, CounterFlagRcu)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SynchronizeWithReaderChurn, GlobalLockRcu)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SynchronizeWithReaderChurn, EpochRcu)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_TEMPLATE(BM_ConcurrentSynchronize, CounterFlagRcu)->Threads(2)->Threads(4);
BENCHMARK_TEMPLATE(BM_ConcurrentSynchronize, GlobalLockRcu)->Threads(2)->Threads(4);
BENCHMARK_TEMPLATE(BM_ConcurrentSynchronize, EpochRcu)->Threads(2)->Threads(4);
