// MICRO1: cost of the RCU primitives per domain, via google-benchmark.
//   * read_lock/read_unlock round-trip (the per-search overhead every
//     Citrus get pays),
//   * synchronize_rcu with no readers (the floor a two-child delete pays),
//   * synchronize_rcu with active reader churn,
//   * multi-threaded synchronize throughput (the Figure 8 mechanism in
//     isolation: global-lock RCU serializes, the others do not).
//
// The gp_seq A/B: CounterFlagRcu is the shared-grace-period engine
// (hierarchical scan + piggybacking), FlatCounterFlagRcu is the paper's
// flat per-call scan. The acceptance pair is BM_ConcurrentSynchronize at
// 16 threads: the engine must beat the flat baseline ≥2× (concurrent
// callers share one scan instead of each walking every reader), while
// BM_ReadSection must show no regression (the read fast path is one
// seq_cst store + one uncontended seq_cst load either way).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"

namespace {

using citrus::rcu::CounterFlagRcu;
using citrus::rcu::EpochRcu;
using citrus::rcu::FlatCounterFlagRcu;
using citrus::rcu::GlobalLockRcu;

template <typename Rcu>
void BM_ReadSection(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  for (auto _ : state) {
    domain.read_lock();
    benchmark::DoNotOptimize(&domain);
    domain.read_unlock();
  }
}

template <typename Rcu>
void BM_SynchronizeNoReaders(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  for (auto _ : state) domain.synchronize();
}

template <typename Rcu>
void BM_SynchronizeWithReaderChurn(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    typename Rcu::Registration r(domain);
    while (!stop.load(std::memory_order_relaxed)) {
      domain.read_lock();
      benchmark::DoNotOptimize(&domain);
      domain.read_unlock();
    }
  });
  for (auto _ : state) domain.synchronize();
  stop.store(true);
  churner.join();
}

// Threaded: every benchmark thread synchronizes concurrently. This is the
// contention point Figure 8 exposes. With no readers registered beyond
// the synchronizers themselves a flat scan is just N idle-word loads, so
// this isolates the engine's leader-election overhead (the flat variant
// has none — the paper's synchronizers share no state at all).
// Both concurrent benchmarks report scans actually performed per
// synchronize call as a counter ("scans_per_call"): 1.0 for every
// per-call-scan domain by construction, < 1 when callers piggyback on the
// shared grace-period sequence. This is the machine-independent form of
// the sharing win — on a single-core CI runner the wall-clock columns
// measure the scheduler, not the scan.
template <typename Rcu>
void BM_ConcurrentSynchronize(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  std::uint64_t scans0 = 0;
  if constexpr (requires(const Rcu& d) { d.grace_periods_started(); }) {
    if (state.thread_index() == 0) scans0 = domain.grace_periods_started();
  }
  for (auto _ : state) domain.synchronize();
  if (state.thread_index() == 0) {
    const double calls = static_cast<double>(state.iterations()) *
                         static_cast<double>(state.threads());
    if constexpr (requires(const Rcu& d) { d.grace_periods_started(); }) {
      state.counters["scans_per_call"] =
          static_cast<double>(domain.grace_periods_started() - scans0) /
          calls;
    } else {
      state.counters["scans_per_call"] = 1.0;  // one flat scan per call
    }
  }
}

// The acceptance metric at 16 threads: concurrent synchronizers against
// churning readers. Here a flat scan must sample every churning reader's
// word and spin-wait out flagged sections — N scanners each keep R hot
// reader lines in shared state, so every reader store pays an N-way
// invalidation and the waits compound. The engine elects one leader per
// grace period; the other callers spin locally on the shared sequence
// word, so reader lines have a single remote spinner regardless of N.
template <typename Rcu>
void BM_ConcurrentSynchronizeWithChurn(benchmark::State& state) {
  static Rcu domain;
  static std::atomic<bool> stop;
  static std::vector<std::thread> churners;
  typename Rcu::Registration reg(domain);
  std::uint64_t scans0 = 0;
  if (state.thread_index() == 0) {
    if constexpr (requires(const Rcu& d) { d.grace_periods_started(); }) {
      scans0 = domain.grace_periods_started();
    }
    stop.store(false);
    for (int i = 0; i < 4; ++i) {
      churners.emplace_back([] {
        typename Rcu::Registration r(domain);
        while (!stop.load(std::memory_order_relaxed)) {
          domain.read_lock();
          benchmark::DoNotOptimize(&domain);
          domain.read_unlock();
        }
      });
    }
  }
  for (auto _ : state) domain.synchronize();
  if (state.thread_index() == 0) {
    stop.store(true);
    for (auto& t : churners) t.join();
    churners.clear();
    const double calls = static_cast<double>(state.iterations()) *
                         static_cast<double>(state.threads());
    if constexpr (requires(const Rcu& d) { d.grace_periods_started(); }) {
      state.counters["scans_per_call"] =
          static_cast<double>(domain.grace_periods_started() - scans0) /
          calls;
    } else {
      state.counters["scans_per_call"] = 1.0;  // one flat scan per call
    }
  }
}

// Expedited flat scan on the engine domain: the single-updater escape
// hatch that bypasses grace-period sharing entirely.
void BM_SynchronizeExpedited(benchmark::State& state) {
  static CounterFlagRcu domain;
  CounterFlagRcu::Registration reg(domain);
  for (auto _ : state) domain.synchronize_expedited();
}

// Deferred grace period: start + wait as separate steps (what the
// pipelined Reclaimer does to overlap grace periods with callbacks).
template <typename Rcu>
void BM_StartThenAwaitGracePeriod(benchmark::State& state) {
  static Rcu domain;
  typename Rcu::Registration reg(domain);
  for (auto _ : state) {
    const citrus::rcu::GpCookie cookie = domain.start_grace_period();
    benchmark::DoNotOptimize(domain.poll(cookie));
    domain.synchronize(cookie);
  }
}

}  // namespace

BENCHMARK_TEMPLATE(BM_ReadSection, CounterFlagRcu);
BENCHMARK_TEMPLATE(BM_ReadSection, FlatCounterFlagRcu);
BENCHMARK_TEMPLATE(BM_ReadSection, GlobalLockRcu);
BENCHMARK_TEMPLATE(BM_ReadSection, EpochRcu);

BENCHMARK_TEMPLATE(BM_SynchronizeNoReaders, CounterFlagRcu);
BENCHMARK_TEMPLATE(BM_SynchronizeNoReaders, FlatCounterFlagRcu);
BENCHMARK_TEMPLATE(BM_SynchronizeNoReaders, GlobalLockRcu);
BENCHMARK_TEMPLATE(BM_SynchronizeNoReaders, EpochRcu);

BENCHMARK_TEMPLATE(BM_SynchronizeWithReaderChurn, CounterFlagRcu)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SynchronizeWithReaderChurn, FlatCounterFlagRcu)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SynchronizeWithReaderChurn, GlobalLockRcu)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SynchronizeWithReaderChurn, EpochRcu)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_TEMPLATE(BM_ConcurrentSynchronize, CounterFlagRcu)
    ->Threads(2)->Threads(4)->Threads(8)->Threads(16);
BENCHMARK_TEMPLATE(BM_ConcurrentSynchronize, FlatCounterFlagRcu)
    ->Threads(2)->Threads(4)->Threads(8)->Threads(16);
BENCHMARK_TEMPLATE(BM_ConcurrentSynchronize, GlobalLockRcu)
    ->Threads(2)->Threads(4);
BENCHMARK_TEMPLATE(BM_ConcurrentSynchronize, EpochRcu)
    ->Threads(2)->Threads(4);

BENCHMARK_TEMPLATE(BM_ConcurrentSynchronizeWithChurn, CounterFlagRcu)
    ->Threads(8)->Threads(16)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ConcurrentSynchronizeWithChurn, FlatCounterFlagRcu)
    ->Threads(8)->Threads(16)->UseRealTime();

BENCHMARK_TEMPLATE(BM_StartThenAwaitGracePeriod, CounterFlagRcu);
BENCHMARK_TEMPLATE(BM_StartThenAwaitGracePeriod, EpochRcu);
BENCHMARK(BM_SynchronizeExpedited);
