// Latency profile (harness extension beyond the paper's throughput plots):
// per-operation latency quantiles, split into reads and updates, for every
// structure under the 50%-contains mix. The interesting tail: Citrus'
// update p99/p999 carries the synchronize_rcu of two-child deletes, while
// its read quantiles stay flat — the asymmetry RCU is designed to buy.
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);

  workload::WorkloadConfig config;
  config.key_range = opts.get_int("range", 200000);
  config.threads = static_cast<int>(opts.get_int("threads", 4));
  config.seconds = opts.get_double("seconds", 0.5);
  config.contains_fraction = opts.get_double("contains", 0.5);
  config.measure_latency = true;

  std::printf("latency profile: %s, range [0,%" PRId64 "], %d threads\n",
              config.mix_label().c_str(), config.key_range, config.threads);
  std::printf("%-16s %10s | %8s %8s %8s %8s | %8s %8s %8s %8s | %9s\n",
              "algorithm", "ops/s", "r-p50", "r-p90", "r-p99", "r-p999",
              "u-p50", "u-p90", "u-p99", "u-p999", "upd-retry");
  // Registry comparison set, plus "citrus-reclaim" named literally: it is
  // an ablation alias (reclamation tier A/B against "citrus"), kept here
  // because reclamation lives exactly in the update tail this profile is
  // about.
  std::vector<std::string> names;
  for (const auto& info : adapters::available_dictionaries()) {
    if (!info.comparison) continue;
    names.push_back(info.name);
    if (info.name == "citrus") names.push_back("citrus-reclaim");
  }
  for (const std::string& name : names) {
    adapters::Options dict_opts;
    dict_opts.key_range_hint = config.key_range;
    auto dict = adapters::make_dictionary(name, dict_opts);
    const auto r = workload::run_workload(*dict, config);
    // Per-variant update-retry work: restarted traversals plus (for the
    // cop protocol) failed under-lock validations. Zero on traits tiers
    // that compile stats out.
    const auto s = dict->stats();
    const std::uint64_t retries =
        s.insert_retries + s.erase_retries + s.cop_validation_failures;
    std::printf(
        "%-16s %10s | %7" PRIu64 "n %7" PRIu64 "n %7" PRIu64 "n %7" PRIu64
        "n | %7" PRIu64 "n %7" PRIu64 "n %7" PRIu64 "n %7" PRIu64 "n | %9"
        PRIu64 "\n",
        name.c_str(), workload::format_ops(r.throughput).c_str(),
        r.read_latency.p50,
        r.read_latency.p90, r.read_latency.p99, r.read_latency.p999,
        r.update_latency.p50, r.update_latency.p90, r.update_latency.p99,
        r.update_latency.p999, retries);
  }
  std::printf(
      "\n(quantile values are log2-bucket lower bounds in nanoseconds; "
      "upd-retry is 0 when the traits tier compiles stats out)\n");
  return 0;
}
