// Figure 9 — "Throughput of the different algorithms with a single
// writer", key ranges [0, 2e5] and [0, 2e6].
//
// One thread executes updates (50% insert / 50% delete); the remaining
// threads only run contains. This is the workload that most favors the
// coarse-grained RCU trees (red-black, Bonsai): with one writer their
// global update lock is uncontended. The paper's observations: Bonsai
// still trails (path copying), Citrus sits with the leading group.
#include <iostream>
#include <string>
#include <vector>

#include "adapters/idictionary.hpp"
#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16, 32, 64});
  const double seconds = opts.get_double("seconds", 0.4);
  const int repeats = static_cast<int>(opts.get_int("repeats", 1));
  const std::string csv = opts.get("csv", "");
  const auto ranges = opts.get_int_list("ranges", {200000, 2000000});

  // Unsharded members of the registry's comparison set: the single-writer
  // figure is about one uncontended update lock, which per-shard writers
  // would dilute.
  std::vector<std::string> algorithms;
  for (const auto& info : adapters::available_dictionaries()) {
    if (info.comparison && !info.traits.sharded)
      algorithms.push_back(info.name);
  }

  for (const auto range : ranges) {
    workload::WorkloadConfig config;
    config.key_range = range;
    config.single_writer = true;
    config.seconds = seconds;

    std::vector<workload::SeriesPoint> points;
    for (const auto& algorithm : algorithms) {
      for (const auto t : threads) {
        config.threads = static_cast<int>(t);
        const auto summary = workload::run_repeated(algorithm, config, repeats);
        points.push_back({algorithm, config.threads, summary});
        std::cout << "fig9 range=" << range << " " << algorithm
                  << " threads=" << t << " -> "
                  << workload::format_ops(summary.mean) << " ops/s"
                  << std::endl;
      }
    }
    workload::print_throughput_table(
        std::cout,
        "Figure 9: single writer, key range [0," + std::to_string(range) + "]",
        points);
    workload::append_csv(csv, "fig9-range" + std::to_string(range), points);
  }
  return 0;
}
