// Figure 8 — "Impact of concurrent updates on the standard RCU
// implementation compared to our scalable implementation: example with
// operation distribution of 50% contains and key range [0, 2e5]."
//
// Two series: the Citrus tree over GlobalLockRcu (our reimplementation of
// the stock urcu, whose grace periods serialize on a global lock) and over
// CounterFlagRcu (the paper's new RCU). The paper's qualitative result:
// the standard implementation collapses as update-driven synchronize_rcu
// traffic grows with the thread count, while the new one keeps scaling.
//
// Defaults are sized for a quick run; reproduce the paper's scale with
//   ./fig8_rcu_scaling --seconds=5 --repeats=5 --threads=1,2,4,8,16,32,64
#include <iostream>

#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16, 32, 64});
  const double seconds = opts.get_double("seconds", 0.4);
  const int repeats = static_cast<int>(opts.get_int("repeats", 1));
  const std::string csv = opts.get("csv", "");

  workload::WorkloadConfig config;
  config.key_range = opts.get_int("range", 200000);
  config.contains_fraction = 0.5;
  config.seconds = seconds;

  std::vector<workload::SeriesPoint> points;
  for (const char* algorithm : {"citrus-std-rcu", "citrus"}) {
    for (const auto t : threads) {
      config.threads = static_cast<int>(t);
      const auto summary =
          workload::run_repeated(algorithm, config, repeats);
      points.push_back({algorithm, config.threads, summary});
      std::cout << "fig8 " << algorithm << " threads=" << t << " -> "
                << workload::format_ops(summary.mean) << " ops/s"
                << std::endl;
    }
  }
  workload::print_throughput_table(
      std::cout,
      "Figure 8: Citrus over standard (global-lock) RCU vs the new RCU — "
      "50% contains, range [0,2e5]",
      points);
  workload::append_csv(csv, "fig8", points);

  // The paper's qualitative claim, checked mechanically at the largest
  // thread count: the new RCU beats the global-lock RCU.
  const auto& std_last = points[threads.size() - 1].throughput.mean;
  const auto& new_last = points.back().throughput.mean;
  std::cout << "\nshape check (max threads): citrus/new-RCU = "
            << workload::format_ops(new_last)
            << " vs citrus/std-RCU = " << workload::format_ops(std_last)
            << (new_last > std_last ? "  [as in the paper]"
                                    : "  [UNEXPECTED inversion]")
            << std::endl;
  return 0;
}
