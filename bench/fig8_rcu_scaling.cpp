// Figure 8 — "Impact of concurrent updates on the standard RCU
// implementation compared to our scalable implementation: example with
// operation distribution of 50% contains and key range [0, 2e5]."
//
// Three series: the Citrus tree over GlobalLockRcu (our reimplementation
// of the stock urcu, whose grace periods serialize on a global lock),
// over FlatCounterFlagRcu (the paper's counter+flag RCU with a flat
// per-call reader scan), and over CounterFlagRcu (the same reader
// protocol driven by the shared grace-period engine: concurrent
// synchronizers piggyback on one scan, and the scan descends only into
// reader groups with a set hint bit). The paper's qualitative result:
// the standard implementation collapses as update-driven synchronize_rcu
// traffic grows with the thread count, while the counter+flag ones keep
// scaling; the gp_seq series additionally bounds scan work per grace
// period rather than per call.
//
// Defaults are sized for a quick run; reproduce the paper's scale with
//   ./fig8_rcu_scaling --seconds=5 --repeats=5 --threads=1,2,4,8,16,32,64
// Pass --json=BENCH_rcu_scaling.json to emit the machine-readable series
// (one record per point) consumed by the CI bench-smoke lane.
#include <fstream>
#include <iostream>

#include "util/cli.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace {

// Minimal JSON emission: {"figure":"fig8","points":[{...},...]}. The
// fields mirror append_csv's columns so external tooling can use either.
void write_json(const std::string& path,
                const std::vector<citrus::workload::SeriesPoint>& points) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fig8: cannot open --json path " << path << "\n";
    return;
  }
  out << "{\"figure\":\"fig8_rcu_scaling\",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    if (i != 0) out << ",";
    out << "{\"series\":\"" << p.series << "\",\"threads\":" << p.threads
        << ",\"mean_ops\":" << p.throughput.mean
        << ",\"stddev_ops\":" << p.throughput.stddev
        << ",\"repeats\":" << p.throughput.count << "}";
  }
  out << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace citrus;
  util::Options opts(argc, argv);
  const auto threads = opts.get_int_list("threads", {1, 2, 4, 8, 16, 32, 64});
  const double seconds = opts.get_double("seconds", 0.4);
  const int repeats = static_cast<int>(opts.get_int("repeats", 1));
  const std::string csv = opts.get("csv", "");
  const std::string json = opts.get("json", "");

  workload::WorkloadConfig config;
  config.key_range = opts.get_int("range", 200000);
  config.contains_fraction = 0.5;
  config.seconds = seconds;

  std::vector<workload::SeriesPoint> points;
  for (const char* algorithm : {"citrus-std-rcu", "citrus-flat", "citrus"}) {
    for (const auto t : threads) {
      config.threads = static_cast<int>(t);
      const auto summary =
          workload::run_repeated(algorithm, config, repeats);
      points.push_back({algorithm, config.threads, summary});
      std::cout << "fig8 " << algorithm << " threads=" << t << " -> "
                << workload::format_ops(summary.mean) << " ops/s"
                << std::endl;
    }
  }
  workload::print_throughput_table(
      std::cout,
      "Figure 8: Citrus over standard (global-lock) RCU vs counter+flag "
      "RCU (flat scan vs shared gp_seq) — 50% contains, range [0,2e5]",
      points);
  workload::append_csv(csv, "fig8", points);
  write_json(json, points);

  // The paper's qualitative claim, checked mechanically at the largest
  // thread count: both counter+flag variants beat the global-lock RCU.
  const std::size_t n = threads.size();
  const double std_last = points[n - 1].throughput.mean;
  const double flat_last = points[2 * n - 1].throughput.mean;
  const double new_last = points.back().throughput.mean;
  std::cout << "\nshape check (max threads): citrus/gp_seq = "
            << workload::format_ops(new_last)
            << " vs citrus/flat = " << workload::format_ops(flat_last)
            << " vs citrus/std-RCU = " << workload::format_ops(std_last)
            << (new_last > std_last && flat_last > std_last
                    ? "  [as in the paper]"
                    : "  [UNEXPECTED inversion]")
            << std::endl;
  return 0;
}
