// ViolationSink — process-wide collector for rcucheck reports.
//
// Compiled unconditionally (it is a few hundred bytes and keeps the test
// binary shape identical across build modes); with CITRUS_RCU_CHECK=OFF no
// hook ever calls into it.

#include "check/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace citrus::check {

const char* to_string(ViolationClass c) noexcept {
  switch (c) {
    case ViolationClass::kDerefOutsideReadSection:
      return "deref-outside-read-section";
    case ViolationClass::kUnsafeSynchronize:
      return "unsafe-synchronize";
    case ViolationClass::kBadUnlock:
      return "bad-unlock";
    case ViolationClass::kRetireReachable:
      return "retire-reachable";
    case ViolationClass::kUseAfterReclaim:
      return "use-after-reclaim";
  }
  return "unknown";
}

struct ViolationSink::Impl {
  mutable std::mutex mu;
  Violation ring[kRingCapacity];
  std::size_t ring_size = 0;   // entries stored (<= capacity)
  std::size_t ring_next = 0;   // next write position (wraps)
  std::atomic<std::uint64_t> totals[kViolationClasses] = {};
  std::atomic<Mode> mode{Mode::kAbort};
};

ViolationSink::Impl& ViolationSink::impl() const noexcept {
  static Impl instance;
  return instance;
}

ViolationSink& ViolationSink::instance() noexcept {
  static ViolationSink sink;
  return sink;
}

void ViolationSink::report(const Violation& v) noexcept {
  Impl& im = impl();
  im.totals[static_cast<std::size_t>(v.cls)].fetch_add(
      1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(im.mu);
    im.ring[im.ring_next] = v;
    im.ring_next = (im.ring_next + 1) % kRingCapacity;
    if (im.ring_size < kRingCapacity) ++im.ring_size;
  }
  if (im.mode.load(std::memory_order_relaxed) == Mode::kAbort) {
    std::fprintf(stderr,
                 "\n[rcucheck] RCU discipline violation: %s\n"
                 "[rcucheck]   %s\n"
                 "[rcucheck]   subject: %p\n"
                 "[rcucheck]   at: %s:%u\n",
                 to_string(v.cls), v.detail, v.subject, v.file, v.line);
    std::fflush(stderr);
    std::abort();
  }
}

ViolationSink::Mode ViolationSink::mode() const noexcept {
  return impl().mode.load(std::memory_order_relaxed);
}

void ViolationSink::set_mode(Mode m) noexcept {
  impl().mode.store(m, std::memory_order_relaxed);
}

std::uint64_t ViolationSink::total() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : impl().totals) n += t.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t ViolationSink::count(ViolationClass c) const noexcept {
  return impl().totals[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

std::vector<Violation> ViolationSink::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> g(im.mu);
  std::vector<Violation> out;
  out.reserve(im.ring_size);
  // Oldest first: when full, the next write position is the oldest entry.
  const std::size_t start =
      im.ring_size < kRingCapacity ? 0 : im.ring_next;
  for (std::size_t i = 0; i < im.ring_size; ++i) {
    out.push_back(im.ring[(start + i) % kRingCapacity]);
  }
  return out;
}

void ViolationSink::clear() noexcept {
  Impl& im = impl();
  std::lock_guard<std::mutex> g(im.mu);
  im.ring_size = 0;
  im.ring_next = 0;
  for (auto& t : im.totals) t.store(0, std::memory_order_relaxed);
}

}  // namespace citrus::check
