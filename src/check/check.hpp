// rcucheck — a lockdep-style runtime verifier for the RCU/lock discipline
// the Citrus tree's safety argument depends on (paper Sections 3-5).
//
// TSan finds data races; it cannot find *protocol* violations, because every
// individual access in a broken client can still be a well-ordered atomic
// operation. The obligations the paper's proof actually rests on are:
//
//   (a) every node dereference on a traversal path happens inside a
//       read-side critical section (or under a node lock after validation —
//       the updater discipline of Section 3);
//   (b) synchronize_rcu is never called from inside a read-side critical
//       section (self-deadlock), and calling it while holding node locks is
//       only sound because Citrus readers take no locks — so it must be
//       explicitly blessed at the call site that argues that invariant;
//   (c) node locks are released by the thread that acquired them, exactly
//       once;
//   (d) a node is retired only after it has been marked and unlinked
//       (Lemma 1: only marked nodes become unreachable);
//   (e) a reclaimed node is never dereferenced again (the grace-period
//       obligation retire/synchronize exists to discharge).
//
// This header is the whole opt-in surface. With -DCITRUS_RCU_CHECK=ON the
// build defines CITRUS_RCU_CHECK=1 and every hook maintains a per-thread
// CheckContext (read-side nesting depth, held node-lock set, current
// domain); violations are routed to the process-wide ViolationSink, which
// either aborts with a file:line report (default) or records into a ring
// buffer that tests assert on. With the option off, kEnabled is false and
// every hook is an empty inline function the optimizer deletes — the node
// layout, lock types and generated code are bit-identical to a build that
// never heard of this header (micro_tree_ops guards that claim).
#pragma once

#include <cstdint>
#include <source_location>
#include <vector>

#if !defined(CITRUS_RCU_CHECK)
#define CITRUS_RCU_CHECK 0
#endif

namespace citrus::check {

inline constexpr bool kEnabled = CITRUS_RCU_CHECK != 0;

// The five violation classes of the discipline above.
enum class ViolationClass : std::uint8_t {
  kDerefOutsideReadSection = 0,  // (a)
  kUnsafeSynchronize = 1,        // (b)
  kBadUnlock = 2,                // (c)
  kRetireReachable = 3,          // (d)
  kUseAfterReclaim = 4,          // (e)
};
inline constexpr std::size_t kViolationClasses = 5;

const char* to_string(ViolationClass c) noexcept;

struct Violation {
  ViolationClass cls;
  const void* subject;    // node, lock or domain the report is about
  const char* detail;     // static string naming the broken obligation
  const char* file;       // provenance of the instrumentation site
  std::uint32_t line;
};

// Process-wide violation collector. Default mode aborts with a report (so a
// whole test suite run under CITRUS_RCU_CHECK=ON enforces cleanliness for
// free); tests that *seed* violations switch to kRecord and assert on the
// ring buffer.
class ViolationSink {
 public:
  enum class Mode { kAbort, kRecord };
  static constexpr std::size_t kRingCapacity = 128;

  static ViolationSink& instance() noexcept;

  void report(const Violation& v) noexcept;

  Mode mode() const noexcept;
  void set_mode(Mode m) noexcept;

  // Violations seen since the last clear() (monotone total and per class).
  std::uint64_t total() const noexcept;
  std::uint64_t count(ViolationClass c) const noexcept;

  // Copy of the ring buffer, oldest first (at most kRingCapacity entries).
  std::vector<Violation> snapshot() const;

  void clear() noexcept;

 private:
  ViolationSink() = default;
  struct Impl;
  Impl& impl() const noexcept;
};

// RAII: record mode for a scope (seeded-violation tests).
class ScopedRecordMode {
 public:
  ScopedRecordMode()
      : prev_(ViolationSink::instance().mode()) {
    ViolationSink::instance().set_mode(ViolationSink::Mode::kRecord);
  }
  ~ScopedRecordMode() { ViolationSink::instance().set_mode(prev_); }
  ScopedRecordMode(const ScopedRecordMode&) = delete;
  ScopedRecordMode& operator=(const ScopedRecordMode&) = delete;

 private:
  ViolationSink::Mode prev_;
};

// Canary values for pooled-node lifetime tracking (violation class (e)).
// A live node carries kLiveCanary; recycle() stamps kFreeCanary and poisons
// the payload bytes with kPoisonByte. Any other value means the slot was
// trampled while free.
inline constexpr std::uint64_t kLiveCanary = 0xC17A115A11FEED05ull;
inline constexpr std::uint64_t kFreeCanary = 0xDEADC17A9E7122EDull;
inline constexpr unsigned char kPoisonByte = 0xBD;

// Poison pointer installed into the child slots of a recycled node: a
// straggling updater that validates against a recycled parent can only see
// a value that matches no live node.
inline void* poison_pointer() noexcept {
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(
      0xBDBDBDBDBDBDB000ull));
}

#if CITRUS_RCU_CHECK

namespace detail {

// Per-thread discipline state. One per thread across all domains: the
// read-side depth is global (obligation (a) only asks for *some* enclosing
// section), the domain pointer names the innermost one for reports.
struct CheckContext {
  std::uint32_t read_depth = 0;
  std::uint32_t sync_with_locks_allowed = 0;
  std::uint32_t quiescent_depth = 0;
  const void* current_domain = nullptr;
  std::vector<const void*> held_locks;
};

inline CheckContext& ctx() noexcept {
  thread_local CheckContext c;
  return c;
}

inline void report(ViolationClass cls, const void* subject,
                   const char* detail,
                   const std::source_location& loc) noexcept {
  ViolationSink::instance().report(Violation{
      cls, subject, detail, loc.file_name(),
      static_cast<std::uint32_t>(loc.line())});
}

}  // namespace detail

// ── Hooks wired into the RCU domains ──────────────────────────────────

inline void on_read_lock(const void* domain) noexcept {
  auto& c = detail::ctx();
  ++c.read_depth;
  c.current_domain = domain;
}

inline void on_read_unlock(
    const void* domain,
    const std::source_location& loc = std::source_location::current()) noexcept {
  auto& c = detail::ctx();
  if (c.read_depth == 0) {
    detail::report(ViolationClass::kBadUnlock, domain,
                   "rcu read_unlock without a matching read_lock", loc);
    return;
  }
  if (--c.read_depth == 0) c.current_domain = nullptr;
}

inline void on_synchronize(
    const void* domain,
    const std::source_location& loc = std::source_location::current()) noexcept {
  auto& c = detail::ctx();
  if (c.read_depth > 0) {
    detail::report(ViolationClass::kUnsafeSynchronize, domain,
                   "synchronize_rcu inside a read-side critical section "
                   "(self-deadlock)",
                   loc);
  } else if (!c.held_locks.empty() && c.sync_with_locks_allowed == 0) {
    detail::report(ViolationClass::kUnsafeSynchronize, domain,
                   "synchronize_rcu while holding node locks without an "
                   "AllowSyncWithHeldLocks blessing",
                   loc);
  }
}

// Deferred grace periods (rcu/gp_seq.hpp). Starting a grace period is a
// fence + sequence snapshot — non-blocking and legal anywhere, including
// inside a read-side critical section, so on_gp_start only exists as an
// instrumentation point. *Waiting* on a cookie (synchronize(cookie)) has
// exactly the blocking profile of synchronize_rcu, so on_gp_wait enforces
// the same obligation (b).

inline void on_gp_start(const void* /*domain*/) noexcept {}

inline void on_gp_wait(
    const void* domain,
    const std::source_location& loc = std::source_location::current()) noexcept {
  auto& c = detail::ctx();
  if (c.read_depth > 0) {
    detail::report(ViolationClass::kUnsafeSynchronize, domain,
                   "grace-period wait (synchronize on a cookie) inside a "
                   "read-side critical section (self-deadlock)",
                   loc);
  } else if (!c.held_locks.empty() && c.sync_with_locks_allowed == 0) {
    detail::report(ViolationClass::kUnsafeSynchronize, domain,
                   "grace-period wait (synchronize on a cookie) while "
                   "holding node locks without an AllowSyncWithHeldLocks "
                   "blessing",
                   loc);
  }
}

// ── Hooks wired into the node-lock wrapper (sync/spinlock.hpp) ────────

inline void on_node_lock(const void* lock) noexcept {
  detail::ctx().held_locks.push_back(lock);
}

inline void on_node_unlock(
    const void* lock,
    const std::source_location& loc = std::source_location::current()) noexcept {
  auto& held = detail::ctx().held_locks;
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == lock) {
      held.erase(std::next(it).base());
      return;
    }
  }
  detail::report(ViolationClass::kBadUnlock, lock,
                 "unlock of a node lock this thread does not hold "
                 "(unlock-without-lock or cross-thread unlock)",
                 loc);
}

// ── Hooks wired into the tree's traversal paths and the node pool ─────

// A node dereference is legal inside a read-side critical section, under at
// least one node lock (the updater discipline: lock, then validate), or in
// a declared-quiescent scope. Nodes carrying a pool canary are additionally
// lifetime-checked (violation class (e)).
template <typename Node>
inline void on_node_access(
    const Node* node,
    const std::source_location& loc = std::source_location::current()) noexcept {
  auto& c = detail::ctx();
  if (c.read_depth == 0 && c.held_locks.empty() && c.quiescent_depth == 0) {
    detail::report(ViolationClass::kDerefOutsideReadSection, node,
                   "node dereference outside any read-side critical "
                   "section, node lock or quiescent scope",
                   loc);
  }
  if constexpr (requires { node->check_canary; }) {
    const std::uint64_t canary = node->check_canary;
    if (canary == kFreeCanary) {
      detail::report(ViolationClass::kUseAfterReclaim, node,
                     "dereference of a node already reclaimed to the pool",
                     loc);
    } else if (canary != kLiveCanary) {
      detail::report(ViolationClass::kUseAfterReclaim, node,
                     "node canary trampled (wild write or use of a slot "
                     "that was never pool-allocated)",
                     loc);
    }
  }
}

// Context-only variant for *updater-side header reads* (generation, marked,
// child identity compares in validate): the type-stable pool explicitly
// permits these on a recycled slot — the generation check is what detects
// staleness — so the lifetime canary must not be consulted, only the
// lock/critical-section context.
template <typename Node>
inline void on_node_header_access(
    const Node* node,
    const std::source_location& loc = std::source_location::current()) noexcept {
  auto& c = detail::ctx();
  if (c.read_depth == 0 && c.held_locks.empty() && c.quiescent_depth == 0) {
    detail::report(ViolationClass::kDerefOutsideReadSection, node,
                   "node header read outside any read-side critical "
                   "section, node lock or quiescent scope",
                   loc);
  }
}

// retire()/recycle() of a node that was never marked: by Lemma 1 only
// marked nodes become unreachable, so an unmarked retiree is still wired
// into the tree — reclaiming it hands readers a dangling pointer.
inline void on_retire(
    const void* node, bool marked,
    const std::source_location& loc = std::source_location::current()) noexcept {
  if (!marked) {
    detail::report(ViolationClass::kRetireReachable, node,
                   "retire of an unmarked (still reachable) node — "
                   "retire-before-unlink",
                   loc);
  }
}

// Pool-side lifetime transitions for the canary protocol.
template <typename Node>
inline void on_pool_recycle(
    Node* node,
    const std::source_location& loc = std::source_location::current()) noexcept {
  if constexpr (requires { node->check_canary; }) {
    if (node->check_canary == kFreeCanary) {
      detail::report(ViolationClass::kUseAfterReclaim, node,
                     "double recycle of a pooled node", loc);
    }
    node->check_canary = kFreeCanary;
  }
}

template <typename Node>
inline void on_pool_allocate(
    Node* node, bool from_free_list,
    const std::source_location& loc = std::source_location::current()) noexcept {
  if constexpr (requires { node->check_canary; }) {
    if (from_free_list && node->check_canary != kFreeCanary) {
      detail::report(ViolationClass::kUseAfterReclaim, node,
                     "free-list node canary trampled while on the free "
                     "list (write after reclaim)",
                     loc);
    }
    node->check_canary = kLiveCanary;
  }
}

// ── Scoped annotations ────────────────────────────────────────────────

// Blesses synchronize-while-holding-node-locks for a scope. The two-child
// delete (paper Lines 57-83) holds up to five node locks across its grace
// period; that is deadlock-free *because Citrus readers acquire no locks*,
// an invariant the caller asserts by opening this scope.
class AllowSyncWithHeldLocks {
 public:
  AllowSyncWithHeldLocks() noexcept { ++detail::ctx().sync_with_locks_allowed; }
  ~AllowSyncWithHeldLocks() { --detail::ctx().sync_with_locks_allowed; }
  AllowSyncWithHeldLocks(const AllowSyncWithHeldLocks&) = delete;
  AllowSyncWithHeldLocks& operator=(const AllowSyncWithHeldLocks&) = delete;
};

// Declares the scope quiescent: no concurrent updaters exist, so bare node
// dereferences (destructors, check_structure, for_each_quiescent) are not
// violations of obligation (a).
class ScopedQuiescent {
 public:
  ScopedQuiescent() noexcept { ++detail::ctx().quiescent_depth; }
  ~ScopedQuiescent() { --detail::ctx().quiescent_depth; }
  ScopedQuiescent(const ScopedQuiescent&) = delete;
  ScopedQuiescent& operator=(const ScopedQuiescent&) = delete;
};

// Introspection for tests.
inline std::uint32_t read_depth() noexcept { return detail::ctx().read_depth; }
inline std::size_t held_lock_count() noexcept {
  return detail::ctx().held_locks.size();
}

#else  // !CITRUS_RCU_CHECK — every hook is an empty inline the optimizer
       // removes; the scoped annotations are empty types.

inline void on_read_lock(const void*) noexcept {}
inline void on_read_unlock(const void*) noexcept {}
inline void on_synchronize(const void*) noexcept {}
inline void on_gp_start(const void*) noexcept {}
inline void on_gp_wait(const void*) noexcept {}
inline void on_node_lock(const void*) noexcept {}
inline void on_node_unlock(const void*) noexcept {}
template <typename Node>
inline void on_node_access(const Node*) noexcept {}
template <typename Node>
inline void on_node_header_access(const Node*) noexcept {}
inline void on_retire(const void*, bool) noexcept {}
template <typename Node>
inline void on_pool_recycle(Node*) noexcept {}
template <typename Node>
inline void on_pool_allocate(Node*, bool) noexcept {}

// Non-defaulted (but empty) constructors keep -Wunused-variable quiet at
// annotation sites without [[maybe_unused]] noise.
class AllowSyncWithHeldLocks {
 public:
  AllowSyncWithHeldLocks() noexcept {}
  AllowSyncWithHeldLocks(const AllowSyncWithHeldLocks&) = delete;
  AllowSyncWithHeldLocks& operator=(const AllowSyncWithHeldLocks&) = delete;
};

class ScopedQuiescent {
 public:
  ScopedQuiescent() noexcept {}
  ScopedQuiescent(const ScopedQuiescent&) = delete;
  ScopedQuiescent& operator=(const ScopedQuiescent&) = delete;
};

inline std::uint32_t read_depth() noexcept { return 0; }
inline std::size_t held_lock_count() noexcept { return 0; }

#endif  // CITRUS_RCU_CHECK

}  // namespace citrus::check
