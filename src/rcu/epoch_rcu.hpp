// Epoch-based RCU domain.
//
// A third grace-period detector, in the style of Fraser's epoch-based
// reclamation (the paper cites it as the inspiration for its new RCU:
// "we re-implemented the subset of the RCU API used in Citrus, in a manner
// similar to epoch-based reclamation [11]"). Included as an additional
// comparator for bench/ablation_rcu_domain: it shares the lock-free
// synchronizer property with CounterFlagRcu but pins a *global* epoch
// instead of bumping a per-thread counter, which makes synchronize a single
// fetch_add on shared state (a different contention trade-off: readers stay
// as cheap, but concurrent synchronizers all hit one cache line once).
//
// Protocol. A global epoch counter starts at 1. A reader's outermost
// read_lock publishes the current epoch in its per-thread word (0 =
// quiescent). synchronize advances the epoch from E to E+1 and waits until
// no reader is pinned at an epoch <= E; any such reader's section began
// before the advance, and any section that begins afterwards pins E+1 or
// later and need not be waited for — exactly the RCU property.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "rcu/gp_seq.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/registry.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace citrus::rcu {

struct EpochRecord : RecordCommon<EpochRecord> {
  // 0 = quiescent, otherwise the epoch this thread's section pinned.
  sync::Padded<std::atomic<std::uint64_t>> word;

  void reset_for_reuse() {
    word->store(0, std::memory_order_relaxed);
    nest = 0;
    read_sections = 0;
  }
};

class EpochRcu : public DomainBase<EpochRcu, EpochRecord> {
 public:
  using Record = EpochRecord;

  CITRUS_RCU_READ_LOCK_FN void read_lock() noexcept {
    check::on_read_lock(this);
    Record& r = self();
    if (r.nest++ == 0) {
      r.word->store(epoch_.load(std::memory_order_relaxed),
                    std::memory_order_seq_cst);
      // rcu-lint: allow (annotated injection hook, not a node access).
      fault::inject_stall(fault::Site::kReaderStall);
    }
  }

  CITRUS_RCU_READ_UNLOCK_FN void read_unlock() noexcept {
    check::on_read_unlock(this);
    Record& r = self();
    assert(r.nest > 0 && "read_unlock without matching read_lock");
    if (--r.nest == 0) {
      ++r.read_sections;
      r.word->store(0, std::memory_order_release);
    }
  }

  // Shares grace periods exactly like CounterFlagRcu: concurrent
  // synchronizers elect one leader per grace period via gp_seq; only the
  // leader advances the epoch and scans (rcu/gp_seq.hpp). A sequential
  // caller still leads every time, so the epoch advances once per call in
  // single-threaded use.
  CITRUS_RCU_SYNCHRONIZE_FN void synchronize() noexcept {
    check::on_synchronize(this);
    assert(!in_read_section() &&
           "synchronize() inside a read-side critical section deadlocks");
    count_synchronize();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    gp_.drive(gp_.snap(), [this] { scan_readers(); });
  }

  // Deferred grace periods (gp_poll_domain) — see counter_flag_rcu.hpp.
  CITRUS_RCU_GP_START_FN GpCookie start_grace_period() noexcept {
    check::on_gp_start(this);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return gp_.snap();
  }
  bool poll(GpCookie cookie) const noexcept { return gp_.done(cookie); }
  CITRUS_RCU_SYNCHRONIZE_FN void synchronize(GpCookie cookie) noexcept {
    check::on_gp_wait(this);
    assert(!in_read_section() &&
           "waiting on a grace period inside a read-side critical section "
           "deadlocks");
    gp_.drive(cookie, [this] { scan_readers(); });
  }

  std::uint64_t grace_periods_started() const noexcept {
    return gp_.started();
  }
  std::uint64_t grace_periods_shared() const noexcept { return gp_.shared(); }

  std::uint64_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  std::uint64_t gp_sequence() const noexcept { return gp_.current(); }

  // Diagnostic snapshot for the stall watchdog (rcu/stall.hpp): every
  // occupied record pinning an epoch (word != 0), with the pinned value.
  std::vector<ReaderSlot> snapshot_active_readers() const {
    std::vector<ReaderSlot> out;
    std::size_t index = 0;
    registry_.for_each_occupied([&out, &index](Record& r) {
      const std::uint64_t w = r.word->load(std::memory_order_acquire);
      if (w != 0) out.push_back(ReaderSlot{index, w});
      ++index;
    });
    return out;
  }

 private:
  bool in_read_section() const noexcept {
    const Record* me = find_record();
    return me != nullptr && me->nest != 0;
  }

  // Leader-only (gp_seq exclusivity), after the leader's sampling fence.
  void scan_readers() noexcept {
    // Sections pinned at or below `old_epoch` predate this grace period.
    const std::uint64_t old_epoch =
        epoch_.fetch_add(1, std::memory_order_acq_rel);
    // No self-skip needed: the leader is outside any section (asserted at
    // the call sites), so its own word is 0 and the loop breaks at once.
    registry_.for_each_occupied([old_epoch](Record& r) {
      sync::Backoff bo;
      for (;;) {
        const std::uint64_t w = r.word->load(std::memory_order_acquire);
        if (w == 0 || w > old_epoch) break;
        bo.pause();
      }
    });
  }

  GpSeq gp_;
  alignas(sync::kDestructiveInterference) std::atomic<std::uint64_t> epoch_{1};
};

static_assert(rcu_domain<EpochRcu>);
static_assert(gp_poll_domain<EpochRcu>);

}  // namespace citrus::rcu
