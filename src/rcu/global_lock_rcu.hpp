// A reimplementation of the *standard* user-space RCU scheme of Desnoyers,
// McKenney, Stern, Dagenais and Walpole ("User-level implementations of
// Read-Copy Update", IEEE TPDS 2012) — specifically the memory-barrier
// flavour (urcu-mb) whose synchronize_rcu serializes grace periods behind a
// single global mutex and performs a two-phase flip of a global grace-period
// counter.
//
// This is the implementation the paper found "ill-suited for workloads in
// which many updates concurrently synchronize through it" (Section 5,
// Figure 8, left): with many concurrent updaters every two-child delete
// queues behind the same mutex and pays two full reader-scan phases, so
// throughput collapses. We build it faithfully so Figure 8 can be
// regenerated without the external liburcu dependency.
//
// Protocol recap. A global counter gp_ctr carries a phase bit. A reader's
// outermost rcu_read_lock stores the current gp_ctr snapshot into its
// per-thread word (nonzero = active, and the snapshot records the phase the
// section started in); the outermost rcu_read_unlock stores 0. A grace
// period, executed under the global lock, flips the phase bit and waits for
// every reader to be quiescent or to be in the *new* phase — twice. Two
// flips are needed because a reader may fetch gp_ctr, be preempted, and
// publish a stale phase after the flip; the classic two-phase argument
// bounds that staleness to one phase.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/registry.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace citrus::rcu {

struct GlobalLockRecord : RecordCommon<GlobalLockRecord> {
  // 0 = quiescent; otherwise a gp_ctr snapshot (phase bit + base count).
  sync::Padded<std::atomic<std::uint64_t>> word;

  void reset_for_reuse() {
    word->store(0, std::memory_order_relaxed);
    nest = 0;
    read_sections = 0;
  }
};

class GlobalLockRcu : public DomainBase<GlobalLockRcu, GlobalLockRecord> {
 public:
  using Record = GlobalLockRecord;

  // Base count 1 keeps gp_ctr nonzero in both phases, so a reader snapshot
  // is always distinguishable from the quiescent 0.
  static constexpr std::uint64_t kBase = 1;
  static constexpr std::uint64_t kPhase = 1ull << 32;

  CITRUS_RCU_READ_LOCK_FN void read_lock() noexcept {
    check::on_read_lock(this);
    Record& r = self();
    if (r.nest++ == 0) {
      r.word->store(gp_ctr_.load(std::memory_order_relaxed),
                    std::memory_order_seq_cst);
      // rcu-lint: allow (annotated injection hook, not a node access).
      fault::inject_stall(fault::Site::kReaderStall);
    }
  }

  CITRUS_RCU_READ_UNLOCK_FN void read_unlock() noexcept {
    check::on_read_unlock(this);
    Record& r = self();
    assert(r.nest > 0 && "read_unlock without matching read_lock");
    if (--r.nest == 0) {
      ++r.read_sections;
      r.word->store(0, std::memory_order_release);
    }
  }

  CITRUS_RCU_SYNCHRONIZE_FN void synchronize() noexcept {
    check::on_synchronize(this);
    Record* me = find_record();
    assert((me == nullptr || me->nest == 0) &&
           "synchronize() inside a read-side critical section deadlocks");
    count_synchronize();
    // The global lock: this is exactly the serialization point whose cost
    // Figure 8 exposes. Concurrent synchronize_rcu calls line up here.
    std::lock_guard<std::mutex> guard(gp_lock_);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (int flip = 0; flip < 2; ++flip) {
      const std::uint64_t new_gp =
          gp_ctr_.fetch_xor(kPhase, std::memory_order_acq_rel) ^ kPhase;
      registry_.for_each_occupied([me, new_gp](Record& r) {
        if (&r == me) return;
        sync::Backoff bo;
        for (;;) {
          const std::uint64_t w = r.word->load(std::memory_order_acquire);
          // Quiescent, or started after the flip (same phase as new_gp).
          if (w == 0 || ((w ^ new_gp) & kPhase) == 0) break;
          bo.pause();
        }
      });
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

 private:
  alignas(sync::kDestructiveInterference) std::atomic<std::uint64_t> gp_ctr_{
      kBase};
  alignas(sync::kDestructiveInterference) std::mutex gp_lock_;
};

static_assert(rcu_domain<GlobalLockRcu>);

}  // namespace citrus::rcu
