// Typed RCU pointer discipline — the compile-time half of the static
// analyzer (tools/rcu_analyze.py reads the other half out of the AST).
//
// The paper's correctness argument rests on invariants that no finite test
// run can exhaustively witness: every dereference of a tree node happens
// inside a read-side critical section or under the node's lock, and every
// pointer swing that publishes structure is a release-ordered store. The
// runtime rcucheck layer (src/check/) verifies those obligations on
// *executed* paths; this header moves the first line of defense into the
// type system, the way the kernel's `__rcu` address-space annotation plus
// sparse does:
//
//   guarded_ptr<T>    — an RCU-protected pointer *cell* (the thing a
//                       `T* __rcu` field is in the kernel): the only
//                       mutable pointer state readers traverse without
//                       locks. It wraps std::atomic<T*> and exposes no raw
//                       load/store: reads go through load_protected()
//                       (acquire; returns a protected_ptr handle) or
//                       load_locked() (for writers holding the owning
//                       lock), and writes go through publish() — release
//                       by construction, so "publish site that is not a
//                       release-ordered store" becomes unwritable rather
//                       than merely detectable.
//   protected_ptr<T>  — the borrowed handle a guarded load returns. It is
//                       the only deref-able face of protected state, and it
//                       is valid exactly as long as the protection region
//                       (read-side critical section or lock) it was loaded
//                       under. The analyzer tracks values of this type per
//                       function and flags derefs outside any region and
//                       handles escaping their region (returned, stored to
//                       a field/global, captured by a deferred callback).
//   published_ptr<T>  — a single-publisher entry slot (a tree root, a
//                       snapshot head): publish()/load() only, no CAS. The
//                       split exists so the analyzer can tell an interior
//                       cell, whose writers must hold a lock, from an
//                       entry point that is published once and then only
//                       read.
//
// Escape hatches are deliberate, explicit and greppable:
//   unguarded_load()/unguarded_store() — quiescent-only access (teardown,
//     pre-publication construction, slot scrubbing after a grace period).
//     The analyzer flags them outside functions annotated quiescent.
//   protected_ptr::escape() — carry a pointer beyond its protection
//     region. Citrus does this on purpose: `get` hands the search result
//     to the locking phase, where generation validation — not the expired
//     read section — re-establishes safety (DESIGN.md §7). Every escape()
//     call site needs an `// rcu-analyze: allow(...)` annotation naming
//     the proof obligation that replaces the region.
//
// All wrappers are zero-cost: protected_ptr is a trivially copyable raw
// pointer, guarded_ptr/published_ptr are exactly std::atomic<T*>, and
// every method is a single inlined load/store/RMW with the same memory
// order the open-coded atomics used before this layer existed.
//
// The [[clang::annotate]] tags (compiled only under clang; GCC would warn
// on the unknown attribute namespace and CI builds with -Werror) are what
// the libclang backend of tools/rcu_analyze.py keys on; the fallback
// frontend keys on the type and method names instead. Both grammars are
// defined once, in tools/rcu_annotations.py.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>

// Type/function tags for the libclang analyzer backend. Expand to nothing
// on non-clang compilers (GCC warns on unknown attribute namespaces, and
// CI runs -Werror).
#if defined(__clang__)
#define CITRUS_RCU_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define CITRUS_RCU_ANNOTATE(tag)
#endif

// Function-role tags: mark the protocol entry points of every RCU domain
// so the analyzer recognizes protection regions across all four backends
// (counter-flag, flat, epoch, global-lock, QSBR) without a hardcoded
// function list.
#define CITRUS_RCU_READ_LOCK_FN CITRUS_RCU_ANNOTATE("rcu_read_lock")
#define CITRUS_RCU_READ_UNLOCK_FN CITRUS_RCU_ANNOTATE("rcu_read_unlock")
// A function that blocks for (or may block for) a grace period; calling
// one from inside a read-side critical section is a self-deadlock.
#define CITRUS_RCU_SYNCHRONIZE_FN CITRUS_RCU_ANNOTATE("rcu_synchronize")
// Non-blocking grace-period bookkeeping (start/poll): legal anywhere.
#define CITRUS_RCU_GP_START_FN CITRUS_RCU_ANNOTATE("rcu_gp_start")

namespace citrus::rcu {

template <typename T>
class guarded_ptr;
template <typename T>
class published_ptr;

// Borrowed handle to RCU-protected state. Valid only within the protection
// region (read-side critical section or owning lock) it was loaded under;
// the static analyzer enforces that scoping, the type system enforces that
// protected state has no other deref-able face.
template <typename T>
class CITRUS_RCU_ANNOTATE("rcu_protected") protected_ptr {
 public:
  constexpr protected_ptr() noexcept = default;
  constexpr protected_ptr(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  // Forming a handle from a raw pointer is a claim that the pointer is
  // currently protected (a node reached under a held lock, `this` inside a
  // locked method). Explicit so the claim is visible at the call site.
  explicit constexpr protected_ptr(T* p) noexcept : p_(p) {}

  // Qualification-adding conversion (Node → const Node), same region.
  template <typename U>
    requires std::convertible_to<U*, T*>
  constexpr protected_ptr(protected_ptr<U> other) noexcept  // NOLINT
      : p_(other.get()) {}

  T& operator*() const noexcept { return *p_; }
  T* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  // Raw view for same-region plumbing: pointer comparisons, passing to a
  // function that itself runs inside the caller's region. Using the result
  // beyond the region is an escape and belongs to escape() below.
  T* get() const noexcept { return p_; }

  // Deliberate region escape — the paper's own idiom: `get` returns its
  // search result to the locking phase, where generation validation (not
  // the expired read section) re-establishes safety. The analyzer flags
  // every call site of escape() unless an `// rcu-analyze: allow(...)`
  // annotation states the replacement proof obligation.
  T* escape() const noexcept { return p_; }

  friend constexpr bool operator==(protected_ptr a, protected_ptr b) noexcept {
    return a.p_ == b.p_;
  }
  friend constexpr bool operator==(protected_ptr a, const T* b) noexcept {
    return a.p_ == b;
  }
  friend constexpr bool operator==(protected_ptr a, std::nullptr_t) noexcept {
    return a.p_ == nullptr;
  }

 private:
  T* p_ = nullptr;
};

// An RCU-protected pointer cell: the interior links readers traverse
// without locks (Citrus child pointers, the reclaimer's retired-list head,
// the registry's group list). All mutation is release-ordered by
// construction; all raw access is a named, greppable escape hatch.
template <typename T>
class CITRUS_RCU_ANNOTATE("rcu_guarded") guarded_ptr {
 public:
  constexpr guarded_ptr() noexcept : cell_(nullptr) {}
  explicit guarded_ptr(T* init) noexcept : cell_(init) {}
  guarded_ptr(const guarded_ptr&) = delete;
  guarded_ptr& operator=(const guarded_ptr&) = delete;

  // ── Read side ────────────────────────────────────────────────────────
  // Acquire-load under a protection region; the kernel's rcu_dereference.
  // `mo` exists for callers that need seq_cst (the registry scan); it can
  // only strengthen the default.
  protected_ptr<T> load_protected(
      std::memory_order mo = std::memory_order_acquire) const noexcept {
    return protected_ptr<T>(cell_.load(mo));
  }

  // ── Update side, owning lock held ────────────────────────────────────
  // Child links of a locked node are stable (all writers lock), so the
  // lock — not a read section — is the protection region here. Returns a
  // raw pointer: validity outlives no region transition, it is bounded by
  // the lock the caller already holds.
  T* load_locked(std::memory_order mo = std::memory_order_acquire)
      const noexcept {
    return cell_.load(mo);
  }

  // Release-ordered pointer swing — the only way to publish through this
  // cell, so an insufficiently ordered publish site cannot be written.
  void publish(T* v) noexcept { cell_.store(v, std::memory_order_release); }
  void publish(protected_ptr<T> v) noexcept { publish(v.get()); }

  // Lock-free publish for CAS-based producers (the reclaimer's MPSC
  // stack, the registry's group list). Success order defaults to release
  // — the publish contract — and can only be strengthened (the registry
  // publishes groups seq_cst so scans totally order against claims);
  // failure is a relaxed reload into `expected`.
  bool compare_exchange_weak(
      T*& expected, T* desired,
      std::memory_order success = std::memory_order_release) noexcept {
    return cell_.compare_exchange_weak(expected, desired, success,
                                       std::memory_order_relaxed);
  }

  // Detach the entire published chain, transferring exclusive ownership
  // to the caller (MPSC consumer side). Acquire pairs with the producers'
  // release publishes; the raw result is owned, not borrowed.
  T* exchange_detach(T* v = nullptr) noexcept {
    return cell_.exchange(v, std::memory_order_acquire);
  }

  // ── Quiescent escape hatches ─────────────────────────────────────────
  // For single-owner phases only: construction before the structure is
  // reachable, teardown after all threads joined, slot scrubbing after a
  // grace period. Greppable; the analyzer flags uses outside functions
  // annotated `// rcu-analyze: quiescent(...)`.
  T* unguarded_load(
      std::memory_order mo = std::memory_order_relaxed) const noexcept {
    return cell_.load(mo);
  }
  void unguarded_store(
      T* v, std::memory_order mo = std::memory_order_relaxed) noexcept {
    cell_.store(v, mo);
  }

 private:
  std::atomic<T*> cell_;
};

// Single-publisher entry slot: published (release) at most a handful of
// times by one thread at a time, read (acquire) by everyone. No CAS — a
// cell that needs one is interior mutable state and belongs in
// guarded_ptr. The analyzer treats load() exactly like a guarded load.
template <typename T>
class CITRUS_RCU_ANNOTATE("rcu_published") published_ptr {
 public:
  constexpr published_ptr() noexcept : cell_(nullptr) {}
  explicit published_ptr(T* init) noexcept : cell_(init) {}
  published_ptr(const published_ptr&) = delete;
  published_ptr& operator=(const published_ptr&) = delete;

  void publish(T* v) noexcept { cell_.store(v, std::memory_order_release); }

  protected_ptr<T> load(
      std::memory_order mo = std::memory_order_acquire) const noexcept {
    return protected_ptr<T>(cell_.load(mo));
  }

  // Quiescent escape hatches — same contract as guarded_ptr's.
  T* unguarded_load(
      std::memory_order mo = std::memory_order_relaxed) const noexcept {
    return cell_.load(mo);
  }
  void unguarded_store(
      T* v, std::memory_order mo = std::memory_order_relaxed) noexcept {
    cell_.store(v, mo);
  }

 private:
  std::atomic<T*> cell_;
};

}  // namespace citrus::rcu
