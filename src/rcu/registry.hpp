// Thread registry shared by every RCU domain implementation.
//
// An RCU domain must be able to enumerate the reader state of every thread
// that may be inside a read-side critical section. Following the user-space
// RCU design of Desnoyers et al., each participating thread owns a *record*
// (one padded cache line of reader state); records live in an intrusive
// lock-free list owned by the domain and are recycled — never freed — until
// the domain itself is destroyed, so synchronize() can walk the list without
// any lock and without use-after-free concerns.
//
// Threads participate explicitly through an RAII `Registration` (mirroring
// urcu's rcu_register_thread/rcu_unregister_thread). The registration caches
// the record in thread-local storage keyed by a never-reused 64-bit domain
// id, which makes the hot-path lookup (`self()`) a short scan of a tiny
// thread-local vector and makes stale cache entries from destroyed domains
// harmless by construction.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "rcu/rcu.hpp"
#include "sync/backoff.hpp"

namespace citrus::rcu {

namespace detail {

// Monotone source of domain ids. Ids are never reused, so a thread-local
// cache entry belonging to a destroyed domain can never be mistaken for an
// entry of a live one.
inline std::uint64_t next_domain_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

struct TlsSlot {
  std::uint64_t domain_id;
  void* record;
};

// One small vector per thread, shared across all domain types. Entries are
// pushed by Registration construction and erased by its destruction, so the
// vector's size is bounded by the number of live registrations of the
// calling thread (almost always 1).
inline std::vector<TlsSlot>& tls_slots() {
  thread_local std::vector<TlsSlot> slots;
  return slots;
}

}  // namespace detail

// Intrusive lock-free registry of per-thread records. `Record` must have:
//   std::atomic<bool> in_use;
//   Record* next;                 // registry linkage, set once
//   void reset_for_reuse();       // return reader state to quiescent
template <typename Record>
class ThreadRegistry {
 public:
  ThreadRegistry() = default;
  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  ~ThreadRegistry() {
    Record* r = head_.load(std::memory_order_acquire);
    while (r != nullptr) {
      Record* next = r->next;
      delete r;
      r = next;
    }
  }

  // Returns a quiescent record owned by the calling thread until release().
  Record* acquire() {
    // Try to recycle a record released by an exited thread.
    for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      bool expected = false;
      if (!r->in_use.load(std::memory_order_relaxed) &&
          r->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        r->reset_for_reuse();
        return r;
      }
    }
    auto* r = new Record();
    r->in_use.store(true, std::memory_order_relaxed);
    Record* old_head = head_.load(std::memory_order_relaxed);
    do {
      r->next = old_head;
    } while (!head_.compare_exchange_weak(old_head, r,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    return r;
  }

  void release(Record* r) {
    r->reset_for_reuse();
    r->in_use.store(false, std::memory_order_release);
  }

  // Visits every record ever acquired (including currently unused ones,
  // whose state is quiescent). Safe concurrently with acquire/release.
  template <typename F>
  void for_each(F&& f) const {
    for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      f(*r);
    }
  }

  // Number of records currently allocated (used + recyclable).
  std::size_t allocated() const {
    std::size_t n = 0;
    for_each([&n](const Record&) { ++n; });
    return n;
  }

 private:
  std::atomic<Record*> head_{nullptr};
};

// CRTP base providing domain identity, registration and the thread-local
// record lookup. `Derived` must define `Record` (satisfying the
// ThreadRegistry contract) and the read/synchronize protocol on top of it.
template <typename Derived, typename Record>
class DomainBase {
 public:
  DomainBase() : id_(detail::next_domain_id()) {}
  DomainBase(const DomainBase&) = delete;
  DomainBase& operator=(const DomainBase&) = delete;

  ~DomainBase() {
    assert(registrations_.load(std::memory_order_relaxed) == 0 &&
           "RCU domain destroyed while threads are still registered");
  }

  // RAII participation token. A thread must hold one Registration per
  // domain it touches, for as long as it touches it.
  class Registration {
   public:
    explicit Registration(Derived& domain) : domain_(&domain) {
      record_ = domain.registry_.acquire();
      domain.registrations_.fetch_add(1, std::memory_order_relaxed);
      detail::tls_slots().push_back({domain.id_, record_});
    }

    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

    ~Registration() {
      // Reclaim anything this thread deferred before the record is recycled.
      if (!record_->retired.empty()) {
        domain_->synchronize();
        for (const Retired& e : record_->retired) e.fn(e.ptr, e.ctx);
        record_->retired.clear();
      }
      auto& slots = detail::tls_slots();
      for (auto it = slots.begin(); it != slots.end(); ++it) {
        if (it->domain_id == domain_->id_ && it->record == record_) {
          slots.erase(it);
          break;
        }
      }
      domain_->registry_.release(record_);
      domain_->registrations_.fetch_sub(1, std::memory_order_relaxed);
    }

    Record& record() noexcept { return *record_; }

   private:
    Derived* domain_;
    Record* record_;
  };

  std::uint64_t id() const noexcept { return id_; }

  // --- Deferred reclamation -------------------------------------------
  //
  // retire() queues fn(ptr, ctx) on the calling thread's record; when the
  // queue reaches retire_batch() entries, one grace period is awaited and
  // the whole batch is reclaimed (everything in the batch was retired
  // before the synchronize, so a single grace period covers it all).
  // This is the mechanism the paper lists as the primary RCU use case
  // (memory reclamation) and its own future-work item for Citrus.

  void retire(void* ptr, void (*fn)(void*, void*), void* ctx) {
    Record& r = self();
    r.retired.push_back(Retired{ptr, fn, ctx});
    // Flushing needs a grace period, which would deadlock against our own
    // read-side critical section — retire() is legal inside one, so defer
    // the flush until the next retire outside (or Registration teardown).
    if (r.retired.size() >= retire_batch_ && r.nest == 0) flush_retired();
  }

  // Waits for a grace period and reclaims this thread's entire queue.
  // Must not be called from inside a read-side critical section.
  void flush_retired() {
    Record& r = self();
    if (r.retired.empty()) return;
    assert(r.nest == 0 &&
           "flush_retired() inside a read-side critical section would "
           "deadlock on the grace period");
    static_cast<Derived*>(this)->synchronize();
    for (const Retired& e : r.retired) e.fn(e.ptr, e.ctx);
    r.retired.clear();
  }

  // Flush if the batch threshold is reached and we are not inside a
  // read-side critical section. Structures whose retire() calls happen
  // inside read sections call this on their way out.
  void maybe_flush_retired() {
    Record& r = self();
    if (r.nest == 0 && r.retired.size() >= retire_batch_) flush_retired();
  }

  std::size_t retire_batch() const noexcept { return retire_batch_; }
  void set_retire_batch(std::size_t n) noexcept {
    retire_batch_ = n == 0 ? 1 : n;
  }

  // Pending deferred frees of the calling thread (testing/introspection).
  std::size_t pending_retired() const {
    const Record* r = find_record();
    return r == nullptr ? 0 : r->retired.size();
  }

  // Total completed grace periods driven by this domain.
  std::uint64_t synchronize_calls() const noexcept {
    return sync_calls_.load(std::memory_order_relaxed);
  }

  // Number of live registrations across all threads.
  std::uint64_t registrations() const noexcept {
    return registrations_.load(std::memory_order_relaxed);
  }

  bool thread_is_registered() const noexcept { return find_record() != nullptr; }

 protected:
  // Hot path: record of the calling thread. Scans the (tiny) thread-local
  // slot vector; asserts the thread registered.
  Record& self() const noexcept {
    Record* r = find_record();
    assert(r != nullptr &&
           "thread used an RCU domain without holding a Registration");
    return *r;
  }

  Record* find_record() const noexcept {
    for (const auto& slot : detail::tls_slots()) {
      if (slot.domain_id == id_) return static_cast<Record*>(slot.record);
    }
    return nullptr;
  }

  void count_synchronize() noexcept {
    sync_calls_.fetch_add(1, std::memory_order_relaxed);
  }

  ThreadRegistry<Record> registry_;

 private:
  friend class Registration;
  const std::uint64_t id_;
  std::atomic<std::uint64_t> registrations_{0};
  std::atomic<std::uint64_t> sync_calls_{0};
  std::size_t retire_batch_ = 128;
};

}  // namespace citrus::rcu
