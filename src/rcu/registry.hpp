// Thread registry shared by every RCU domain implementation.
//
// An RCU domain must be able to enumerate the reader state of every thread
// that may be inside a read-side critical section. Following the user-space
// RCU design of Desnoyers et al., each participating thread owns a *record*
// (reader state padded against false sharing); records are recycled — never
// freed — until the domain itself is destroyed, so synchronize() can walk
// them without any lock and without use-after-free concerns.
//
// Layout (new in the scalable-grace-period rework): records live in
// fixed-size *groups* of kGroupSize slots. Each group carries two summary
// words on their own padded header line:
//
//   occupied    — bit i set while slot i is held by a live Registration.
//                 Maintained here (acquire/release); lets a scan skip
//                 whole groups of exited threads.
//   active_hint — bit i set when slot i *may* be inside (or about to
//                 enter) a read-side critical section. Maintained by the
//                 hierarchical domains (counter_flag_rcu.hpp) via the
//                 record's `resummarize` handshake; an over-approximation,
//                 so scans may trust a clear bit but must re-validate a
//                 set one against the record's own word. Domains that do
//                 not use the hierarchy simply never touch it.
//
// Groups form an append-only lock-free list (a new group is published only
// when every existing group is fully occupied), so iteration needs no lock
// and sees every group that existed when it started.
//
// Threads participate explicitly through an RAII `Registration` (mirroring
// urcu's rcu_register_thread/rcu_unregister_thread). The registration caches
// the record in thread-local storage keyed by a never-reused 64-bit domain
// id, which makes the hot-path lookup (`self()`) a short scan of a tiny
// thread-local vector and makes stale cache entries from destroyed domains
// harmless by construction.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "rcu/guarded_ptr.hpp"
#include "rcu/rcu.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace citrus::rcu {

namespace detail {

// Monotone source of domain ids. Ids are never reused, so a thread-local
// cache entry belonging to a destroyed domain can never be mistaken for an
// entry of a live one.
inline std::uint64_t next_domain_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

struct TlsSlot {
  std::uint64_t domain_id;
  void* record;
};

// One small vector per thread, shared across all domain types. Entries are
// pushed by Registration construction and erased by its destruction, so the
// vector's size is bounded by the number of live registrations of the
// calling thread (almost always 1).
inline std::vector<TlsSlot>& tls_slots() {
  thread_local std::vector<TlsSlot> slots;
  return slots;
}

}  // namespace detail

// Records per group. 8 keeps a group's reader words within a few pages
// while letting one 64-bit summary word cover up to 64 slots if ever
// retuned; the summary fan-out is what matters, not the exact value.
inline constexpr std::size_t kGroupSize = 8;

// Grouped lock-free registry of per-thread records. `Record` must derive
// from RecordCommon (rcu.hpp) and provide reset_for_reuse(), returning
// reader state to quiescent.
template <typename Record>
class GroupedRegistry {
  static_assert(kGroupSize >= 1 && kGroupSize <= 64);
  static constexpr std::uint64_t kFullMask =
      kGroupSize == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << kGroupSize) - 1;

 public:
  struct Group {
    // Summary words alone on a destructive-interference line: scanned by
    // every synchronizer, written only on registration churn and (hint)
    // read-lock slow paths / leader trims.
    struct alignas(sync::kDestructiveInterference) Header {
      std::atomic<std::uint64_t> occupied{0};
      std::atomic<std::uint64_t> active_hint{0};
    };

    Group() {
      for (std::size_t i = 0; i < kGroupSize; ++i) {
        slots[i].group_occupied = &header.occupied;
        slots[i].group_hint = &header.active_hint;
        slots[i].group_bit = std::uint64_t{1} << i;
      }
    }

    Header header;
    Record slots[kGroupSize];
    Group* next = nullptr;  // set once, before publication
  };

  GroupedRegistry() = default;
  GroupedRegistry(const GroupedRegistry&) = delete;
  GroupedRegistry& operator=(const GroupedRegistry&) = delete;

  ~GroupedRegistry() {
    // rcu-analyze: quiescent (domain teardown: DomainBase asserts zero
    // live registrations, so no thread can be traversing the list)
    Group* g = head_.unguarded_load(std::memory_order_acquire);
    while (g != nullptr) {
      Group* next = g->next;
      delete g;
      g = next;
    }
  }

  // Returns a quiescent record owned by the calling thread until release().
  Record* acquire() {
    for (;;) {
      // Groups are immortal once published (freed only by the registry
      // destructor, which requires quiescence), so the borrowed handle
      // may be walked raw without a bounding region.
      // rcu-analyze: allow (append-only immortal list)
      for (Group* g = head_.load_protected().get(); g != nullptr;
           g = g->next) {
        std::uint64_t occ = g->header.occupied.load(std::memory_order_relaxed);
        while (occ != kFullMask) {
          const unsigned i =
              static_cast<unsigned>(std::countr_zero(~occ & kFullMask));
          const std::uint64_t bit = std::uint64_t{1} << i;
          // seq_cst: the new owner's first read_lock word store is
          // po-after this CAS, so a synchronizer whose (seq_cst) occupied
          // load misses the CAS provably fenced before that store — the
          // skipped section began after sampling and needs no wait.
          if (g->header.occupied.compare_exchange_weak(
                  occ, occ | bit, std::memory_order_seq_cst,
                  std::memory_order_relaxed)) {
            return prepare(g->slots[i]);
          }
        }
      }
      // Every published group is full: publish a fresh one with slot 0
      // pre-claimed. If we lose the publication race, retry the scan —
      // the winner's group has free slots.
      auto* g = new Group();
      g->header.occupied.store(1, std::memory_order_relaxed);
      // rcu-analyze: allow (CAS-publish loop: the relaxed initial load
      // only seeds `expected`; the successful exchange publishes seq_cst)
      Group* old_head = head_.unguarded_load(std::memory_order_relaxed);
      do {
        g->next = old_head;
      } while (!head_.compare_exchange_weak(old_head, g,
                                            std::memory_order_seq_cst));
      return prepare(g->slots[0]);
    }
  }

  void release(Record* r) {
    // Quiesce the record, drop its hint bit, then free the slot — in that
    // order, so a new owner (possible only after the occupied bit clears)
    // never races this cleanup. A grace-period leader's concurrent hint
    // restore can only re-set the bit spuriously; hints over-approximate,
    // and the next scan trims it again.
    r->reset_for_reuse();
    r->group_hint->fetch_and(~r->group_bit, std::memory_order_seq_cst);
    r->in_use.store(false, std::memory_order_relaxed);
    r->group_occupied->fetch_and(~r->group_bit, std::memory_order_release);
  }

  // Visits every record slot of every group, including unoccupied ones
  // (whose state is quiescent). Safe concurrently with acquire/release.
  template <typename F>
  void for_each(F&& f) const {
    // rcu-analyze: allow (append-only immortal list)
    for (Group* g = head_.load_protected().get(); g != nullptr;
         g = g->next) {
      for (std::size_t i = 0; i < kGroupSize; ++i) f(g->slots[i]);
    }
  }

  // Visits only records whose occupied bit is set — the flat scan used by
  // the non-hierarchical domains. A slot being released concurrently is
  // either visited (it is quiescent by then anyway) or already skipped.
  template <typename F>
  void for_each_occupied(F&& f) const {
    // seq_cst: orders the scan's list snapshot against slot claims (see
    // acquire()). rcu-analyze: allow (append-only immortal list)
    for (Group* g = head_.load_protected(std::memory_order_seq_cst).get();
         g != nullptr; g = g->next) {
      std::uint64_t occ = g->header.occupied.load(std::memory_order_seq_cst);
      while (occ != 0) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(occ));
        occ &= occ - 1;
        f(g->slots[i]);
      }
    }
  }

  // Group-granular visit for hierarchical scans.
  template <typename F>
  void for_each_group(F&& f) const {
    // rcu-analyze: allow (append-only immortal list; seq_cst as above)
    for (Group* g = head_.load_protected(std::memory_order_seq_cst).get();
         g != nullptr; g = g->next) {
      f(*g);
    }
  }

  // Number of record slots currently allocated (occupied + recyclable).
  std::size_t allocated() const {
    std::size_t n = 0;
    // rcu-analyze: allow (append-only immortal list)
    for (Group* g = head_.load_protected().get(); g != nullptr;
         g = g->next) {
      n += kGroupSize;
    }
    return n;
  }

 private:
  Record* prepare(Record& r) {
    r.reset_for_reuse();
    // The previous owner's hint bit is gone (release() clears it): force
    // the first outermost read_lock to publish the bit by desyncing the
    // repair handshake. This closes the registration race — a leader
    // mid-trim cannot lose a brand-new reader, because that reader repairs
    // its own bit before relying on the fast path.
    r.repair_seen = r.trim_seq.load(std::memory_order_relaxed) - 1;
    r.in_use.store(true, std::memory_order_relaxed);
    return &r;
  }

  // Append-only group list head: CAS-published (seq_cst) by acquire(),
  // walked without locks by every synchronizer scan.
  guarded_ptr<Group> head_;
};

// Backward-compatible alias: the intrusive list is gone, but domain code
// and tests refer to the registry by this name.
template <typename Record>
using ThreadRegistry = GroupedRegistry<Record>;

// CRTP base providing domain identity, registration and the thread-local
// record lookup. `Derived` must define `Record` (satisfying the
// GroupedRegistry contract) and the read/synchronize protocol on top of it.
template <typename Derived, typename Record>
class DomainBase {
 public:
  DomainBase() : id_(detail::next_domain_id()) {}
  DomainBase(const DomainBase&) = delete;
  DomainBase& operator=(const DomainBase&) = delete;

  ~DomainBase() {
    assert(registrations_.load(std::memory_order_relaxed) == 0 &&
           "RCU domain destroyed while threads are still registered");
  }

  // RAII participation token. A thread must hold one Registration per
  // domain it touches, for as long as it touches it.
  class Registration {
   public:
    explicit Registration(Derived& domain) : domain_(&domain) {
      record_ = domain.registry_.acquire();
      domain.registrations_.fetch_add(1, std::memory_order_relaxed);
      detail::tls_slots().push_back({domain.id_, record_});
    }

    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

    ~Registration() {
      // Reclaim anything this thread deferred before the record is recycled.
      if (!record_->retired.empty()) {
        domain_->synchronize();
        for (const Retired& e : record_->retired) e.fn(e.ptr, e.ctx);
        record_->retired.clear();
      }
      auto& slots = detail::tls_slots();
      for (auto it = slots.begin(); it != slots.end(); ++it) {
        if (it->domain_id == domain_->id_ && it->record == record_) {
          slots.erase(it);
          break;
        }
      }
      domain_->registry_.release(record_);
      domain_->registrations_.fetch_sub(1, std::memory_order_relaxed);
    }

    Record& record() noexcept { return *record_; }

   private:
    Derived* domain_;
    Record* record_;
  };

  std::uint64_t id() const noexcept { return id_; }

  // --- Deferred reclamation -------------------------------------------
  //
  // retire() queues fn(ptr, ctx) on the calling thread's record; when the
  // queue reaches retire_batch() entries, one grace period is awaited and
  // the whole batch is reclaimed (everything in the batch was retired
  // before the synchronize, so a single grace period covers it all).
  // This is the mechanism the paper lists as the primary RCU use case
  // (memory reclamation) and its own future-work item for Citrus.

  void retire(void* ptr, void (*fn)(void*, void*), void* ctx) {
    Record& r = self();
    r.retired.push_back(Retired{ptr, fn, ctx});
    // Flushing needs a grace period, which would deadlock against our own
    // read-side critical section — retire() is legal inside one, so defer
    // the flush until the next retire outside (or Registration teardown).
    if (r.retired.size() >= retire_batch_ && r.nest == 0) flush_retired();
  }

  // Waits for a grace period and reclaims this thread's entire queue.
  // Must not be called from inside a read-side critical section.
  void flush_retired() {
    Record& r = self();
    if (r.retired.empty()) return;
    assert(r.nest == 0 &&
           "flush_retired() inside a read-side critical section would "
           "deadlock on the grace period");
    static_cast<Derived*>(this)->synchronize();
    for (const Retired& e : r.retired) e.fn(e.ptr, e.ctx);
    r.retired.clear();
  }

  // Flush if the batch threshold is reached and we are not inside a
  // read-side critical section. Structures whose retire() calls happen
  // inside read sections call this on their way out.
  void maybe_flush_retired() {
    Record& r = self();
    if (r.nest == 0 && r.retired.size() >= retire_batch_) flush_retired();
  }

  std::size_t retire_batch() const noexcept { return retire_batch_; }
  void set_retire_batch(std::size_t n) noexcept {
    retire_batch_ = n == 0 ? 1 : n;
  }

  // Pending deferred frees of the calling thread (testing/introspection).
  std::size_t pending_retired() const {
    const Record* r = find_record();
    return r == nullptr ? 0 : r->retired.size();
  }

  // Total synchronize() calls against this domain. With grace-period
  // sharing this counts *calls*, not scans; see grace_periods_started()
  // on the gp_seq-backed domains for the scan count.
  std::uint64_t synchronize_calls() const noexcept {
    return sync_calls_.load(std::memory_order_relaxed);
  }

  // Number of live registrations across all threads.
  std::uint64_t registrations() const noexcept {
    return registrations_.load(std::memory_order_relaxed);
  }

  bool thread_is_registered() const noexcept { return find_record() != nullptr; }

  // True when the calling thread is inside a read-side critical section
  // of this domain (registered with nest > 0). Consulted by callers that
  // must not block on a grace period from the current context — e.g. the
  // reclaimer's backpressure path falls back to deferred enqueue when the
  // producer is inside a section, where synchronous reclaim would
  // deadlock on the producer's own section.
  bool in_reader_section() const noexcept {
    const Record* r = find_record();
    return r != nullptr && r->nest != 0;
  }

 protected:
  // Hot path: record of the calling thread. Scans the (tiny) thread-local
  // slot vector; asserts the thread registered.
  Record& self() const noexcept {
    Record* r = find_record();
    assert(r != nullptr &&
           "thread used an RCU domain without holding a Registration");
    return *r;
  }

  Record* find_record() const noexcept {
    for (const auto& slot : detail::tls_slots()) {
      if (slot.domain_id == id_) return static_cast<Record*>(slot.record);
    }
    return nullptr;
  }

  void count_synchronize() noexcept {
    sync_calls_.fetch_add(1, std::memory_order_relaxed);
  }

  GroupedRegistry<Record> registry_;

 private:
  friend class Registration;
  const std::uint64_t id_;
  std::atomic<std::uint64_t> registrations_{0};
  std::atomic<std::uint64_t> sync_calls_{0};
  std::size_t retire_batch_ = 128;
};

}  // namespace citrus::rcu
