// Quiescent-state-based RCU (QSBR) — the fourth grace-period detector,
// after the urcu-qsbr flavour of Desnoyers et al., which their TPDS paper
// shows is the cheapest possible read side: rcu_read_lock and
// rcu_read_unlock compile to (almost) nothing, because grace periods are
// detected from *quiescent states* the application promises to pass
// through between read-side critical sections.
//
// Contract (stronger than the other domains — this is QSBR's trade-off):
// every registered thread must either keep passing quiescent states
// (here: every read_unlock of an outermost section counts one, exactly the
// per-operation checkpointing a data-structure adapter provides for free)
// or declare itself offline while it idles or blocks. A registered thread
// that goes quiet while online stalls every grace period.
//
// synchronize() marks the *caller* quiescent for its duration (a thread
// asking for a grace period holds no read-side references by definition —
// urcu-qsbr does the same), so concurrent synchronizers never deadlock
// waiting for each other.
//
// Protocol. Per-thread word = (checkpoint_counter << 1) | online.
//   read_lock (outermost):  nothing but a nesting increment — the thread
//     is online, which already forbids reclamation.
//   read_unlock (outermost): counter++ — a quiescent state.
//   synchronize: go offline; snapshot every other online thread's word;
//     wait until it changes (checkpoint or offline); come back online.
//
// The Citrus tree runs unmodified over this domain: its operations are
// bracketed read sections, and its bounded try-locks guarantee a blocked
// updater restarts (and thus checkpoints) instead of spinning forever.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/registry.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace citrus::rcu {

struct QsbrRecord : RecordCommon<QsbrRecord> {
  static constexpr std::uint64_t kOnline = 1;

  // (checkpoints << 1) | online. Readers are free: only unlock touches it.
  sync::Padded<std::atomic<std::uint64_t>> word;

  // Owner-only shadow of the checkpoint counter.
  std::uint64_t shadow = 0;

  void reset_for_reuse() {
    word->store(0, std::memory_order_relaxed);
    shadow = 0;
    nest = 0;
    read_sections = 0;
  }
};

class QsbrRcu : public DomainBase<QsbrRcu, QsbrRecord> {
 public:
  using Record = QsbrRecord;

  // Registration puts the thread online; threads that stop operating for
  // a while should hold an OfflineGuard (or drop the Registration).
  CITRUS_RCU_READ_LOCK_FN void read_lock() noexcept {
    check::on_read_lock(this);
    Record& r = self();
    if (r.nest++ == 0) {
      // Come online lazily if the thread had gone offline.
      if ((r.word->load(std::memory_order_relaxed) & Record::kOnline) == 0) {
        r.word->store((r.shadow << 1) | Record::kOnline,
                      std::memory_order_seq_cst);
      }
      // Fault site: an online thread that stops checkpointing — QSBR's
      // characteristic stall (the contract in the header comment).
      // rcu-lint: allow (annotated injection hook, not a node access).
      fault::inject_stall(fault::Site::kReaderStall);
    }
  }

  CITRUS_RCU_READ_UNLOCK_FN void read_unlock() noexcept {
    check::on_read_unlock(this);
    Record& r = self();
    assert(r.nest > 0 && "read_unlock without matching read_lock");
    if (--r.nest == 0) {
      ++r.read_sections;
      ++r.shadow;
      // The quiescent state: counter bump, still online.
      r.word->store((r.shadow << 1) | Record::kOnline,
                    std::memory_order_seq_cst);
    }
  }

  // Explicit checkpoint for long-running read-free loops (urcu's
  // rcu_quiescent_state).
  void quiescent_state() noexcept {
    Record& r = self();
    assert(r.nest == 0 && "quiescent_state inside a read-side section");
    ++r.shadow;
    r.word->store((r.shadow << 1) | Record::kOnline,
                  std::memory_order_seq_cst);
  }

  // Declare this thread outside any read-side use (urcu's
  // rcu_thread_offline/online).
  void offline() noexcept {
    Record& r = self();
    assert(r.nest == 0 && "offline inside a read-side section");
    r.word->store(r.shadow << 1, std::memory_order_seq_cst);
  }

  void online() noexcept {
    Record& r = self();
    r.word->store((r.shadow << 1) | Record::kOnline,
                  std::memory_order_seq_cst);
  }

  CITRUS_RCU_SYNCHRONIZE_FN void synchronize() noexcept {
    check::on_synchronize(this);
    Record* me = find_record();
    assert((me == nullptr || me->nest == 0) &&
           "synchronize() inside a read-side critical section deadlocks");
    count_synchronize();
    // The caller is quiescent for the whole wait (it cannot hold reader
    // references while asking for a grace period), so two concurrent
    // synchronizers never wait for each other.
    bool was_online = false;
    if (me != nullptr) {
      was_online =
          (me->word->load(std::memory_order_relaxed) & Record::kOnline) != 0;
      if (was_online) {
        me->word->store(me->shadow << 1, std::memory_order_seq_cst);
      }
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    registry_.for_each_occupied([me](Record& r) {
      if (&r == me) return;
      const std::uint64_t w = r.word->load(std::memory_order_acquire);
      if ((w & Record::kOnline) == 0) return;  // offline: quiescent
      sync::Backoff bo;
      while (r.word->load(std::memory_order_acquire) == w) bo.pause();
    });
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (me != nullptr && was_online) {
      me->word->store((me->shadow << 1) | Record::kOnline,
                      std::memory_order_seq_cst);
    }
  }

  // RAII offline bracket for idle phases.
  class OfflineGuard {
   public:
    explicit OfflineGuard(QsbrRcu& domain) noexcept : domain_(domain) {
      domain_.offline();
    }
    ~OfflineGuard() { domain_.online(); }
    OfflineGuard(const OfflineGuard&) = delete;
    OfflineGuard& operator=(const OfflineGuard&) = delete;

   private:
    QsbrRcu& domain_;
  };
};

static_assert(rcu_domain<QsbrRcu>);

}  // namespace citrus::rcu
