// The paper's new user-space RCU implementation (Section 5, "New RCU").
//
// Quoting the paper: "each thread has a counter and flag, the counter counts
// the number of critical sections executed by the thread and a flag
// indicates if the thread is currently inside its read-side critical
// section. The rcu_read_lock operation increments the counter and sets the
// flag to true, while the rcu_read_unlock operation sets the flag to false.
// When a thread executes a synchronize_rcu operation, it waits for every
// other thread, until one of two things occurs: either the thread has
// increased its counter or the thread's flag is set to false. The main
// advantage of this implementation is that multiple threads executing
// synchronize_rcu need not coordinate among themselves, and they do not
// acquire any locks."
//
// We pack {counter, flag} into a single 64-bit word per thread,
// word = (counter << 1) | flag, so rcu_read_lock is one sequentially
// consistent store and the synchronizer's wait condition is simply
// "the word changed since I sampled it" (any change means the counter
// advanced and/or the flag dropped). The word lives alone on a (double)
// cache line; a synchronizer spins on remote words only, so readers'
// stores stay local until a grace period is actually in progress.
//
// Why this satisfies the RCU property: let R be a read-side critical
// section with a step preceding an invocation S of synchronize_rcu. R's
// rcu_read_lock (seq_cst store of an odd word w) precedes S's sampling
// fence, so S samples either w (flag set, and the word cannot take the
// value w again — the counter is monotone) or a later value. If it samples
// w it waits until the word changes, which happens no earlier than R's
// rcu_read_unlock (or R's next read_lock, which also follows R's unlock).
// If it samples a later value, R had already unlocked. Either way S returns
// only after R completed.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "check/check.hpp"
#include "rcu/registry.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace citrus::rcu {

struct CounterFlagRecord : RecordCommon<CounterFlagRecord> {
  static constexpr std::uint64_t kFlag = 1;

  // Hot: written by the owner on every section boundary, read (and spun
  // on) by synchronizers. Alone on its own destructive-interference line.
  sync::Padded<std::atomic<std::uint64_t>> word;

  // Owner-only shadow of the counter, so read_lock needs no atomic load.
  std::uint64_t shadow_counter = 0;

  void reset_for_reuse() {
    word->store(0, std::memory_order_relaxed);
    shadow_counter = 0;
    nest = 0;
    read_sections = 0;
  }
};

class CounterFlagRcu
    : public DomainBase<CounterFlagRcu, CounterFlagRecord> {
 public:
  using Record = CounterFlagRecord;

  void read_lock() noexcept {
    check::on_read_lock(this);
    Record& r = self();
    if (r.nest++ == 0) {
      ++r.shadow_counter;
      // seq_cst: the reader's subsequent tree loads must not be reordered
      // before this store, and the store must be visible to a synchronizer
      // whose sampling fence follows it (x86: one locked instruction).
      r.word->store((r.shadow_counter << 1) | Record::kFlag,
                    std::memory_order_seq_cst);
    }
  }

  void read_unlock() noexcept {
    check::on_read_unlock(this);
    Record& r = self();
    assert(r.nest > 0 && "read_unlock without matching read_lock");
    if (--r.nest == 0) {
      ++r.read_sections;
      // release: everything the reader did inside the section
      // happens-before a synchronizer observing the flag drop.
      r.word->store(r.shadow_counter << 1, std::memory_order_release);
    }
  }

  // Lock-free among synchronizers: each one independently samples every
  // other thread's word and waits for flagged ones to move. Concurrent
  // synchronize_rcu calls share no state at all (the paper's key point).
  void synchronize() noexcept {
    check::on_synchronize(this);
    Record* me = find_record();
    assert((me == nullptr || me->nest == 0) &&
           "synchronize() inside a read-side critical section deadlocks");
    count_synchronize();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    registry_.for_each([me](Record& r) {
      if (&r == me) return;
      const std::uint64_t w = r.word->load(std::memory_order_acquire);
      if ((w & Record::kFlag) == 0) return;  // not inside a section
      sync::Backoff bo;
      while (r.word->load(std::memory_order_acquire) == w) bo.pause();
    });
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};

static_assert(rcu_domain<CounterFlagRcu>);

}  // namespace citrus::rcu
