// The paper's new user-space RCU implementation (Section 5, "New RCU"),
// in two variants:
//
//   * FlatCounterFlagRcu — the paper-faithful baseline: synchronize_rcu
//     independently scans every registered thread's {counter, flag} word.
//   * CounterFlagRcu (default) — the same reader protocol behind a
//     scalable grace-period engine: concurrent synchronizers share one
//     scan via a Linux-style gp_seq (rcu/gp_seq.hpp), and the scan itself
//     is hierarchical — it reads one per-group summary word and descends
//     only into groups with (possibly) active readers.
//
// Quoting the paper: "each thread has a counter and flag, the counter counts
// the number of critical sections executed by the thread and a flag
// indicates if the thread is currently inside its read-side critical
// section. The rcu_read_lock operation increments the counter and sets the
// flag to true, while the rcu_read_unlock operation sets the flag to false.
// When a thread executes a synchronize_rcu operation, it waits for every
// other thread, until one of two things occurs: either the thread has
// increased its counter or the thread's flag is set to false. The main
// advantage of this implementation is that multiple threads executing
// synchronize_rcu need not coordinate among themselves, and they do not
// acquire any locks."
//
// We pack {counter, flag} into a single 64-bit word per thread,
// word = (counter << 1) | flag, so rcu_read_lock is one sequentially
// consistent store and the synchronizer's wait condition is simply
// "the word changed since I sampled it" (any change means the counter
// advanced and/or the flag dropped). The word lives alone on a (double)
// cache line; a synchronizer spins on remote words only, so readers'
// stores stay local until a grace period is actually in progress.
//
// Why the flat scan satisfies the RCU property: let R be a read-side
// critical section with a step preceding an invocation S of
// synchronize_rcu. R's rcu_read_lock (seq_cst store of an odd word w)
// precedes S's sampling fence, so S samples either w (flag set, and the
// word cannot take the value w again — the counter is monotone) or a later
// value. If it samples w it waits until the word changes, which happens no
// earlier than R's rcu_read_unlock (or R's next read_lock, which also
// follows R's unlock). If it samples a later value, R had already
// unlocked. Either way S returns only after R completed.
//
// The hierarchical scan additionally relies on the group `active_hint`
// invariant maintained by the trim/repair handshake below; the full
// argument (and the piggybacking cookie argument) is DESIGN.md §5.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "rcu/gp_seq.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/registry.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace citrus::rcu {

struct CounterFlagRecord : RecordCommon<CounterFlagRecord> {
  static constexpr std::uint64_t kFlag = 1;

  // Hot: written by the owner on every section boundary, read (and spun
  // on) by synchronizers. Alone on its own destructive-interference line.
  sync::Padded<std::atomic<std::uint64_t>> word;

  // Owner-only shadow of the counter, so read_lock needs no atomic load.
  std::uint64_t shadow_counter = 0;

  void reset_for_reuse() {
    word->store(0, std::memory_order_relaxed);
    shadow_counter = 0;
    nest = 0;
    read_sections = 0;
  }
};

// ── Default domain: shared grace periods + hierarchical scan ────────────
//
// Reader fast path vs. the flat variant: one extra seq_cst *load* of this
// record's own trim_seq (a plain MOV on x86) and a predictable branch —
// the repair slow path (one fetch_or on the group header) runs only after
// a grace-period leader trimmed this record's hint bit, i.e. at most once
// per (trim, next section) pair.
class CounterFlagRcu
    : public DomainBase<CounterFlagRcu, CounterFlagRecord> {
 public:
  using Record = CounterFlagRecord;

  CITRUS_RCU_READ_LOCK_FN void read_lock() noexcept {
    check::on_read_lock(this);
    Record& r = self();
    if (r.nest++ == 0) {
      ++r.shadow_counter;
      // seq_cst: the reader's subsequent tree loads must not be reordered
      // before this store, and the store must be visible to a synchronizer
      // whose sampling fence follows it (x86: one locked instruction).
      r.word->store((r.shadow_counter << 1) | Record::kFlag,
                    std::memory_order_seq_cst);
      // Hierarchy repair (Dekker with the leader's trim, DESIGN.md §5.3):
      // the word store above must precede this load, so that either the
      // trimming leader's re-validation sees our active word, or we see
      // its trim_seq increment and re-publish our group hint bit here.
      const std::uint64_t trims =
          r.trim_seq.load(std::memory_order_seq_cst);
      if (trims != r.repair_seen) [[unlikely]] {
        r.repair_seen = trims;
        r.group_hint->fetch_or(r.group_bit, std::memory_order_seq_cst);
        // Orders this (possibly piggyback-skipped) section's body loads
        // after any grace-period leader whose hint sample missed the
        // fetch_or above — see the adoption argument in DESIGN.md §5.2.
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
      // Fault site: the reader is now published (flag set) — a stall here
      // models a reader descheduled inside its critical section, the case
      // every synchronize_rcu waits out. rcu-lint: allow (annotated
      // injection hook, not a node access).
      fault::inject_stall(fault::Site::kReaderStall);
    }
  }

  CITRUS_RCU_READ_UNLOCK_FN void read_unlock() noexcept {
    check::on_read_unlock(this);
    Record& r = self();
    assert(r.nest > 0 && "read_unlock without matching read_lock");
    if (--r.nest == 0) {
      ++r.read_sections;
      // release: everything the reader did inside the section
      // happens-before a synchronizer observing the flag drop.
      r.word->store(r.shadow_counter << 1, std::memory_order_release);
    }
  }

  // Still lock-free among synchronizers — but instead of each call paying
  // a scan, concurrent calls elect one leader per grace period and the
  // rest piggyback on its scan (rcu/gp_seq.hpp).
  CITRUS_RCU_SYNCHRONIZE_FN void synchronize() noexcept {
    check::on_synchronize(this);
    assert(!in_read_section() &&
           "synchronize() inside a read-side critical section deadlocks");
    count_synchronize();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    gp_.drive(gp_.snap(), [this] { scan_readers(); });
  }

  // ── Deferred grace periods (gp_poll_domain) ──────────────────────────

  // Fence + snapshot only: names a grace period that, once elapsed,
  // covers every unlink this thread performed before the call. Never
  // blocks, never scans, legal anywhere (even inside a read section).
  CITRUS_RCU_GP_START_FN GpCookie start_grace_period() noexcept {
    check::on_gp_start(this);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return gp_.snap();
  }

  // Non-blocking probe: has the named grace period elapsed?
  bool poll(GpCookie cookie) const noexcept { return gp_.done(cookie); }

  // Block until the named grace period has elapsed (leading a scan only
  // if nobody else is driving one).
  CITRUS_RCU_SYNCHRONIZE_FN void synchronize(GpCookie cookie) noexcept {
    check::on_gp_wait(this);
    assert(!in_read_section() &&
           "waiting on a grace period inside a read-side critical section "
           "deadlocks");
    gp_.drive(cookie, [this] { scan_readers(); });
  }

  // ── Expedited path ───────────────────────────────────────────────────

  // For single-updater workloads: skip the gp_seq handshake and scan every
  // occupied record directly, exactly like the flat baseline. Ignores the
  // group hints (so it neither depends on nor perturbs the hint
  // invariant) and shares no state with other synchronizers.
  CITRUS_RCU_SYNCHRONIZE_FN void synchronize_expedited() noexcept {
    check::on_synchronize(this);
    Record* me = find_record();
    assert((me == nullptr || me->nest == 0) &&
           "synchronize_expedited() inside a read-side critical section "
           "deadlocks");
    count_synchronize();
    expedited_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    registry_.for_each_occupied([me](Record& r) {
      if (&r == me) return;
      const std::uint64_t w = r.word->load(std::memory_order_acquire);
      if ((w & Record::kFlag) == 0) return;  // not inside a section
      sync::Backoff bo;
      while (r.word->load(std::memory_order_acquire) == w) bo.pause();
    });
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  // ── Grace-period statistics ──────────────────────────────────────────
  //
  // started() + shared() equals the number of gp_seq-path synchronize
  // calls; started() is the number of scans actually performed on that
  // path. Sharing ratio = shared / (started + shared).

  std::uint64_t grace_periods_started() const noexcept {
    return gp_.started();
  }
  std::uint64_t grace_periods_shared() const noexcept { return gp_.shared(); }
  std::uint64_t grace_periods_expedited() const noexcept {
    return expedited_.load(std::memory_order_relaxed);
  }
  std::uint64_t gp_sequence() const noexcept { return gp_.current(); }

  // Diagnostic snapshot for the stall watchdog (rcu/stall.hpp): every
  // occupied record currently flagged inside a read-side critical
  // section, with its raw {counter, flag} word. Purely observational —
  // one acquire load per occupied slot, never blocks readers or scans.
  std::vector<ReaderSlot> snapshot_active_readers() const {
    std::vector<ReaderSlot> out;
    std::size_t index = 0;
    registry_.for_each_occupied([&out, &index](Record& r) {
      const std::uint64_t w = r.word->load(std::memory_order_acquire);
      if ((w & Record::kFlag) != 0) out.push_back(ReaderSlot{index, w});
      ++index;
    });
    return out;
  }

 private:
  using Registry = GroupedRegistry<Record>;

  bool in_read_section() const noexcept {
    const Record* me = find_record();
    return me != nullptr && me->nest != 0;
  }

  // Runs only as the gp_seq leader, after its sampling fence — at most one
  // instance executes at a time (leader exclusivity), which the trim
  // protocol below relies on.
  void scan_readers() noexcept {
    // Self-skip, as in the flat scan: the leader's own section (legal
    // only in rcucheck's record-and-continue mode, where the seeded
    // violation must not also deadlock the test) never blocks its own
    // grace period.
    Record* me = find_record();
    registry_.for_each_group([me](typename Registry::Group& g) {
      const std::uint64_t hint =
          g.header.active_hint.load(std::memory_order_seq_cst);
      // Idle group: every pre-fence section in it had completed (hint
      // invariant, DESIGN.md §5.3) — skip all kGroupSize words.
      std::uint64_t bits = hint;
      while (bits != 0) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        Record& r = g.slots[i];
        if (&r == me) continue;  // hint bit stays set — the record is hot
        const std::uint64_t w = r.word->load(std::memory_order_seq_cst);
        if ((w & Record::kFlag) != 0) {
          // Active section that may predate our fence: wait it out and
          // leave the hint bit set — the record is demonstrably hot.
          sync::Backoff bo;
          while (r.word->load(std::memory_order_acquire) == w) bo.pause();
          continue;
        }
        // Quiescent: trim the hint so future scans skip this record.
        // Order matters — clear, THEN bump trim_seq, THEN re-validate:
        // a reader that misses the bump has its active word visible to
        // the re-validation (Dekker), and a reader that sees the bump
        // repairs a bit we have already cleared, never one we are about
        // to clear (which is why the bump must follow the clear).
        const std::uint64_t bit = std::uint64_t{1} << i;
        g.header.active_hint.fetch_and(~bit, std::memory_order_seq_cst);
        r.trim_seq.fetch_add(1, std::memory_order_seq_cst);
        if ((r.word->load(std::memory_order_seq_cst) & Record::kFlag) != 0) {
          // The owner re-entered between our sample and the trim; its
          // section began after this grace period's fence (no need to
          // wait), but the hint must stay truthful for the next one.
          g.header.active_hint.fetch_or(bit, std::memory_order_seq_cst);
        }
      }
    });
  }

  GpSeq gp_;
  std::atomic<std::uint64_t> expedited_{0};
};

static_assert(rcu_domain<CounterFlagRcu>);
static_assert(gp_poll_domain<CounterFlagRcu>);

// ── Baseline: the paper's flat scan, verbatim ───────────────────────────
//
// One full scan of every occupied record per synchronize call, no shared
// synchronizer state at all. Kept (and registered as `citrus-flat`) as the
// A/B baseline for the grace-period engine; bench/micro_rcu_primitives.cpp
// and bench/fig8_rcu_scaling.cpp run both variants side by side.
class FlatCounterFlagRcu
    : public DomainBase<FlatCounterFlagRcu, CounterFlagRecord> {
 public:
  using Record = CounterFlagRecord;

  CITRUS_RCU_READ_LOCK_FN void read_lock() noexcept {
    check::on_read_lock(this);
    Record& r = self();
    if (r.nest++ == 0) {
      ++r.shadow_counter;
      r.word->store((r.shadow_counter << 1) | Record::kFlag,
                    std::memory_order_seq_cst);
      // rcu-lint: allow (annotated injection hook, not a node access).
      fault::inject_stall(fault::Site::kReaderStall);
    }
  }

  CITRUS_RCU_READ_UNLOCK_FN void read_unlock() noexcept {
    check::on_read_unlock(this);
    Record& r = self();
    assert(r.nest > 0 && "read_unlock without matching read_lock");
    if (--r.nest == 0) {
      ++r.read_sections;
      r.word->store(r.shadow_counter << 1, std::memory_order_release);
    }
  }

  // Lock-free among synchronizers: each one independently samples every
  // other thread's word and waits for flagged ones to move. Concurrent
  // synchronize_rcu calls share no state at all (the paper's key point).
  CITRUS_RCU_SYNCHRONIZE_FN void synchronize() noexcept {
    check::on_synchronize(this);
    Record* me = find_record();
    assert((me == nullptr || me->nest == 0) &&
           "synchronize() inside a read-side critical section deadlocks");
    count_synchronize();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    registry_.for_each_occupied([me](Record& r) {
      if (&r == me) return;
      const std::uint64_t w = r.word->load(std::memory_order_acquire);
      if ((w & Record::kFlag) == 0) return;  // not inside a section
      sync::Backoff bo;
      while (r.word->load(std::memory_order_acquire) == w) bo.pause();
    });
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};

static_assert(rcu_domain<FlatCounterFlagRcu>);

}  // namespace citrus::rcu
