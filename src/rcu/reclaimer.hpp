// Asynchronous deferred reclamation — the equivalent of urcu's call_rcu
// worker. DomainBase::retire() makes the *retiring* thread pay for the
// grace period when its batch fills; for update-heavy workloads that puts
// synchronize_rcu latency on the operation's critical path. A Reclaimer
// moves that cost to a dedicated background thread.
//
// Producers push onto a lock-free MPSC intrusive stack (one CAS, no mutex,
// legal inside read-side critical sections); the worker detaches the whole
// stack with one exchange. On a gp_poll_domain the worker *pipelines*:
// after waiting out batch N's grace period it first collects batch N+1 and
// opens its grace period (start_grace_period — fence + sequence snapshot,
// no blocking), and only then runs batch N's callbacks — so batch N+1's
// grace period elapses while batch N's destructors execute, and under the
// shared gp_seq it is usually retired by some updater's concurrent scan
// before the worker even asks. On a plain rcu_domain the worker falls back
// to one synchronize() per batch.
//
// All counters are atomics, so the read-only accessors pending() and
// batches() never touch a lock (they are polled from stats paths).
//
// The worker thread holds its own Registration with the domain. The
// destructor drains everything still queued (paying a final grace period),
// so objects handed to a Reclaimer are reliably freed before it dies.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "rcu/rcu.hpp"

namespace citrus::rcu {

template <rcu_domain Domain>
class Reclaimer {
 public:
  explicit Reclaimer(Domain& domain) : domain_(domain) {
    worker_ = std::thread([this] { run(); });
  }

  Reclaimer(const Reclaimer&) = delete;
  Reclaimer& operator=(const Reclaimer&) = delete;

  ~Reclaimer() {
    stopping_.store(true, std::memory_order_release);
    wakeups_.fetch_add(1, std::memory_order_release);
    wakeups_.notify_one();
    worker_.join();
  }

  // Defer fn(ptr, ctx) to after a future grace period. Callable from any
  // thread, including inside a read-side critical section (nothing blocks;
  // the push is a single CAS).
  void enqueue(void* ptr, void (*fn)(void*, void*), void* ctx) {
    auto* node = new Node{Retired{ptr, fn, ctx}, nullptr};
    pending_.fetch_add(1, std::memory_order_relaxed);
    Node* old_head = head_.load(std::memory_order_relaxed);
    do {
      node->next = old_head;
    } while (!head_.compare_exchange_weak(old_head, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    wakeups_.fetch_add(1, std::memory_order_release);
    wakeups_.notify_one();
  }

  template <typename T>
  void enqueue_delete(T* ptr) {
    enqueue(
        ptr, [](void* p, void*) { delete static_cast<T*>(p); }, nullptr);
  }

  // Objects enqueued but not yet reclaimed (racy snapshot, lock-free).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  // Completed reclamation batches (each awaited one grace period).
  std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    Retired item;
    Node* next;
  };

  void run() {
    typename Domain::Registration registration(domain_);
    std::vector<Retired> ready;  // grace period awaited; run these
    std::vector<Retired> aging;  // covered by `cookie`, still aging
    GpCookie cookie{};
    for (;;) {
      if (aging.empty()) {
        if (!wait_for_work()) return;  // stopping and nothing queued
        collect(aging);
        cookie = begin_grace_period();
      }
      // Everything in `aging` was enqueued (hence unlinked) before
      // `cookie` was snapped, so one grace period covers the whole batch.
      await_grace_period(cookie);
      ready.swap(aging);
      // Pipeline: open the next batch's grace period before running this
      // batch's callbacks, so it ages while the destructors execute.
      collect(aging);
      if (!aging.empty()) cookie = begin_grace_period();
      for (const Retired& r : ready) r.fn(r.ptr, r.ctx);
      pending_.fetch_sub(ready.size(), std::memory_order_release);
      batches_.fetch_add(1, std::memory_order_relaxed);
      ready.clear();
    }
  }

  // Detach the whole producer stack and append it to `out` (FIFO order —
  // the stack is LIFO, so reverse while copying out).
  void collect(std::vector<Retired>& out) {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    const std::size_t mark = out.size();
    while (node != nullptr) {
      out.push_back(node->item);
      Node* next = node->next;
      delete node;
      node = next;
    }
    std::reverse(out.begin() + static_cast<std::ptrdiff_t>(mark), out.end());
  }

  // Sleep until work arrives or we are told to stop with an empty queue.
  bool wait_for_work() {
    for (;;) {
      if (head_.load(std::memory_order_acquire) != nullptr) return true;
      if (stopping_.load(std::memory_order_acquire)) return false;
      const std::uint64_t seen = wakeups_.load(std::memory_order_acquire);
      if (head_.load(std::memory_order_acquire) != nullptr) return true;
      if (stopping_.load(std::memory_order_acquire)) return false;
      wakeups_.wait(seen, std::memory_order_acquire);
    }
  }

  GpCookie begin_grace_period() {
    if constexpr (gp_poll_domain<Domain>) {
      return domain_.start_grace_period();
    } else {
      return GpCookie{0};
    }
  }

  void await_grace_period(GpCookie cookie) {
    if constexpr (gp_poll_domain<Domain>) {
      domain_.synchronize(cookie);
    } else {
      domain_.synchronize();
    }
  }

  Domain& domain_;
  std::atomic<Node*> head_{nullptr};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<bool> stopping_{false};
  std::thread worker_;
};

}  // namespace citrus::rcu
