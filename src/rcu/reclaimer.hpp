// Asynchronous deferred reclamation — the equivalent of urcu's call_rcu
// worker. DomainBase::retire() makes the *retiring* thread pay for the
// grace period when its batch fills; for update-heavy workloads that puts
// synchronize_rcu latency on the operation's critical path. A Reclaimer
// moves that cost to a dedicated background thread.
//
// Producers push onto a lock-free MPSC intrusive stack (one CAS, no mutex,
// legal inside read-side critical sections); the worker detaches the whole
// stack with one exchange. On a gp_poll_domain the worker *pipelines*:
// after waiting out batch N's grace period it first collects batch N+1 and
// opens its grace period (start_grace_period — fence + sequence snapshot,
// no blocking), and only then runs batch N's callbacks — so batch N+1's
// grace period elapses while batch N's destructors execute, and under the
// shared gp_seq it is usually retired by some updater's concurrent scan
// before the worker even asks. On a plain rcu_domain the worker falls back
// to one synchronize() per batch.
//
// All counters are atomics, so the read-only accessors pending() and
// batches() never touch a lock (they are polled from stats paths).
//
// The worker thread holds its own Registration with the domain. The
// destructor drains everything still queued (paying a final grace period),
// so objects handed to a Reclaimer are reliably freed before it dies.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/rcu.hpp"
#include "sync/backoff.hpp"

namespace citrus::rcu {

template <rcu_domain Domain>
class Reclaimer {
 public:
  explicit Reclaimer(Domain& domain) : domain_(domain) {
    worker_ = std::thread([this] { run(); });
  }

  Reclaimer(const Reclaimer&) = delete;
  Reclaimer& operator=(const Reclaimer&) = delete;

  ~Reclaimer() {
    stopping_.store(true, std::memory_order_release);
    wakeups_.fetch_add(1, std::memory_order_release);
    wakeups_.notify_one();
    worker_.join();
  }

  // Defer fn(ptr, ctx) to after a future grace period. Callable from any
  // thread, including inside a read-side critical section (nothing blocks;
  // the push is a single CAS) — except when a backpressure watermark is
  // set and exceeded, in which case a caller *outside* any read section
  // may block on a grace period and reclaim synchronously (see
  // set_backpressure below; in-section callers always defer).
  void enqueue(void* ptr, void (*fn)(void*, void*), void* ctx) {
    const std::size_t wm = watermark_.load(std::memory_order_relaxed);
    if (wm != 0 && pending_.load(std::memory_order_acquire) >= wm &&
        !in_reader_section()) {
      // Over the high watermark. Give the worker one bounded chance to
      // drain below the mark (cheap when it is merely busy, not stuck) —
      // then stop deferring and make this producer pay the grace period
      // itself. Under a stalled reader the producer blocks right here,
      // which is the point: no new garbage accumulates while grace
      // periods cannot complete, so the backlog stays bounded.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(grace_ns_.load(std::memory_order_relaxed));
      if (!sync::spin_until(deadline, [this, wm] {
            return pending_.load(std::memory_order_acquire) < wm;
          })) {
        backpressure_.fetch_add(1, std::memory_order_relaxed);
        // The object was unlinked before this call; one full grace
        // period from here covers it, exactly as in DomainBase::retire.
        domain_.synchronize();
        fn(ptr, ctx);
        return;
      }
    }
    auto* node = new Node{Retired{ptr, fn, ctx}, nullptr};
    pending_.fetch_add(1, std::memory_order_release);
    // rcu-analyze: allow (CAS-publish loop: the relaxed initial load only
    // seeds `expected`; the successful exchange is release by contract)
    Node* old_head = head_.unguarded_load(std::memory_order_relaxed);
    do {
      node->next = old_head;
    } while (!head_.compare_exchange_weak(old_head, node));
    wakeups_.fetch_add(1, std::memory_order_release);
    wakeups_.notify_one();
  }

  template <typename T>
  void enqueue_delete(T* ptr) {
    enqueue(
        ptr, [](void* p, void*) { delete static_cast<T*>(p); }, nullptr);
  }

  // Objects enqueued but not yet reclaimed (lock-free snapshot).
  //
  // Contract: pending() never under-counts unreclaimed objects. Each
  // object is counted from just before its push is published until just
  // after its callback has returned — the worker decrements per object at
  // the drain boundary, not per batch — so at quiescence the value is
  // exactly 0 and mid-drain it tracks the true backlog to within the one
  // object whose callback is in flight. Orderings are symmetric: the
  // producer increment and the worker decrement are release RMWs against
  // this acquire load, so an observer of a count transition also observes
  // the memory effects it accounts for (for a decrement, the callback's
  // writes). This is the counter the backpressure watermark and the stall
  // watchdog's backlog probe read.
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  // Completed reclamation batches (each awaited one grace period).
  std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

  // Bounded-backlog backpressure. 0 (the default) = unbounded deferral,
  // the historic behavior. With high_watermark > 0, an enqueue that finds
  // pending() >= high_watermark — and is not inside a read-side critical
  // section of `domain` — first waits up to `grace` for the worker to
  // drain below the mark, then switches from deferred to *synchronous*
  // reclaim: the producer pays one synchronize() and runs the callback
  // itself, bumping the reclaim_backpressure stat. Memory stays bounded
  // under reader stalls (producers block instead of queueing garbage) at
  // the cost of producer latency. In-section callers always defer —
  // synchronous reclaim there would deadlock on the caller's own section.
  // A producer that goes synchronous inherits synchronize()'s discipline
  // (no data-structure locks held).
  void set_backpressure(std::size_t high_watermark,
                        std::chrono::microseconds grace =
                            std::chrono::microseconds(500)) noexcept {
    grace_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(grace).count(),
        std::memory_order_relaxed);
    watermark_.store(high_watermark, std::memory_order_relaxed);
  }

  std::size_t high_watermark() const noexcept {
    return watermark_.load(std::memory_order_relaxed);
  }

  // Enqueue calls that switched to synchronous reclaim (the
  // `reclaim_backpressure` stat surfaced in bench JSON output).
  std::uint64_t backpressure() const noexcept {
    return backpressure_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    Retired item;
    Node* next;
  };

  void run() {
    typename Domain::Registration registration(domain_);
    std::vector<Retired> ready;  // grace period awaited; run these
    std::vector<Retired> aging;  // covered by `cookie`, still aging
    GpCookie cookie{};
    for (;;) {
      if (aging.empty()) {
        if (!wait_for_work()) return;  // stopping and nothing queued
        collect(aging);
        cookie = begin_grace_period();
      }
      // Everything in `aging` was enqueued (hence unlinked) before
      // `cookie` was snapped, so one grace period covers the whole batch.
      await_grace_period(cookie);
      ready.swap(aging);
      // Pipeline: open the next batch's grace period before running this
      // batch's callbacks, so it ages while the destructors execute.
      collect(aging);
      if (!aging.empty()) cookie = begin_grace_period();
      // Fault site: a reclaim worker delayed after the grace period has
      // elapsed but before the callbacks run — the backlog the
      // backpressure watermark exists to bound.
      fault::inject_stall(fault::Site::kReclaimDelay);
      for (const Retired& r : ready) {
        r.fn(r.ptr, r.ctx);
        // Per-object decrement at the drain boundary — see pending().
        pending_.fetch_sub(1, std::memory_order_release);
      }
      batches_.fetch_add(1, std::memory_order_relaxed);
      ready.clear();
    }
  }

  // Detach the whole producer stack and append it to `out` (FIFO order —
  // the stack is LIFO, so reverse while copying out).
  void collect(std::vector<Retired>& out) {
    // Acquire-exchange transfers exclusive ownership of the whole chain to
    // this worker; from here the nodes are private, not RCU-protected.
    Node* node = head_.exchange_detach();
    const std::size_t mark = out.size();
    while (node != nullptr) {
      out.push_back(node->item);
      Node* next = node->next;
      delete node;
      node = next;
    }
    std::reverse(out.begin() + static_cast<std::ptrdiff_t>(mark), out.end());
  }

  // Sleep until work arrives or we are told to stop with an empty queue.
  bool wait_for_work() {
    for (;;) {
      if (head_.load_protected() != nullptr) return true;
      if (stopping_.load(std::memory_order_acquire)) return false;
      const std::uint64_t seen = wakeups_.load(std::memory_order_acquire);
      if (head_.load_protected() != nullptr) return true;
      if (stopping_.load(std::memory_order_acquire)) return false;
      wakeups_.wait(seen, std::memory_order_acquire);
    }
  }

  // Is the calling thread inside a read-side critical section of the
  // domain? Detected via the DomainBase introspection when available; a
  // domain without it conservatively reports "yes", which keeps every
  // enqueue on the always-safe deferred path (backpressure then degrades
  // to unbounded deferral rather than risking a self-deadlock).
  bool in_reader_section() const noexcept {
    if constexpr (requires(const Domain& d) {
                    { d.in_reader_section() } -> std::convertible_to<bool>;
                  }) {
      return domain_.in_reader_section();
    } else {
      return true;
    }
  }

  GpCookie begin_grace_period() {
    if constexpr (gp_poll_domain<Domain>) {
      return domain_.start_grace_period();
    } else {
      return GpCookie{0};
    }
  }

  void await_grace_period(GpCookie cookie) {
    if constexpr (gp_poll_domain<Domain>) {
      domain_.synchronize(cookie);
    } else {
      domain_.synchronize();
    }
  }

  Domain& domain_;
  // MPSC stack head: producers CAS-publish, the worker exchange-detaches.
  // guarded_ptr because producers may push from inside read-side critical
  // sections and the worker's non-null probes race with them.
  guarded_ptr<Node> head_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<bool> stopping_{false};
  // Backpressure state (set_backpressure / high_watermark / backpressure).
  std::atomic<std::size_t> watermark_{0};
  std::atomic<std::int64_t> grace_ns_{500 * 1000};
  std::atomic<std::uint64_t> backpressure_{0};
  std::thread worker_;
};

}  // namespace citrus::rcu
