// Asynchronous deferred reclamation — the equivalent of urcu's call_rcu
// worker. DomainBase::retire() makes the *retiring* thread pay for the
// grace period when its batch fills; for update-heavy workloads that puts
// synchronize_rcu latency on the operation's critical path. A Reclaimer
// moves that cost to a dedicated background thread: producers enqueue
// callbacks with one mutex-protected push, the worker swaps the queue,
// waits one grace period covering the whole batch, and runs the callbacks.
//
// The worker thread holds its own Registration with the domain. The
// destructor drains everything still queued (paying a final grace period),
// so objects handed to a Reclaimer are reliably freed before it dies.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "rcu/rcu.hpp"

namespace citrus::rcu {

template <rcu_domain Domain>
class Reclaimer {
 public:
  explicit Reclaimer(Domain& domain) : domain_(domain) {
    worker_ = std::thread([this] { run(); });
  }

  Reclaimer(const Reclaimer&) = delete;
  Reclaimer& operator=(const Reclaimer&) = delete;

  ~Reclaimer() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      stopping_ = true;
    }
    cv_.notify_one();
    worker_.join();
  }

  // Defer fn(ptr, ctx) to after a future grace period. Callable from any
  // thread, including inside a read-side critical section (nothing blocks).
  void enqueue(void* ptr, void (*fn)(void*, void*), void* ctx) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      queue_.push_back(Retired{ptr, fn, ctx});
    }
    cv_.notify_one();
  }

  template <typename T>
  void enqueue_delete(T* ptr) {
    enqueue(
        ptr, [](void* p, void*) { delete static_cast<T*>(p); }, nullptr);
  }

  // Objects enqueued but not yet reclaimed (racy snapshot).
  std::size_t pending() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return queue_.size() + in_flight_;
  }

  // Completed reclamation batches (each cost one grace period).
  std::uint64_t batches() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return batches_;
  }

 private:
  void run() {
    typename Domain::Registration registration(domain_);
    std::vector<Retired> batch;
    for (;;) {
      {
        std::unique_lock<std::mutex> guard(mutex_);
        cv_.wait(guard, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty() && stopping_) return;
        batch.swap(queue_);
        in_flight_ = batch.size();
      }
      // One grace period covers the whole batch: everything in it was
      // retired (hence unlinked) before this call.
      domain_.synchronize();
      for (const Retired& r : batch) r.fn(r.ptr, r.ctx);
      batch.clear();
      {
        std::lock_guard<std::mutex> guard(mutex_);
        in_flight_ = 0;
        ++batches_;
      }
    }
  }

  Domain& domain_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Retired> queue_;
  std::size_t in_flight_ = 0;
  std::uint64_t batches_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace citrus::rcu
