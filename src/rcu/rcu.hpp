// Public RCU API.
//
// The paper uses three RCU functions — rcu_read_lock, rcu_read_unlock and
// synchronize_rcu — with the *RCU property* (Figure 2 of the paper): if a
// step of a read-side critical section precedes the invocation of
// synchronize_rcu, then all steps of that critical section precede the
// return from synchronize_rcu. This header defines the C++ shape of that
// API: the `rcu_domain` concept the tree templates are written against, the
// RAII read guard, and deferred reclamation (`retire`) built on top of
// grace periods.
//
// Three domain implementations are provided:
//   * GlobalLockRcu  (global_lock_rcu.hpp)  — models the stock user-space
//     RCU of Desnoyers et al., whose synchronize_rcu serializes grace
//     periods behind a global lock. This is the "standard RCU" of Figure 8.
//   * CounterFlagRcu (counter_flag_rcu.hpp) — the paper's new
//     implementation: per-thread {counter, flag}; synchronizers take no
//     lock, so concurrent updaters scale. The "Citrus" line of Figure 8.
//   * EpochRcu       (epoch_rcu.hpp)        — a classic epoch-based scheme,
//     included as an extra comparator for the RCU-choice ablation.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "rcu/guarded_ptr.hpp"

namespace citrus::rcu {

// A deferred reclamation request: fn(ptr, ctx) runs after a grace period.
struct Retired {
  void* ptr;
  void (*fn)(void*, void*);
  void* ctx;
};

// Fields every per-thread record shares. `Self` is the concrete record
// type (kept for interface stability; the registry no longer links records
// intrusively — they live in fixed groups, see rcu/registry.hpp). `nest`,
// `retired` and `read_sections` are owner-thread-only.
template <typename Self>
struct RecordCommon {
  std::atomic<bool> in_use{false};
  std::uint32_t nest = 0;             // read-side nesting depth
  std::vector<Retired> retired;       // deferred frees of this thread
  std::uint64_t read_sections = 0;    // statistics: completed sections

  // Registry backrefs into this record's group header, set once at group
  // construction (before the group is published) and immutable after.
  // `group_bit` is this record's bit in both summary words.
  std::atomic<std::uint64_t>* group_occupied = nullptr;
  std::atomic<std::uint64_t>* group_hint = nullptr;
  std::uint64_t group_bit = 0;

  // Dekker-style repair handshake for hierarchical domains. A grace-period
  // leader that clears this record's `group_hint` bit (because the record
  // looked quiescent) increments `trim_seq` AFTER the clear; the owner
  // compares it against its private `repair_seen` on every outermost
  // read_lock and re-publishes the bit on mismatch. The owner never writes
  // `trim_seq`, so a delayed owner store can never erase a newer trim
  // notification (the ABA that a plain flag would allow). Domains that do
  // not use the hierarchy ignore both fields.
  std::atomic<std::uint64_t> trim_seq{0};
  std::uint64_t repair_seen = ~std::uint64_t{0};  // owner-thread-only
};

// Opaque grace-period cookie; defined with the engine in rcu/gp_seq.hpp
// and re-declared here so the concept below does not pull in the engine.
using GpCookie = std::uint64_t;

// One in-flight reader as seen by a diagnostic snapshot (stall watchdog,
// rcu/stall.hpp). `index` is the slot's position in the domain registry's
// enumeration order, `word` the raw per-thread reader word at sampling
// time — for the counter-flag domain that is (counter << 1) | flag, for
// the epoch domain the pinned epoch. Purely observational: taking a
// snapshot never blocks readers or grace periods.
struct ReaderSlot {
  std::size_t index = 0;
  std::uint64_t word = 0;
};

// Static interface required of an RCU domain. The data structures are
// templated on this concept, so swapping the synchronization substrate is a
// one-token change (see bench/ablation_rcu_domain.cpp).
template <typename D>
concept rcu_domain = requires(D d, void* p, void (*fn)(void*, void*)) {
  typename D::Registration;          // RAII per-thread participation token
  { d.read_lock() } noexcept;        // wait-free (paper, Section 2)
  { d.read_unlock() } noexcept;      // wait-free
  d.synchronize();                   // blocks for a grace period
  d.retire(p, fn, p);                // deferred free after a grace period
  d.flush_retired();                 // force reclamation of this thread's queue
  { d.synchronize_calls() } -> std::convertible_to<std::uint64_t>;
};

// Refinement for domains with a shared grace-period sequence (gp_seq.hpp):
// grace periods can be started without waiting and redeemed later, so a
// caller (e.g. rcu/reclaimer.hpp) can overlap a grace period with useful
// work. start_grace_period() only fences and snapshots the sequence — it
// never blocks and never scans; poll() is a non-blocking completion probe;
// synchronize(cookie) blocks until the named grace period has elapsed,
// scanning at most once across all concurrent synchronizers.
template <typename D>
concept gp_poll_domain =
    rcu_domain<D> && requires(D d, const D cd, GpCookie c) {
      { d.start_grace_period() } noexcept -> std::same_as<GpCookie>;
      { cd.poll(c) } noexcept -> std::convertible_to<bool>;
      d.synchronize(c);
      { cd.grace_periods_started() } -> std::convertible_to<std::uint64_t>;
      { cd.grace_periods_shared() } -> std::convertible_to<std::uint64_t>;
    };

// RAII read-side critical section, equivalent to the paper's
// rcu_read_lock/rcu_read_unlock bracket around `get`.
template <rcu_domain D>
class ReadGuard {
 public:
  CITRUS_RCU_READ_LOCK_FN explicit ReadGuard(D& domain) noexcept
      : domain_(domain) {
    domain_.read_lock();
  }
  CITRUS_RCU_READ_UNLOCK_FN ~ReadGuard() { domain_.read_unlock(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  D& domain_;
};

// Convenience: defer `delete p` to after a grace period.
template <rcu_domain D, typename T>
void retire_delete(D& domain, T* p) {
  domain.retire(
      p, [](void* q, void*) { delete static_cast<T*>(q); }, nullptr);
}

}  // namespace citrus::rcu
