// Public RCU API.
//
// The paper uses three RCU functions — rcu_read_lock, rcu_read_unlock and
// synchronize_rcu — with the *RCU property* (Figure 2 of the paper): if a
// step of a read-side critical section precedes the invocation of
// synchronize_rcu, then all steps of that critical section precede the
// return from synchronize_rcu. This header defines the C++ shape of that
// API: the `rcu_domain` concept the tree templates are written against, the
// RAII read guard, and deferred reclamation (`retire`) built on top of
// grace periods.
//
// Three domain implementations are provided:
//   * GlobalLockRcu  (global_lock_rcu.hpp)  — models the stock user-space
//     RCU of Desnoyers et al., whose synchronize_rcu serializes grace
//     periods behind a global lock. This is the "standard RCU" of Figure 8.
//   * CounterFlagRcu (counter_flag_rcu.hpp) — the paper's new
//     implementation: per-thread {counter, flag}; synchronizers take no
//     lock, so concurrent updaters scale. The "Citrus" line of Figure 8.
//   * EpochRcu       (epoch_rcu.hpp)        — a classic epoch-based scheme,
//     included as an extra comparator for the RCU-choice ablation.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <vector>

namespace citrus::rcu {

// A deferred reclamation request: fn(ptr, ctx) runs after a grace period.
struct Retired {
  void* ptr;
  void (*fn)(void*, void*);
  void* ctx;
};

// Fields every per-thread record shares. `Self` is the concrete record type
// (CRTP for the intrusive registry link). All fields except `in_use` are
// owner-thread-only.
template <typename Self>
struct RecordCommon {
  std::atomic<bool> in_use{false};
  Self* next = nullptr;
  std::uint32_t nest = 0;             // read-side nesting depth
  std::vector<Retired> retired;       // deferred frees of this thread
  std::uint64_t read_sections = 0;    // statistics: completed sections
};

// Static interface required of an RCU domain. The data structures are
// templated on this concept, so swapping the synchronization substrate is a
// one-token change (see bench/ablation_rcu_domain.cpp).
template <typename D>
concept rcu_domain = requires(D d, void* p, void (*fn)(void*, void*)) {
  typename D::Registration;          // RAII per-thread participation token
  { d.read_lock() } noexcept;        // wait-free (paper, Section 2)
  { d.read_unlock() } noexcept;      // wait-free
  d.synchronize();                   // blocks for a grace period
  d.retire(p, fn, p);                // deferred free after a grace period
  d.flush_retired();                 // force reclamation of this thread's queue
  { d.synchronize_calls() } -> std::convertible_to<std::uint64_t>;
};

// RAII read-side critical section, equivalent to the paper's
// rcu_read_lock/rcu_read_unlock bracket around `get`.
template <rcu_domain D>
class ReadGuard {
 public:
  explicit ReadGuard(D& domain) noexcept : domain_(domain) {
    domain_.read_lock();
  }
  ~ReadGuard() { domain_.read_unlock(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  D& domain_;
};

// Convenience: defer `delete p` to after a grace period.
template <rcu_domain D, typename T>
void retire_delete(D& domain, T* p) {
  domain.retire(
      p, [](void* q, void*) { delete static_cast<T*>(q); }, nullptr);
}

}  // namespace citrus::rcu
