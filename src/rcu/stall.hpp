// Grace-period stall watchdog — the user-space analogue of the Linux
// kernel's RCU CPU stall warnings (PAPERS.md: "Verification of the
// Tree-Based Hierarchical RCU" describes the production pairing of a
// verified grace-period engine with stall detection).
//
// Failure mode being defended against: a reader descheduled (or wedged)
// inside its critical section, or a grace-period leader abandoned between
// gp_seq states, leaves the shared sequence stuck in-progress. Every
// synchronize_rcu caller — and transitively every two-child delete in the
// Citrus tree — then blocks *silently*: the spin loops in gp_seq.hpp and
// the domain scans are correct but uninformative. The watchdog turns that
// silence into a diagnostic.
//
// Mechanism — purely observational, Linux-style. A background thread
// samples the domain's shared grace-period sequence (gp_seq.hpp: bit 0 =
// a leader is scanning) every `poll`. A sequence stuck at the same *odd*
// value for longer than `deadline` means one grace period has exceeded
// its budget; the watchdog then cuts a StallReport — the stuck sequence
// word, the earliest cookie blocked on it, the slots of every reader
// still pinned in a section (the scan's suspects), and an optional
// reclaim-backlog probe — and hands it to a sink instead of hanging or
// aborting. While the same grace period stays stuck, the report is
// re-emitted once per deadline; when the sequence finally moves, the
// recovery is counted. The watchdog itself never drives a grace period,
// never registers with the domain, and never blocks readers: it cannot
// turn a stall into a deadlock, and an idle domain (sequence parked on an
// even value) never produces a phantom report.
//
// Validation: tests/test_fault_torture.cpp seeds real stalls (reader and
// leader, src/fault/) and asserts the watchdog fires exactly when seeded
// and stays quiet otherwise.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "rcu/rcu.hpp"
#include "sync/backoff.hpp"

namespace citrus::rcu {

// What a domain must expose to be watchable: the shared sequence word and
// a non-blocking snapshot of in-section readers. Satisfied by the gp_seq
// domains (CounterFlagRcu, EpochRcu).
template <typename D>
concept stall_monitorable_domain = requires(const D d) {
  { d.gp_sequence() } noexcept -> std::convertible_to<std::uint64_t>;
  {
    d.snapshot_active_readers()
  } -> std::convertible_to<std::vector<ReaderSlot>>;
};

struct StallConfig {
  // A grace period older than this is reported (and re-reported once per
  // deadline while it stays stuck).
  std::chrono::milliseconds deadline{100};
  // Sampling period of the sequence word.
  std::chrono::milliseconds poll{1};
};

// One diagnostic cut of a stalled grace period.
struct StallReport {
  // The stuck sequence word (bit 0 set: a leader was mid-scan).
  std::uint64_t gp_seq = 0;
  // The earliest unsatisfied cookie: the value the stuck grace period
  // completes to, which every follower of it is spinning on. Cookies
  // snapped *during* the stuck grace period extend to gp_seq + 3.
  GpCookie pending_cookie = 0;
  // Age of the grace period when this report was cut.
  std::chrono::milliseconds waited{0};
  // Readers still pinned inside a section at report time — the set the
  // stuck scan may be waiting out. Slot indices follow the domain
  // registry's enumeration order.
  std::vector<ReaderSlot> stuck;
  // Deferred-reclaim backlog, if a probe was supplied (e.g. bound to
  // Reclaimer::pending); 0 otherwise.
  std::uint64_t pending_reclaim = 0;
};

template <stall_monitorable_domain Domain>
class StallWatchdog {
 public:
  using Sink = std::function<void(const StallReport&)>;
  using BacklogProbe = std::function<std::uint64_t()>;

  // The default sink writes the diagnostic to stderr (one line per stuck
  // reader), mirroring the kernel's "rcu_sched self-detected stall".
  explicit StallWatchdog(Domain& domain, StallConfig config = {},
                         Sink sink = {}, BacklogProbe backlog = {})
      : domain_(domain),
        config_(config),
        sink_(sink ? std::move(sink) : Sink(&StallWatchdog::print_report)),
        backlog_(std::move(backlog)),
        thread_([this] { run(); }) {}

  ~StallWatchdog() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  // Distinct grace periods that exceeded the deadline.
  std::uint64_t stalls_detected() const noexcept {
    return stalls_.load(std::memory_order_acquire);
  }
  // Sink invocations (>= stalls_detected: re-reports count).
  std::uint64_t reports_emitted() const noexcept {
    return reports_.load(std::memory_order_acquire);
  }
  // Stalled grace periods that later completed.
  std::uint64_t recoveries() const noexcept {
    return recoveries_.load(std::memory_order_acquire);
  }

  StallReport last_report() const {
    std::lock_guard<std::mutex> g(mu_);
    return last_report_;
  }

 private:
  void run() {
    std::uint64_t last_seq = domain_.gp_sequence();
    auto last_change = std::chrono::steady_clock::now();
    bool reported = false;  // current stuck GP already reported once
    auto next_report = last_change;
    while (!stop_.load(std::memory_order_acquire)) {
      // Deadline-bounded nap (sync::spin_until) so destruction is prompt.
      (void)sync::spin_until(
          std::chrono::steady_clock::now() + config_.poll,
          [this] { return stop_.load(std::memory_order_acquire); });
      const std::uint64_t s = domain_.gp_sequence();
      const auto now = std::chrono::steady_clock::now();
      if (s != last_seq) {
        // Progress. If the previous value had been reported stuck, the
        // stall resolved — count the recovery.
        if (reported) recoveries_.fetch_add(1, std::memory_order_acq_rel);
        reported = false;
        last_seq = s;
        last_change = now;
        continue;
      }
      if ((s & 1) == 0) continue;  // no grace period in flight: idle
      const auto age = now - last_change;
      if (age < config_.deadline) continue;
      if (reported && now < next_report) continue;  // throttle re-reports
      StallReport r;
      r.gp_seq = s;
      r.pending_cookie = s + 1;
      r.waited =
          std::chrono::duration_cast<std::chrono::milliseconds>(age);
      r.stuck = domain_.snapshot_active_readers();
      r.pending_reclaim = backlog_ ? backlog_() : 0;
      {
        std::lock_guard<std::mutex> g(mu_);
        last_report_ = r;
      }
      if (!reported) stalls_.fetch_add(1, std::memory_order_acq_rel);
      reported = true;
      next_report = now + config_.deadline;
      reports_.fetch_add(1, std::memory_order_acq_rel);
      sink_(r);
    }
  }

  static void print_report(const StallReport& r) {
    std::fprintf(stderr,
                 "[rcu-stall] grace period stuck for %lldms: gp_seq=%llu "
                 "(in progress), pending cookie %llu, %zu reader(s) "
                 "pinned, reclaim backlog %llu\n",
                 static_cast<long long>(r.waited.count()),
                 static_cast<unsigned long long>(r.gp_seq),
                 static_cast<unsigned long long>(r.pending_cookie),
                 r.stuck.size(),
                 static_cast<unsigned long long>(r.pending_reclaim));
    for (const ReaderSlot& slot : r.stuck) {
      std::fprintf(stderr, "[rcu-stall]   slot %zu word=%#llx\n", slot.index,
                   static_cast<unsigned long long>(slot.word));
    }
    std::fflush(stderr);
  }

  Domain& domain_;
  const StallConfig config_;
  const Sink sink_;
  const BacklogProbe backlog_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> reports_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  mutable std::mutex mu_;
  StallReport last_report_;
  std::thread thread_;  // last member: starts after everything is ready
};

}  // namespace citrus::rcu
