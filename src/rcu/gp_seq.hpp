// Shared grace-period sequence — the piggybacking engine behind
// CounterFlagRcu and EpochRcu (modelled on the Linux kernel's ->gp_seq,
// cf. Liang et al., "Verification of the Tree-Based Hierarchical
// Read-Copy Update in the Linux Kernel").
//
// The paper's counter-flag synchronize_rcu takes no lock, but every call
// pays one full scan of remote reader words. Under N concurrent two-child
// deleters those N scans are redundant: a single scan whose sampling fence
// is ordered after *all* of their unlinks retires all N requests at once.
// GpSeq turns "one scan per call" into "one scan per grace period".
//
// State is a single monotone 64-bit word, Linux-style:
//
//   bit 0        — a grace period is in progress (a leader is scanning)
//   bits 63..1   — number of grace periods completed
//
// so the word moves  even --CAS--> odd --store--> even+2  and only the
// thread that won the CAS (the *leader*) ever scans. Everyone else
// (*followers*) waits for the sequence to reach its cookie — no scan, no
// lock, and the paper's "synchronizers do not coordinate via locks"
// property is preserved: the CAS is a single wide-spread-free atomic, a
// stalled leader can stall followers of the SAME grace period (they would
// have had to wait for its scan anyway via the reader words), and the
// expedited path in the domain bypasses GpSeq entirely.
//
// Cookie protocol (all operations on seq_ are seq_cst):
//
//   snap():  s = seq_;  cookie = (s + 3) & ~1
//     * s even (no GP running): cookie = s + 2 — the next full grace
//       period. The caller's retire fence precedes the snap, and any
//       future leader CAS (s -> s+1) follows it in seq_'s modification
//       order, so that leader's sampling fence is ordered after the
//       caller's fence. One full GP suffices.
//     * s odd (GP in flight): cookie = s + 3 — the grace period AFTER the
//       one in flight. The in-flight leader's sampling fence may precede
//       the caller's retire, so the in-flight GP may have sampled a reader
//       that still sees the not-yet-retired pointer. Only a GP that
//       *starts* after the snap is safe to adopt.
//
//   done(c): seq_ >= c.  The leader's completion store is seq_cst; a
//     follower that reads seq_ >= c synchronizes-with it, so everything
//     the scan observed (all pre-GP readers gone) happens-before the
//     follower's return.
//
//   drive(c, scan): leader-election loop. A caller leads at most once and
//     never leads a useless grace period: the largest even s < c is c - 2,
//     whose grace period completes to exactly c.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "fault/fault.hpp"
#include "sync/backoff.hpp"
#include "sync/cache.hpp"

namespace citrus::rcu {

// Opaque grace-period cookie (see GpSeq::snap). Obtained from
// start_grace_period(), redeemed via poll()/synchronize(cookie).
using GpCookie = std::uint64_t;

class GpSeq {
 public:
  static constexpr std::uint64_t kInProgress = 1;

  GpSeq() = default;
  GpSeq(const GpSeq&) = delete;
  GpSeq& operator=(const GpSeq&) = delete;

  // Cookie for "a full grace period from now". The caller must execute a
  // seq_cst fence (ordering its unlinks) BEFORE calling snap.
  GpCookie snap() const noexcept {
    return (seq_.load(std::memory_order_seq_cst) + 3) & ~kInProgress;
  }

  // Non-blocking: has the grace period named by `cookie` completed?
  bool done(GpCookie cookie) const noexcept {
    return seq_.load(std::memory_order_seq_cst) >= cookie;
  }

  // Wait until the grace period named by `cookie` has completed, scanning
  // at most once: if no grace period that satisfies the cookie is running,
  // become the leader (CAS even -> odd), fence, run `scan` (which must
  // wait out all readers whose section predates the fence), and publish
  // completion (odd -> even+2). Otherwise spin-wait on the sequence —
  // piggybacking on the concurrent leader's scan.
  template <typename ScanFn>
  void drive(GpCookie cookie, ScanFn&& scan) noexcept {
    bool led = false;
    sync::Backoff bo;
    for (;;) {
      std::uint64_t s = seq_.load(std::memory_order_seq_cst);
      if (s >= cookie) {
        if (!led) shared_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if ((s & kInProgress) == 0) {
        // No grace period in flight; try to lead s -> s+1.
        if (seq_.compare_exchange_strong(s, s + kInProgress,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst)) {
          // Fault site: a leader descheduled between winning the election
          // and completing the scan — the sequence is stuck odd and every
          // follower of this grace period waits (the stall the watchdog
          // in rcu/stall.hpp exists to report).
          fault::inject_stall(fault::Site::kLeaderStall);
          // Sampling fence: every reader word store that precedes a
          // follower's snap of `s` (or earlier) is ordered before this
          // fence via seq_'s single modification order, so the scan
          // observes it.
          std::atomic_thread_fence(std::memory_order_seq_cst);
          scan();
          seq_.store(s + 2, std::memory_order_seq_cst);
          started_.fetch_add(1, std::memory_order_relaxed);
          led = true;
          bo.reset();
          continue;  // loop: s + 2 may still be < cookie (odd snap)
        }
        continue;  // lost the election; someone else is leading
      }
      bo.pause();  // follower: wait for the in-flight scan
    }
  }

  std::uint64_t current() const noexcept {
    return seq_.load(std::memory_order_seq_cst);
  }

  // Grace periods this engine actually scanned for / calls that rode an
  // existing or concurrent grace period without scanning. Every drive()
  // increments exactly one of the two, so
  //   started() + shared() == number of drive() calls.
  std::uint64_t started() const noexcept {
    return started_.load(std::memory_order_relaxed);
  }
  std::uint64_t shared() const noexcept {
    return shared_.load(std::memory_order_relaxed);
  }

 private:
  alignas(sync::kDestructiveInterference) std::atomic<std::uint64_t> seq_{0};
  alignas(sync::kDestructiveInterference) std::atomic<std::uint64_t>
      started_{0};
  std::atomic<std::uint64_t> shared_{0};
};

}  // namespace citrus::rcu
