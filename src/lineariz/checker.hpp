// Linearizability checking for set histories, point and ranged.
//
// Two modes:
//
//   check_history — per-key decomposition. Point operations split by key
//   as before; each range scan is *projected* onto every key of interest
//   inside its bounds as a synthetic contains(k) = (k observed) event
//   spanning the scan's full window. The projection is sound for every
//   scan consistency level this repo implements (each key's observation
//   happened at some instant inside the window: the validated chunk that
//   covered it, the point read of the weak succ chain), so any violation
//   it reports is real. It does not check atomicity *across* keys, so a
//   merely-chunked scan passes even where a true snapshot is claimed.
//
//   check_multikey_history — exact joint Wing&Gong search over the full
//   key-set state, range operations linearized as atomic multi-key reads.
//   This is the one that rejects a non-atomic scan result; exponential in
//   history length, capped at 64 events total.
#pragma once

#include <string>
#include <vector>

#include "lineariz/history.hpp"

namespace citrus::lineariz {

struct CheckResult {
  bool linearizable = true;
  std::int64_t failing_key = 0;
  std::string detail;
  std::size_t keys_checked = 0;
  std::size_t events_checked = 0;
};

// Checks one key's history (operations over a single present/absent bit)
// against set semantics, assuming the key is initially `initially_present`.
// Wing&Gong-style search: repeatedly choose a minimal operation (one that
// no other pending operation's response precedes) whose recorded result is
// consistent with the simulated state; memoized on the set of linearized
// operations (the final state is a function of that set). Histories are
// limited to 64 events per key (a bitmask) — the stress tests size their
// runs accordingly.
bool check_key_history(std::vector<Event> events, bool initially_present,
                       std::string* detail);

// Full-history check, decomposed per key; range scans enter as per-key
// projections (see file comment). `initial_keys` lists keys present
// before the recorded window (sorted or not; duplicates ignored).
CheckResult check_history(const HistoryRecorder& recorder,
                          const std::vector<std::int64_t>& initial_keys);

// Exact joint check: every operation (including each range scan, as one
// atomic multi-key read) must linearize against the full key-set state.
// Limited to 64 events total across all threads and keys.
CheckResult check_multikey_history(const HistoryRecorder& recorder,
                                   const std::vector<std::int64_t>& initial_keys);

}  // namespace citrus::lineariz
