// Per-key linearizability checking for set histories.
#pragma once

#include <string>
#include <vector>

#include "lineariz/history.hpp"

namespace citrus::lineariz {

struct CheckResult {
  bool linearizable = true;
  std::int64_t failing_key = 0;
  std::string detail;
  std::size_t keys_checked = 0;
  std::size_t events_checked = 0;
};

// Checks one key's history (operations over a single present/absent bit)
// against set semantics, assuming the key is initially `initially_present`.
// Wing&Gong-style search: repeatedly choose a minimal operation (one that
// no other pending operation's response precedes) whose recorded result is
// consistent with the simulated state; memoized on the set of linearized
// operations (the final state is a function of that set). Histories are
// limited to 64 events per key (a bitmask) — the stress tests size their
// runs accordingly.
bool check_key_history(std::vector<Event> events, bool initially_present,
                       std::string* detail);

// Full-history check, decomposed per key. `initial_keys` lists keys present
// before the recorded window (sorted or not; duplicates ignored).
CheckResult check_history(const HistoryRecorder& recorder,
                          const std::vector<std::int64_t>& initial_keys);

}  // namespace citrus::lineariz
