// Concurrent-history recording for linearizability checking.
//
// Theorem 11 of the paper states Citrus is a linearizable dictionary. We
// test that claim directly: worker threads record (invocation, response)
// stamped operations, and the checker (checker.hpp) searches for a valid
// linearization. Set semantics make this tractable: operations on distinct
// keys commute, so the history decomposes into one independent history per
// key (each over a single present/absent bit), checked separately.
//
// Range scans are multi-key operations and do not decompose — see
// checker.hpp for the two checking modes (sound per-key projection and
// exact joint search).
//
// Timestamps come from one global atomic counter, which yields a total
// order consistent with real time — strictly stronger than a clock and
// immune to timer granularity ties. The fetch_add traffic slightly
// serializes the workload; that is acceptable for a checker (it shrinks
// the window of overlap, never creating false violations).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace citrus::lineariz {

enum class OpType : std::uint8_t { kInsert, kErase, kContains, kRange };

struct Event {
  std::int64_t key;         // point ops; for kRange this mirrors `lo`
  OpType type;
  bool result;              // point ops; unused (true) for kRange
  std::uint64_t invoked;    // global order stamp before the call
  std::uint64_t responded;  // stamp after the call
  // kRange only: the queried interval [lo, hi] and the keys the scan
  // emitted, in ascending order. A scan that stopped early (visitor abort
  // or limit) must be recorded with hi = the last key it actually covered
  // (observed.back(), or lo-1 conceptually if it covered nothing) — the
  // checker treats [lo, hi] as fully scanned.
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::vector<std::int64_t> observed;
  // True for an operation that failed without taking effect and WITHOUT
  // asserting anything about the state — a kNoMemory update
  // (update_status.hpp), not a semantic no-op: insert(present)=false is a
  // membership claim and must stay noop=false. The checker linearizes a
  // noop event anywhere in its window with the state unchanged. Appended
  // last so existing aggregate initializations stay valid.
  bool noop = false;
};

class HistoryRecorder {
 public:
  explicit HistoryRecorder(int threads) : per_thread_(threads) {}

  // Stamp an invocation (call before the operation).
  std::uint64_t invoke() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

  // Record a completed operation for thread `tid`.
  void record(int tid, std::int64_t key, OpType type, bool result,
              std::uint64_t invoked) {
    const std::uint64_t responded =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[static_cast<std::size_t>(tid)].push_back(
        Event{key, type, result, invoked, responded, 0, 0, {}});
  }

  // Record an update that failed without effect or assertion (kNoMemory):
  // a legal no-op at any point in its window. `result` is recorded false.
  void record_noop(int tid, std::int64_t key, OpType type,
                   std::uint64_t invoked) {
    const std::uint64_t responded =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[static_cast<std::size_t>(tid)].push_back(
        Event{key, type, false, invoked, responded, 0, 0, {}, true});
  }

  // Record a completed range scan over [lo, hi] that emitted `observed`
  // (ascending). See the Event comment for truncated scans.
  void record_range(int tid, std::int64_t lo, std::int64_t hi,
                    std::vector<std::int64_t> observed,
                    std::uint64_t invoked) {
    const std::uint64_t responded =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[static_cast<std::size_t>(tid)].push_back(
        Event{lo, OpType::kRange, true, invoked, responded, lo, hi,
              std::move(observed)});
  }

  // Per-key histories of point operations, merged across threads (range
  // events excluded — fetch those with range_events). Call at quiescence.
  std::map<std::int64_t, std::vector<Event>> by_key() const;

  // All recorded range scans, merged across threads.
  std::vector<Event> range_events() const;

  // Every event from every thread (point and range), for the joint check.
  std::vector<Event> all_events() const;

  std::size_t total_events() const;

 private:
  std::atomic<std::uint64_t> clock_{0};
  // One unsynchronized vector per thread; merged after the run.
  std::vector<std::vector<Event>> per_thread_;
};

}  // namespace citrus::lineariz
