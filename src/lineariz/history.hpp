// Concurrent-history recording for linearizability checking.
//
// Theorem 11 of the paper states Citrus is a linearizable dictionary. We
// test that claim directly: worker threads record (invocation, response)
// stamped operations, and the checker (checker.hpp) searches for a valid
// linearization. Set semantics make this tractable: operations on distinct
// keys commute, so the history decomposes into one independent history per
// key (each over a single present/absent bit), checked separately.
//
// Timestamps come from one global atomic counter, which yields a total
// order consistent with real time — strictly stronger than a clock and
// immune to timer granularity ties. The fetch_add traffic slightly
// serializes the workload; that is acceptable for a checker (it shrinks
// the window of overlap, never creating false violations).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

namespace citrus::lineariz {

enum class OpType : std::uint8_t { kInsert, kErase, kContains };

struct Event {
  std::int64_t key;
  OpType type;
  bool result;
  std::uint64_t invoked;    // global order stamp before the call
  std::uint64_t responded;  // stamp after the call
};

class HistoryRecorder {
 public:
  explicit HistoryRecorder(int threads) : per_thread_(threads) {}

  // Stamp an invocation (call before the operation).
  std::uint64_t invoke() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

  // Record a completed operation for thread `tid`.
  void record(int tid, std::int64_t key, OpType type, bool result,
              std::uint64_t invoked) {
    const std::uint64_t responded =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[static_cast<std::size_t>(tid)].push_back(
        Event{key, type, result, invoked, responded});
  }

  // Per-key histories, merged across threads. Call at quiescence.
  std::map<std::int64_t, std::vector<Event>> by_key() const;

  std::size_t total_events() const;

 private:
  std::atomic<std::uint64_t> clock_{0};
  // One unsynchronized vector per thread; merged after the run.
  std::vector<std::vector<Event>> per_thread_;
};

}  // namespace citrus::lineariz
