#include "lineariz/checker.hpp"

#include <algorithm>
#include <unordered_set>

namespace citrus::lineariz {

std::map<std::int64_t, std::vector<Event>> HistoryRecorder::by_key() const {
  std::map<std::int64_t, std::vector<Event>> out;
  for (const auto& events : per_thread_) {
    for (const Event& e : events) out[e.key].push_back(e);
  }
  return out;
}

std::size_t HistoryRecorder::total_events() const {
  std::size_t n = 0;
  for (const auto& events : per_thread_) n += events.size();
  return n;
}

namespace {

// Would applying `e` in state `present` produce the recorded result, and
// what is the state afterwards?
bool apply(const Event& e, bool present, bool* after) {
  switch (e.type) {
    case OpType::kInsert:
      if (e.result == present) return false;  // true iff was absent
      *after = true;
      return true;
    case OpType::kErase:
      if (e.result != present) return false;  // true iff was present
      *after = false;
      return true;
    case OpType::kContains:
      if (e.result != present) return false;
      *after = present;
      return true;
  }
  return false;
}

struct Search {
  const std::vector<Event>& events;
  std::unordered_set<std::uint64_t> visited;

  // DFS over subsets of linearized operations. `done` is a bitmask; the
  // state after a feasible `done` set is determined by it (each successful
  // insert/erase toggles the bit deterministically), so visiting a mask
  // twice is redundant.
  bool dfs(std::uint64_t done, bool present) {
    const std::uint64_t n = events.size();
    if (done == (n == 64 ? ~0ull : (1ull << n) - 1)) return true;
    if (!visited.insert(done).second) return false;

    // An operation may be linearized next iff no *other* pending
    // operation responded before it was invoked (real-time order).
    std::uint64_t min_response = ~0ull;
    for (std::uint64_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      min_response = std::min(min_response, events[i].responded);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      if (events[i].invoked > min_response) continue;  // not minimal
      bool after;
      if (!apply(events[i], present, &after)) continue;
      if (dfs(done | (1ull << i), after)) return true;
    }
    return false;
  }
};

}  // namespace

bool check_key_history(std::vector<Event> events, bool initially_present,
                       std::string* detail) {
  if (events.size() > 64) {
    if (detail != nullptr) {
      *detail = "history too long for the checker (>64 events for one key)";
    }
    return false;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.invoked < b.invoked; });
  Search search{events, {}};
  if (!search.dfs(0, initially_present)) {
    if (detail != nullptr) {
      *detail = "no valid linearization for " +
                std::to_string(events.size()) + " events";
    }
    return false;
  }
  return true;
}

CheckResult check_history(const HistoryRecorder& recorder,
                          const std::vector<std::int64_t>& initial_keys) {
  std::unordered_set<std::int64_t> initial(initial_keys.begin(),
                                           initial_keys.end());
  CheckResult result;
  for (auto& [key, events] : recorder.by_key()) {
    result.events_checked += events.size();
    ++result.keys_checked;
    std::string detail;
    if (!check_key_history(events, initial.count(key) > 0, &detail)) {
      result.linearizable = false;
      result.failing_key = key;
      result.detail = detail;
      return result;
    }
  }
  return result;
}

}  // namespace citrus::lineariz
