#include "lineariz/checker.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace citrus::lineariz {

std::map<std::int64_t, std::vector<Event>> HistoryRecorder::by_key() const {
  std::map<std::int64_t, std::vector<Event>> out;
  for (const auto& events : per_thread_) {
    for (const Event& e : events) {
      if (e.type != OpType::kRange) out[e.key].push_back(e);
    }
  }
  return out;
}

std::vector<Event> HistoryRecorder::range_events() const {
  std::vector<Event> out;
  for (const auto& events : per_thread_) {
    for (const Event& e : events) {
      if (e.type == OpType::kRange) out.push_back(e);
    }
  }
  return out;
}

std::vector<Event> HistoryRecorder::all_events() const {
  std::vector<Event> out;
  for (const auto& events : per_thread_) {
    out.insert(out.end(), events.begin(), events.end());
  }
  return out;
}

std::size_t HistoryRecorder::total_events() const {
  std::size_t n = 0;
  for (const auto& events : per_thread_) n += events.size();
  return n;
}

namespace {

// Would applying `e` in state `present` produce the recorded result, and
// what is the state afterwards?
bool apply(const Event& e, bool present, bool* after) {
  if (e.noop) {
    // A no-effect, no-assertion failure (kNoMemory): feasible at any
    // point in its window, state unchanged.
    *after = present;
    return true;
  }
  switch (e.type) {
    case OpType::kInsert:
      if (e.result == present) return false;  // true iff was absent
      *after = true;
      return true;
    case OpType::kErase:
      if (e.result != present) return false;  // true iff was present
      *after = false;
      return true;
    case OpType::kContains:
      if (e.result != present) return false;
      *after = present;
      return true;
    case OpType::kRange:
      return false;  // never reaches the per-key search (projected away)
  }
  return false;
}

struct Search {
  const std::vector<Event>& events;
  std::unordered_set<std::uint64_t> visited;

  // DFS over subsets of linearized operations. `done` is a bitmask; the
  // state after a feasible `done` set is determined by it (each successful
  // insert/erase toggles the bit deterministically), so visiting a mask
  // twice is redundant.
  bool dfs(std::uint64_t done, bool present) {
    const std::uint64_t n = events.size();
    if (done == (n == 64 ? ~0ull : (1ull << n) - 1)) return true;
    if (!visited.insert(done).second) return false;

    // An operation may be linearized next iff no *other* pending
    // operation responded before it was invoked (real-time order).
    std::uint64_t min_response = ~0ull;
    for (std::uint64_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      min_response = std::min(min_response, events[i].responded);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      if (events[i].invoked > min_response) continue;  // not minimal
      bool after;
      if (!apply(events[i], present, &after)) continue;
      if (dfs(done | (1ull << i), after)) return true;
    }
    return false;
  }
};

// Joint-state apply: mutate/verify against the full present-key set.
// Returns false if the recorded result is infeasible in `present`; on
// success `present` is the post-state.
bool apply_joint(const Event& e, std::set<std::int64_t>* present) {
  if (e.noop) return true;  // kNoMemory failure: legal no-op anywhere
  const bool was = present->count(e.key) > 0;
  switch (e.type) {
    case OpType::kInsert:
      if (e.result == was) return false;
      present->insert(e.key);
      return true;
    case OpType::kErase:
      if (e.result != was) return false;
      present->erase(e.key);
      return true;
    case OpType::kContains:
      return e.result == was;
    case OpType::kRange: {
      // Atomic multi-key read: the observed set must equal exactly the
      // in-bounds slice of the current state.
      auto it = present->lower_bound(e.lo);
      std::size_t i = 0;
      for (; it != present->end() && *it <= e.hi; ++it, ++i) {
        if (i == e.observed.size() || e.observed[i] != *it) return false;
      }
      return i == e.observed.size();
    }
  }
  return false;
}

struct JointSearch {
  const std::vector<Event>& events;
  std::unordered_set<std::uint64_t> visited;

  // Same mask-memoized Wing&Gong DFS as Search, but the simulated state is
  // the whole key set. The state is still a function of the done mask
  // (each linearized insert/erase has a deterministic recorded effect), so
  // the mask memo stays valid; the state travels by value down the stack.
  bool dfs(std::uint64_t done, const std::set<std::int64_t>& present) {
    const std::uint64_t n = events.size();
    if (done == (n == 64 ? ~0ull : (1ull << n) - 1)) return true;
    if (!visited.insert(done).second) return false;

    std::uint64_t min_response = ~0ull;
    for (std::uint64_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      min_response = std::min(min_response, events[i].responded);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      if (events[i].invoked > min_response) continue;  // not minimal
      std::set<std::int64_t> after = present;
      if (!apply_joint(events[i], &after)) continue;
      if (dfs(done | (1ull << i), after)) return true;
    }
    return false;
  }
};

}  // namespace

bool check_key_history(std::vector<Event> events, bool initially_present,
                       std::string* detail) {
  if (events.size() > 64) {
    if (detail != nullptr) {
      *detail = "history too long for the checker (>64 events for one key)";
    }
    return false;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.invoked < b.invoked; });
  Search search{events, {}};
  if (!search.dfs(0, initially_present)) {
    if (detail != nullptr) {
      *detail = "no valid linearization for " +
                std::to_string(events.size()) + " events";
    }
    return false;
  }
  return true;
}

CheckResult check_history(const HistoryRecorder& recorder,
                          const std::vector<std::int64_t>& initial_keys) {
  std::unordered_set<std::int64_t> initial(initial_keys.begin(),
                                           initial_keys.end());
  auto per_key = recorder.by_key();
  const std::vector<Event> ranges = recorder.range_events();

  // Project each range scan onto every key of interest inside its bounds:
  // a synthetic contains(k) = (k observed) spanning the scan's window.
  // Keys of interest = keys with point ops, initial keys, observed keys —
  // a key outside all three is absent throughout and projects trivially.
  if (!ranges.empty()) {
    std::set<std::int64_t> keys;
    for (const auto& [key, events] : per_key) keys.insert(key);
    for (const std::int64_t key : initial_keys) keys.insert(key);
    for (const Event& r : ranges) {
      for (const std::int64_t key : r.observed) keys.insert(key);
    }
    for (const Event& r : ranges) {
      for (auto it = keys.lower_bound(r.lo); it != keys.end() && *it <= r.hi;
           ++it) {
        const bool seen =
            std::binary_search(r.observed.begin(), r.observed.end(), *it);
        per_key[*it].push_back(
            Event{*it, OpType::kContains, seen, r.invoked, r.responded, 0, 0,
                  {}});
      }
    }
  }

  CheckResult result;
  for (auto& [key, events] : per_key) {
    result.events_checked += events.size();
    ++result.keys_checked;
    std::string detail;
    if (!check_key_history(events, initial.count(key) > 0, &detail)) {
      result.linearizable = false;
      result.failing_key = key;
      result.detail = detail;
      return result;
    }
  }
  return result;
}

CheckResult check_multikey_history(
    const HistoryRecorder& recorder,
    const std::vector<std::int64_t>& initial_keys) {
  CheckResult result;
  std::vector<Event> events = recorder.all_events();
  result.events_checked = events.size();
  result.keys_checked = 0;
  if (events.size() > 64) {
    result.linearizable = false;
    result.detail = "history too long for the joint checker (>64 events)";
    return result;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.invoked < b.invoked; });
  const std::set<std::int64_t> initial(initial_keys.begin(),
                                       initial_keys.end());
  result.keys_checked = initial.size();
  JointSearch search{events, {}};
  if (!search.dfs(0, initial)) {
    result.linearizable = false;
    result.detail = "no valid joint linearization for " +
                    std::to_string(events.size()) + " events";
  }
  return result;
}

}  // namespace citrus::lineariz
