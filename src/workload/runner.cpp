#include "workload/runner.hpp"

#include <atomic>
#include <thread>

#include "sync/barrier.hpp"
#include "sync/cache.hpp"
#include "util/affinity.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

namespace citrus::workload {

namespace {

struct alignas(sync::kDestructiveInterference) ThreadCounters {
  std::uint64_t contains_ops = 0;
  std::uint64_t insert_ops = 0;
  std::uint64_t erase_ops = 0;
  std::uint64_t insert_hits = 0;
  std::uint64_t erase_hits = 0;
  std::uint64_t scan_ops = 0;
  std::uint64_t scan_keys = 0;
  util::LogHistogram read_latency;
  util::LogHistogram update_latency;
};

RunResult::LatencyQuantiles quantiles(const util::LogHistogram& h) {
  return {h.quantile(0.50), h.quantile(0.90), h.quantile(0.99),
          h.quantile(0.999)};
}

}  // namespace

void prefill(adapters::IDictionary& dict, const WorkloadConfig& config) {
  const auto target = static_cast<std::uint64_t>(config.key_range / 2);
  std::uint64_t initial_size;
  {
    // size() may itself need a read-side critical section (Bonsai).
    const auto scope = dict.enter_thread();
    initial_size = dict.size();
  }
  std::atomic<std::uint64_t> inserted{initial_size};
  const int workers = config.threads > 0 ? config.threads : 1;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&dict, &inserted, &config, target, t] {
      const auto scope = dict.enter_thread();
      util::Xoshiro256 rng(config.seed * 0x9E3779B97F4A7C15ull + 77771 * t);
      // Claim a ticket per successful insertion so the final size lands on
      // `target` exactly: a bare check-then-insert lets several threads pass
      // the size check together and overshoot.
      while (true) {
        const auto ticket = inserted.fetch_add(1, std::memory_order_relaxed);
        if (ticket >= target) {
          inserted.fetch_sub(1, std::memory_order_relaxed);
          break;
        }
        for (;;) {
          const auto key =
              static_cast<std::int64_t>(rng.bounded(config.key_range));
          if (dict.insert(key, key)) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

RunResult run_workload(adapters::IDictionary& dict,
                       const WorkloadConfig& config) {
  if (config.prefill) prefill(dict, config);

  const auto stats_before = dict.stats();
  const int n = config.threads > 0 ? config.threads : 1;
  std::vector<ThreadCounters> counters(n);
  sync::SpinBarrier barrier(static_cast<std::uint32_t>(n) + 1);
  std::atomic<bool> stop{false};

  // Operation mix as integer thresholds out of 2^20 (cheap to test):
  // [0, contains_cut) contains, [contains_cut, scan_cut) range scans,
  // the rest split evenly between insert and delete.
  constexpr std::uint64_t kMixDenominator = 1 << 20;
  const auto contains_cut = static_cast<std::uint64_t>(
      config.contains_fraction * static_cast<double>(kMixDenominator));
  const auto scan_cut =
      contains_cut + static_cast<std::uint64_t>(
                         config.scan_fraction *
                         static_cast<double>(kMixDenominator));
  const auto insert_cut = scan_cut + (kMixDenominator - scan_cut) / 2;
  adapters::ScanOptions scan_opts;
  scan_opts.consistency = config.scan_consistency;
  scan_opts.chunk = config.scan_chunk;

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      util::pin_to_cpu(static_cast<unsigned>(t),
                       static_cast<unsigned>(n));  // no-op when oversubscribed
      // The thread scope must end *before* the exit barrier: with a QSBR
      // domain, a worker parked at the barrier while still registered and
      // online would stall the grace period of a worker that is finishing
      // its last update (synchronize_rcu waits for every online thread to
      // checkpoint or go offline — the QSBR contract).
      std::unique_ptr<adapters::ThreadScope> scope = dict.enter_thread();
      util::Xoshiro256 rng(config.seed + 0x1234567ull * (t + 1));
      util::ZipfGenerator zipf(static_cast<std::uint64_t>(config.key_range),
                               config.zipf_theta);
      ThreadCounters& c = counters[t];
      // Per the paper's single-writer experiment: thread 0 updates
      // (50% insert / 50% delete), everyone else only reads.
      const bool update_thread = !config.single_writer || t == 0;
      const std::uint64_t my_contains_cut =
          config.single_writer ? (update_thread ? 0 : kMixDenominator)
                               : contains_cut;
      const std::uint64_t my_scan_cut =
          config.single_writer ? my_contains_cut : scan_cut;
      const std::uint64_t my_insert_cut =
          config.single_writer
              ? (update_thread ? kMixDenominator / 2 : kMixDenominator)
              : insert_cut;

      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // Check the stop flag every iteration but batch a few operations
        // per flag read to keep loop overhead negligible.
        for (int batch = 0; batch < 32; ++batch) {
          const auto key = static_cast<std::int64_t>(
              config.zipf_theta > 0.0
                  ? zipf(rng)
                  : rng.bounded(static_cast<std::uint64_t>(config.key_range)));
          const std::uint64_t dice = rng.bounded(kMixDenominator);
          const auto started =
              config.measure_latency ? util::Clock::now() : util::Clock::time_point{};
          if (dice < my_contains_cut) {
            ++c.contains_ops;
            dict.contains(key);
            if (config.measure_latency) {
              c.read_latency.add(static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      util::Clock::now() - started)
                      .count()));
            }
          } else if (dice < my_scan_cut) {
            ++c.scan_ops;
            const std::int64_t hi =
                key <= config.key_range - config.scan_width
                    ? key + config.scan_width
                    : config.key_range;
            std::uint64_t visited = 0;
            dict.range(
                key, hi,
                [&visited](std::int64_t, std::int64_t) {
                  ++visited;
                  return true;
                },
                scan_opts);
            c.scan_keys += visited;
            if (config.measure_latency) {
              c.read_latency.add(static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      util::Clock::now() - started)
                      .count()));
            }
          } else {
            if (dice < my_insert_cut) {
              ++c.insert_ops;
              c.insert_hits += dict.insert(key, key) ? 1 : 0;
            } else {
              ++c.erase_ops;
              c.erase_hits += dict.erase(key) ? 1 : 0;
            }
            if (config.measure_latency) {
              c.update_latency.add(static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      util::Clock::now() - started)
                      .count()));
            }
          }
        }
      }
      scope.reset();  // offline before parking (see comment above)
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();  // release the workers together
  util::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::duration<double>(config.seconds));
  stop.store(true, std::memory_order_relaxed);
  barrier.arrive_and_wait();  // workers quiesce
  const double elapsed = watch.elapsed_seconds();
  for (auto& th : threads) th.join();

  RunResult r;
  r.seconds = elapsed;
  for (const ThreadCounters& c : counters) {
    r.contains_ops += c.contains_ops;
    r.insert_ops += c.insert_ops;
    r.erase_ops += c.erase_ops;
    r.insert_hits += c.insert_hits;
    r.erase_hits += c.erase_hits;
    r.scan_ops += c.scan_ops;
    r.scan_keys += c.scan_keys;
  }
  r.total_ops = r.contains_ops + r.insert_ops + r.erase_ops + r.scan_ops;
  if (config.measure_latency) {
    util::LogHistogram reads, updates;
    for (const ThreadCounters& c : counters) {
      reads.merge(c.read_latency);
      updates.merge(c.update_latency);
    }
    r.read_latency = quantiles(reads);
    r.update_latency = quantiles(updates);
  }
  r.throughput = elapsed > 0.0 ? static_cast<double>(r.total_ops) / elapsed
                               : 0.0;
  const auto stats_after = dict.stats();
  r.grace_periods = stats_after.grace_periods - stats_before.grace_periods;
  r.scan_retries = stats_after.scan_retries - stats_before.scan_retries;
  {
    const auto scope = dict.enter_thread();
    r.final_size = dict.size();
  }
  return r;
}

util::Summary run_repeated(const std::string& dictionary_name,
                           const WorkloadConfig& config, int repeats,
                           const adapters::Options& options) {
  adapters::Options opt = options;
  if (opt.key_range_hint == 0) opt.key_range_hint = config.key_range;
  std::vector<double> throughputs;
  throughputs.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    auto dict = adapters::make_dictionary(dictionary_name, opt);
    WorkloadConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(i) * 1315423911ull;
    throughputs.push_back(run_workload(*dict, c).throughput);
  }
  return util::summarize(std::move(throughputs));
}

}  // namespace citrus::workload
