// Workload description for the figure-reproduction harness.
//
// The paper's setup (Section 5): key ranges [0, 2e5] and [0, 2e6], trees
// pre-filled to half the key range, each thread continuously executing
// randomly chosen operations on uniformly random keys for five seconds,
// five repetitions, arithmetic-mean throughput reported.
#pragma once

#include <cstdint>
#include <string>

#include "adapters/idictionary.hpp"

namespace citrus::workload {

struct WorkloadConfig {
  std::int64_t key_range = 200000;  // keys drawn from [0, key_range)
  // Fraction of operations that are contains; the remainder splits evenly
  // between insert and delete (paper: "50% insert and 50% delete").
  double contains_fraction = 0.5;
  // Fraction of operations that are range scans (harness extension; the
  // paper's mixes are point-ops only). Carved out of the update share:
  // contains keeps contains_fraction, scans take scan_fraction, the rest
  // splits evenly between insert and delete.
  double scan_fraction = 0.0;
  // Width of each scan interval: [lo, lo + scan_width] for uniform lo.
  std::int64_t scan_width = 100;
  // Consistency requested from IDictionary::range; implementations serve
  // the strongest level at or below their ceiling.
  adapters::ScanConsistency scan_consistency =
      adapters::ScanConsistency::kChunked;
  // Chunk size for kChunked scans (0 = implementation default).
  std::size_t scan_chunk = 0;
  int threads = 4;
  double seconds = 1.0;
  // Figure 9 mode: thread 0 runs 50% insert / 50% delete, all other
  // threads run 100% contains. Overrides contains_fraction.
  bool single_writer = false;
  bool prefill = true;  // fill to key_range/2 before measuring
  std::uint64_t seed = 0x5EED;
  // 0 = uniform (paper). >0 adds Zipf skew (harness extension).
  double zipf_theta = 0.0;
  // Record per-operation latency into log-scale histograms (harness
  // extension; adds two clock reads per operation).
  bool measure_latency = false;

  std::string mix_label() const {
    if (single_writer) return "single-writer";
    const int pct = static_cast<int>(contains_fraction * 100.0 + 0.5);
    std::string label = std::to_string(pct) + "% contains";
    if (scan_fraction > 0.0) {
      const int spct = static_cast<int>(scan_fraction * 100.0 + 0.5);
      label += " / " + std::to_string(spct) + "% scans(w=" +
               std::to_string(scan_width) + ")";
    }
    return label;
  }
};

struct RunResult {
  double seconds = 0.0;
  std::uint64_t total_ops = 0;
  double throughput = 0.0;  // operations per second
  std::uint64_t contains_ops = 0;
  std::uint64_t insert_ops = 0;
  std::uint64_t erase_ops = 0;
  std::uint64_t insert_hits = 0;  // successful inserts
  std::uint64_t erase_hits = 0;
  std::uint64_t scan_ops = 0;        // range() calls issued
  std::uint64_t scan_keys = 0;       // keys visited across all scans
  std::uint64_t scan_retries = 0;    // validation retries (stats builds only)
  std::uint64_t grace_periods = 0;  // synchronize_rcu calls during the run
  std::size_t final_size = 0;
  // Populated only when WorkloadConfig::measure_latency is set: bucket
  // lower bounds in nanoseconds, separated by op class.
  struct LatencyQuantiles {
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
  };
  LatencyQuantiles read_latency;
  LatencyQuantiles update_latency;
};

}  // namespace citrus::workload
