// Human-readable tables and CSV emission for the figure benches.
//
// Each figure binary prints the series the paper plots: one row per
// (algorithm, thread count) with mean throughput over the repeats, plus an
// optional CSV (CITRUS_CSV=path) for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "adapters/idictionary.hpp"
#include "util/stats.hpp"

namespace citrus::workload {

struct SeriesPoint {
  std::string series;  // e.g. algorithm name
  int threads = 0;
  util::Summary throughput;  // ops/sec over repeats
};

// Pretty-prints a threads-by-series table of mean throughput (ops/sec,
// engineering-notation) to `out`, in the orientation of the paper's plots.
void print_throughput_table(std::ostream& out, const std::string& title,
                            const std::vector<SeriesPoint>& points);

// Appends rows "figure,series,threads,mean,stddev,min,max,count" to `path`
// (with a header when the file is new). No-op if path is empty.
void append_csv(const std::string& path, const std::string& figure,
                const std::vector<SeriesPoint>& points);

// Engineering formatting for throughput: "12.3M", "456k".
std::string format_ops(double ops_per_sec);

// One-line rendering of a StatsSnapshot: grace periods, retries, lock
// timeouts, recycled nodes, and — for sharded dictionaries — the shard
// count and size-imbalance factor (max shard size / fair share).
std::string format_stats(const adapters::StatsSnapshot& stats);

// Per-shard table ("shard  size  grace  retries  timeouts") for sharded
// snapshots; prints nothing when the snapshot has no shard breakdown.
void print_shard_breakdown(std::ostream& out,
                           const adapters::StatsSnapshot& stats);

}  // namespace citrus::workload
