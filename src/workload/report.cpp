#include "workload/report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>

namespace citrus::workload {

std::string format_ops(double ops) {
  char buf[32];
  if (ops >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", ops / 1e9);
  } else if (ops >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", ops / 1e6);
  } else if (ops >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", ops / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ops);
  }
  return buf;
}

void print_throughput_table(std::ostream& out, const std::string& title,
                            const std::vector<SeriesPoint>& points) {
  std::vector<std::string> series;
  std::set<int> threads;
  for (const auto& p : points) {
    if (std::find(series.begin(), series.end(), p.series) == series.end()) {
      series.push_back(p.series);
    }
    threads.insert(p.threads);
  }

  out << "\n== " << title << " ==\n";
  out << std::left << std::setw(18) << "threads";
  for (int t : threads) out << std::right << std::setw(10) << t;
  out << "\n";
  for (const auto& s : series) {
    out << std::left << std::setw(18) << s;
    for (int t : threads) {
      const auto it =
          std::find_if(points.begin(), points.end(), [&](const SeriesPoint& p) {
            return p.series == s && p.threads == t;
          });
      out << std::right << std::setw(10)
          << (it != points.end() ? format_ops(it->throughput.mean) : "-");
    }
    out << "\n";
  }
  out.flush();
}

void append_csv(const std::string& path, const std::string& figure,
                const std::vector<SeriesPoint>& points) {
  if (path.empty()) return;
  const bool fresh = !std::filesystem::exists(path);
  std::ofstream out(path, std::ios::app);
  if (fresh) {
    out << "figure,series,threads,mean_ops,stddev_ops,min_ops,max_ops,runs\n";
  }
  for (const auto& p : points) {
    out << figure << ',' << p.series << ',' << p.threads << ','
        << p.throughput.mean << ',' << p.throughput.stddev << ','
        << p.throughput.min << ',' << p.throughput.max << ','
        << p.throughput.count << '\n';
  }
}

}  // namespace citrus::workload
