#include "workload/report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>

namespace citrus::workload {

std::string format_ops(double ops) {
  char buf[32];
  if (ops >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", ops / 1e9);
  } else if (ops >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", ops / 1e6);
  } else if (ops >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", ops / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ops);
  }
  return buf;
}

std::string format_stats(const adapters::StatsSnapshot& stats) {
  std::string out = "gp=" + std::to_string(stats.grace_periods) +
                    " retries=" +
                    std::to_string(stats.insert_retries + stats.erase_retries) +
                    " timeouts=" + std::to_string(stats.lock_timeouts) +
                    " recycled=" + std::to_string(stats.recycled_nodes);
  if (stats.reclaim_backpressure != 0) {
    out += " backpressure=" + std::to_string(stats.reclaim_backpressure);
  }
  if (!stats.shards.empty()) {
    std::size_t total = 0, biggest = 0;
    for (const auto& s : stats.shards) {
      total += s.size;
      biggest = std::max(biggest, s.size);
    }
    const double fair = static_cast<double>(total) /
                        static_cast<double>(stats.shards.size());
    char buf[48];
    std::snprintf(buf, sizeof(buf), " shards=%zu imbalance=%.2f",
                  stats.shards.size(),
                  fair > 0.0 ? static_cast<double>(biggest) / fair : 1.0);
    out += buf;
  }
  return out;
}

void print_shard_breakdown(std::ostream& out,
                           const adapters::StatsSnapshot& stats) {
  if (stats.shards.empty()) return;
  out << std::left << std::setw(8) << "shard" << std::right << std::setw(10)
      << "size" << std::setw(10) << "grace" << std::setw(10) << "retries"
      << std::setw(10) << "timeouts" << "\n";
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    const auto& s = stats.shards[i];
    out << std::left << std::setw(8) << i << std::right << std::setw(10)
        << s.size << std::setw(10) << s.grace_periods << std::setw(10)
        << s.retries << std::setw(10) << s.lock_timeouts << "\n";
  }
  out.flush();
}

void print_throughput_table(std::ostream& out, const std::string& title,
                            const std::vector<SeriesPoint>& points) {
  std::vector<std::string> series;
  std::set<int> threads;
  for (const auto& p : points) {
    if (std::find(series.begin(), series.end(), p.series) == series.end()) {
      series.push_back(p.series);
    }
    threads.insert(p.threads);
  }

  out << "\n== " << title << " ==\n";
  out << std::left << std::setw(18) << "threads";
  for (int t : threads) out << std::right << std::setw(10) << t;
  out << "\n";
  for (const auto& s : series) {
    out << std::left << std::setw(18) << s;
    for (int t : threads) {
      const auto it =
          std::find_if(points.begin(), points.end(), [&](const SeriesPoint& p) {
            return p.series == s && p.threads == t;
          });
      out << std::right << std::setw(10)
          << (it != points.end() ? format_ops(it->throughput.mean) : "-");
    }
    out << "\n";
  }
  out.flush();
}

void append_csv(const std::string& path, const std::string& figure,
                const std::vector<SeriesPoint>& points) {
  if (path.empty()) return;
  const bool fresh = !std::filesystem::exists(path);
  std::ofstream out(path, std::ios::app);
  if (fresh) {
    out << "figure,series,threads,mean_ops,stddev_ops,min_ops,max_ops,runs\n";
  }
  for (const auto& p : points) {
    out << figure << ',' << p.series << ',' << p.threads << ','
        << p.throughput.mean << ',' << p.throughput.stddev << ','
        << p.throughput.min << ',' << p.throughput.max << ','
        << p.throughput.count << '\n';
  }
}

}  // namespace citrus::workload
