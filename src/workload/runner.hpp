// Timed throughput runs over a type-erased dictionary.
#pragma once

#include <vector>

#include "adapters/idictionary.hpp"
#include "util/stats.hpp"
#include "workload/config.hpp"

namespace citrus::workload {

// Pre-fills `dict` with key_range/2 distinct uniformly random keys (the
// paper's setup) using `threads` parallel inserters. Idempotent with
// respect to the final size. Caller does not need a ThreadScope.
void prefill(adapters::IDictionary& dict, const WorkloadConfig& config);

// One timed run: spawns config.threads workers, each continuously applying
// the operation mix to uniformly random keys until the clock expires.
// prefill() is performed first when config.prefill is set.
RunResult run_workload(adapters::IDictionary& dict,
                       const WorkloadConfig& config);

// `repeats` independent runs on *fresh* dictionary instances; returns a
// throughput summary (the paper reports the arithmetic mean of five runs).
// `options` is forwarded to make_dictionary; an unset key_range_hint is
// filled in from config.key_range so pre-sizable structures benefit
// automatically.
util::Summary run_repeated(const std::string& dictionary_name,
                           const WorkloadConfig& config, int repeats,
                           const adapters::Options& options = {});

}  // namespace citrus::workload
