// Key → shard routing for the sharded Citrus dictionary.
//
// The router must (a) be a handful of instructions — it sits in front of
// every operation — and (b) spread *clustered* key distributions evenly.
// Benchmarks draw keys uniformly, but real workloads are skewed (Zipf) or
// sequential, and a naive `key & (shards - 1)` would map a sequential
// scan's working set onto a round-robin of shards while leaving a
// Zipf-hot key block on one shard. We therefore finalize the key with
// SplitMix64's avalanche function (util/rng.hpp) — every input bit flips
// each output bit with probability ~1/2 — and take the *high* bits of the
// result, which are the best-mixed bits of a multiply-shift finalizer.
//
// Shard counts are restricted to powers of two so selection is a shift,
// not a division, and so the router composes with power-of-two resize
// schemes (cf. the relativistic hash baseline).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/rng.hpp"

namespace citrus::shard {

inline constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

template <typename Key>
class ShardRouter {
 public:
  // `shard_count` must be a power of two (asserted). A single-shard
  // router degenerates to the unsharded dictionary: shard_of == 0 always.
  explicit ShardRouter(std::size_t shard_count) : shards_(shard_count) {
    assert(is_power_of_two(shard_count) &&
           "shard count must be a power of two");
    // Number of high bits that select a shard.
    std::size_t bits = 0;
    for (std::size_t s = shard_count; s > 1; s >>= 1) ++bits;
    shift_ = 64 - bits;
  }

  std::size_t shards() const noexcept { return shards_; }

  std::size_t shard_of(const Key& key) const noexcept {
    if (shards_ == 1) return 0;
    std::uint64_t h = static_cast<std::uint64_t>(std::hash<Key>{}(key));
    // std::hash is the identity for integral keys on the major standard
    // libraries; the finalizer supplies all the mixing.
    h = util::splitmix64(h);
    return static_cast<std::size_t>(h >> shift_);
  }

 private:
  std::size_t shards_;
  unsigned shift_ = 64;
};

}  // namespace citrus::shard
