// ShardedCitrus — hash partitioning of the keyspace over N independent
// Citrus trees, each with its **own RCU domain**, node pool and retire
// queues.
//
// Why per-shard domains matter: the paper's counter+flag RCU lets many
// updaters run synchronize_rcu concurrently because synchronizers share no
// state — but every synchronizer still *waits for every registered reader*
// of its domain. With one domain per shard, a two-child delete in shard i
// waits only for readers currently inside shard i; readers traversing the
// other N−1 shards are invisible to it (their flags live in other
// domains). Grace periods shorten, per-shard trees are ~log(N) levels
// shallower, and node-lock contention never crosses a shard boundary.
//
// The price is cross-shard semantics:
//   * Point operations (insert/erase/contains/find/assign) touch exactly
//     one shard and remain linearizable: the router is a pure function of
//     the key, so per-key histories are per-shard histories, and a
//     composition of linearizable point histories over disjoint key sets
//     is linearizable (tests/test_linearizability.cpp checks this
//     end-to-end against the recorded-history checker).
//   * Aggregates (`size`, `check_structure`, `stats`) read per-shard
//     state without a global snapshot and are exact only at quiescence —
//     the same contract each CitrusTree already has for its own
//     relaxed-counter size().
//
// Thread participation: a thread holds one ShardedCitrus::Registration,
// which registers it with all N shard domains up front (registration is
// rare; operations are hot). The per-thread domain-record lookup in
// rcu/registry.hpp is a scan of a small TLS vector, so N registrations
// cost N slots there — measurable only past ~64 shards.
//
// RCU-domain choice: counter+flag (the default) and the other
// flag-sampling domains compose cleanly — a synchronizer in shard i only
// needs shard-i readers to *leave their current section*, which they do
// regardless of what other shards they visit. QSBR is the exception: a
// quiescent-state domain needs every registered thread to checkpoint, and
// a thread parked inside shard i's synchronize never checkpoints in shard
// j, so ShardedCitrus over QsbrRcu can stall cross-shard grace periods
// under concurrent two-child deletes. Keep sharded instantiations on
// flag-based domains (the registry only exposes counter+flag).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "citrus/citrus_tree.hpp"
#include "citrus/structure_report.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/rcu.hpp"
#include "shard/shard_router.hpp"
#include "sync/cache.hpp"
#include "util/visit.hpp"

namespace citrus::shard {

// TreeT selects the per-shard update protocol: the paper's lock+validate
// tree (the default) or the optimistic cop tree (citrus_cop.hpp) — the
// router and merge layers are protocol-agnostic.
template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = core::DefaultTraits,
          template <typename, typename, typename, typename>
          class TreeT = core::CitrusTree>
class ShardedCitrus {
  using Tree = TreeT<Key, Value, Rcu, Traits>;

  // Domain + tree on their own cache lines; the domain outlives the tree
  // (declaration order) exactly as in the unsharded adapter.
  struct alignas(sync::kDestructiveInterference) Shard {
    Rcu domain;
    Tree tree{domain};
  };

 public:
  using key_type = Key;
  using mapped_type = Value;
  using rcu_type = Rcu;

  static constexpr std::size_t kDefaultShards = 16;

  // True when this build carries the rcucheck discipline verifier; every
  // shard domain, node lock and traversal below is then instrumented.
  static constexpr bool kRcuCheckEnabled = check::kEnabled;

  explicit ShardedCitrus(std::size_t shard_count = kDefaultShards)
      : router_(shard_count) {
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ShardedCitrus(const ShardedCitrus&) = delete;
  ShardedCitrus& operator=(const ShardedCitrus&) = delete;

  // RAII participation token covering every shard domain, mirroring
  // Rcu::Registration for a single domain. A thread must hold one for as
  // long as it operates on the dictionary.
  class Registration {
   public:
    explicit Registration(ShardedCitrus& dict) {
      regs_.reserve(dict.shards_.size());
      for (auto& s : dict.shards_) {
        regs_.push_back(
            std::make_unique<typename Rcu::Registration>(s->domain));
      }
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

   private:
    std::vector<std::unique_ptr<typename Rcu::Registration>> regs_;
  };

  // ── Point operations: route, then delegate ────────────────────────

  bool insert(const Key& key, const Value& value) {
    return shard_for(key).insert(key, value);
  }
  bool erase(const Key& key) { return shard_for(key).erase(key); }
  bool assign(const Key& key, const Value& value) {
    return shard_for(key).assign(key, value);
  }

  // Status-returning forms (update_status.hpp): a point operation touches
  // exactly one shard, so the status is simply the shard tree's status —
  // kNoMemory means *that shard's* pool failed, the other shards are
  // unaffected.
  core::UpdateStatus try_insert(const Key& key, const Value& value) {
    return shard_for(key).try_insert(key, value);
  }
  core::UpdateStatus try_assign(const Key& key, const Value& value) {
    return shard_for(key).try_assign(key, value);
  }
  core::UpdateStatus try_erase(const Key& key) {
    return shard_for(key).try_erase(key);
  }

  // Per-shard pool caps (CitrusTree::set_max_live_nodes), applied to every
  // shard: total live nodes are bounded by shard_count * n.
  void set_max_live_nodes_per_shard(std::int64_t n) noexcept {
    for (auto& s : shards_) s->tree.set_max_live_nodes(n);
  }
  bool insert_or_assign(const Key& key, const Value& value) {
    return shard_for(key).insert_or_assign(key, value);
  }
  bool contains(const Key& key) const { return shard_for(key).contains(key); }
  std::optional<Value> find(const Key& key) const {
    return shard_for(key).find(key);
  }

  // ── Ordered operations (k-way cross-shard merge) ──────────────────
  //
  // Shards partition keys by *hash*, but each shard tree is ordered over
  // the full key space, so a global in-order scan is a k-way merge of
  // per-shard validated scans. Each per-shard chunk is internally atomic
  // (one validated pass in that shard); the merged stream is therefore
  // *chunked*-consistent — monotone in key, atomic per shard per window —
  // but has no single global linearization point (shards have independent
  // RCU domains by design, so a cross-shard atomic scan would need a
  // global barrier this structure exists to avoid).

  static constexpr std::size_t kDefaultScanChunk = Tree::kDefaultScanChunk;

  // Windowed merge: fetch one chunk per shard, then emit only the merged
  // prefix every shard is known to have fully covered (up to the smallest
  // truncation frontier). Signature mirrors CitrusTree::scan_chunk.
  bool scan_chunk(const Key* lo, bool lo_inclusive, const Key* hi,
                  std::size_t max,
                  std::vector<std::pair<Key, Value>>* out) const {
    out->clear();
    std::vector<std::pair<Key, Value>> merged, chunk;
    bool any_truncated = false;
    bool have_frontier = false;
    Key frontier{};
    for (const auto& s : shards_) {
      const bool more =
          s->tree.scan_chunk(lo, lo_inclusive, hi, max, &chunk);
      if (more) {
        any_truncated = true;
        // This shard may hold unseen keys just past its chunk's last key;
        // nothing beyond the smallest such frontier can be emitted yet.
        if (!have_frontier || chunk.back().first < frontier) {
          frontier = chunk.back().first;
          have_frontier = true;
        }
      }
      merged.insert(merged.end(), chunk.begin(), chunk.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& p : merged) {
      if (have_frontier && frontier < p.first) break;
      out->push_back(p);
      if (max != 0 && out->size() == max) break;
    }
    return any_truncated || out->size() < merged.size();
  }

  // In-order visit of pairs with lo <= key <= hi; same contract as
  // CitrusTree::range (visitor outside critical sections, false stops,
  // limit 0 = unlimited, chunk 0 = one pass per shard).
  template <typename F>
  std::size_t range(const Key& lo, const Key& hi, F&& f,
                    std::size_t limit = 0,
                    std::size_t chunk = kDefaultScanChunk) const {
    if (hi < lo) return 0;
    std::vector<std::pair<Key, Value>> buf;
    std::size_t visited = 0;
    const Key* cursor = &lo;
    bool cursor_inclusive = true;
    Key cursor_key{};
    for (;;) {
      std::size_t want = chunk;
      if (limit != 0) {
        const std::size_t left = limit - visited;
        want = chunk == 0 ? left : std::min(chunk, left);
      }
      const bool more = scan_chunk(cursor, cursor_inclusive, &hi, want, &buf);
      for (const auto& [k, v] : buf) {
        ++visited;
        if (!util::visit_entry(f, k, v)) return visited;
      }
      if (!more || buf.empty()) return visited;
      if (limit != 0 && visited >= limit) return visited;
      cursor_key = buf.back().first;
      cursor = &cursor_key;
      cursor_inclusive = false;
    }
  }

  // Descending windowed merge, mirroring scan_chunk: fetch one descending
  // chunk per shard, then emit only the merged suffix every shard is known
  // to have fully covered. A truncated shard may hold unseen keys just
  // *below* its chunk's last (smallest) key, so nothing below the largest
  // such frontier can be emitted yet. Signature mirrors
  // CitrusTree::scan_chunk_desc.
  bool scan_chunk_desc(const Key* lo, const Key* hi, bool hi_inclusive,
                       std::size_t max,
                       std::vector<std::pair<Key, Value>>* out) const {
    out->clear();
    std::vector<std::pair<Key, Value>> merged, chunk;
    bool any_truncated = false;
    bool have_frontier = false;
    Key frontier{};
    for (const auto& s : shards_) {
      const bool more =
          s->tree.scan_chunk_desc(lo, hi, hi_inclusive, max, &chunk);
      if (more) {
        any_truncated = true;
        if (!have_frontier || frontier < chunk.back().first) {
          frontier = chunk.back().first;
          have_frontier = true;
        }
      }
      merged.insert(merged.end(), chunk.begin(), chunk.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return b.first < a.first; });
    for (const auto& p : merged) {
      if (have_frontier && p.first < frontier) break;
      out->push_back(p);
      if (max != 0 && out->size() == max) break;
    }
    return any_truncated || out->size() < merged.size();
  }

  // Descending visit of pairs with lo <= key <= hi, from hi down to lo;
  // same contract as range() with the chunk cursor moving downward.
  template <typename F>
  std::size_t range_desc(const Key& lo, const Key& hi, F&& f,
                         std::size_t limit = 0,
                         std::size_t chunk = kDefaultScanChunk) const {
    if (hi < lo) return 0;
    std::vector<std::pair<Key, Value>> buf;
    std::size_t visited = 0;
    const Key* cursor = &hi;
    bool cursor_inclusive = true;
    Key cursor_key{};
    for (;;) {
      std::size_t want = chunk;
      if (limit != 0) {
        const std::size_t left = limit - visited;
        want = chunk == 0 ? left : std::min(chunk, left);
      }
      const bool more =
          scan_chunk_desc(&lo, cursor, cursor_inclusive, want, &buf);
      for (const auto& [k, v] : buf) {
        ++visited;
        if (!util::visit_entry(f, k, v)) return visited;
      }
      if (!more || buf.empty()) return visited;
      if (limit != 0 && visited >= limit) return visited;
      cursor_key = buf.back().first;
      cursor = &cursor_key;
      cursor_inclusive = false;
    }
  }

  // Global succ/pred: best candidate over the per-shard exact answers.
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    std::optional<std::pair<Key, Value>> best;
    for (const auto& s : shards_) {
      auto cand = s->tree.succ(key);
      if (cand.has_value() &&
          (!best.has_value() || cand->first < best->first)) {
        best = cand;
      }
    }
    return best;
  }
  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    std::optional<std::pair<Key, Value>> best;
    for (const auto& s : shards_) {
      auto cand = s->tree.pred(key);
      if (cand.has_value() &&
          (!best.has_value() || best->first < cand->first)) {
        best = cand;
      }
    }
    return best;
  }

  // ── Aggregates (exact at quiescence; see header comment) ──────────

  std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->tree.size();
    return total;
  }
  bool empty() const noexcept { return size() == 0; }

  core::CitrusStats stats() const {
    core::CitrusStats out;
    for (const auto& s : shards_) out.merge(s->tree.stats());
    return out;
  }

  core::StructureReport check_structure() const {
    // One quiescent scope across all shard walks (each tree also opens its
    // own; the annotation nests).
    check::ScopedQuiescent quiescent;
    core::StructureReport merged;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      core::StructureReport rep = shards_[i]->tree.check_structure();
      if (!rep.ok) {
        rep.error = "shard " + std::to_string(i) + ": " + rep.error;
      }
      merged.merge(rep);
    }
    return merged;
  }

  // Sum of synchronize calls across all shard domains.
  std::uint64_t synchronize_calls() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->domain.synchronize_calls();
    return total;
  }

  // Grace-period engine aggregates across all shard domains (zero when
  // the domain lacks the shared gp_seq). started counts scans actually
  // performed; shared counts calls that piggybacked on a concurrent scan.
  std::uint64_t grace_periods_started() const noexcept {
    std::uint64_t total = 0;
    if constexpr (requires(const Rcu& d) { d.grace_periods_started(); }) {
      for (const auto& s : shards_) total += s->domain.grace_periods_started();
    }
    return total;
  }
  std::uint64_t grace_periods_shared() const noexcept {
    std::uint64_t total = 0;
    if constexpr (requires(const Rcu& d) { d.grace_periods_shared(); }) {
      for (const auto& s : shards_) total += s->domain.grace_periods_shared();
    }
    return total;
  }

  // Quiescent in-order visit per shard. Shards partition by *hash*, so
  // concatenation is NOT globally key-ordered; keys_quiescent() sorts.
  template <typename F>
  void for_each_quiescent(F&& f) const {
    for (const auto& s : shards_) s->tree.for_each_quiescent(f);
  }

  std::vector<Key> keys_quiescent() const {
    std::vector<Key> out;
    for_each_quiescent([&out](const Key& k, const Value&) { out.push_back(k); });
    std::sort(out.begin(), out.end());
    return out;
  }

  // ── Per-shard introspection (router tests, stats breakdown) ───────

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of(const Key& key) const noexcept {
    return router_.shard_of(key);
  }
  const Tree& shard_tree(std::size_t i) const { return shards_[i]->tree; }
  Rcu& shard_domain(std::size_t i) { return shards_[i]->domain; }
  std::uint64_t shard_synchronize_calls(std::size_t i) const {
    return shards_[i]->domain.synchronize_calls();
  }
  core::CitrusStats shard_stats(std::size_t i) const {
    return shards_[i]->tree.stats();
  }
  std::size_t shard_size(std::size_t i) const {
    return shards_[i]->tree.size();
  }

 private:
  Tree& shard_for(const Key& key) {
    return shards_[router_.shard_of(key)]->tree;
  }
  const Tree& shard_for(const Key& key) const {
    return shards_[router_.shard_of(key)]->tree;
  }

  ShardRouter<Key> router_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace citrus::shard
