// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace citrus::util {

using Clock = std::chrono::steady_clock;

// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  Clock::time_point start_;
};

}  // namespace citrus::util
