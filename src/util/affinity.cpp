#include "util/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace citrus::util {

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_to_cpu(unsigned cpu, unsigned min_cpus) {
#if defined(__linux__)
  const unsigned n = hardware_threads();
  if (n < min_cpus) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % n, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  (void)min_cpus;
  return false;
#endif
}

}  // namespace citrus::util
