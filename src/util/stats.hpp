// Descriptive statistics for benchmark reporting.
//
// The paper reports the arithmetic average of five runs per configuration;
// we additionally keep the standard deviation and extrema so EXPERIMENTS.md
// can report run-to-run noise (important on an oversubscribed box).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace citrus::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

// Computes a Summary over the samples. Empty input yields a zero Summary.
Summary summarize(std::vector<double> samples);

// Streaming Welford accumulator, used by per-thread latency collection where
// storing every sample would perturb the run.
class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  // Merge another accumulator (parallel reduction of per-thread stats).
  void merge(const Welford& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-boundary log-scale histogram for operation latencies (nanoseconds).
// 64 buckets: bucket i covers [2^i, 2^(i+1)) ns.
class LogHistogram {
 public:
  void add(std::uint64_t nanos) noexcept;
  std::uint64_t total() const noexcept;
  // Returns the lower bound (ns) of the bucket containing quantile q in
  // [0,1]; 0 for an empty histogram.
  std::uint64_t quantile(double q) const noexcept;
  void merge(const LogHistogram& other) noexcept;

 private:
  std::uint64_t buckets_[64] = {};
};

}  // namespace citrus::util
