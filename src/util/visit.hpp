// Visitor-invocation shim for range scans. A range() visitor may either
// return void ("visit everything I hand you") or something convertible to
// bool (false = stop the scan early). Normalizing here keeps every
// implementation's scan loop a plain `if (!visit_entry(f, k, v)) break;`.
#pragma once

#include <type_traits>

namespace citrus::util {

template <typename F, typename Key, typename Value>
bool visit_entry(F& f, const Key& k, const Value& v) {
  if constexpr (std::is_void_v<
                    std::invoke_result_t<F&, const Key&, const Value&>>) {
    f(k, v);
    return true;
  } else {
    return static_cast<bool>(f(k, v));
  }
}

}  // namespace citrus::util
