// Fast per-thread pseudo-random number generation.
//
// The workload generator calls the RNG twice per operation (operation type
// and key), so it must be branch-light and allocation-free. xoshiro256**
// gives 64-bit state-of-the-art statistical quality at ~1ns/word; SplitMix64
// seeds it (the standard recommendation, avoiding correlated low-entropy
// seeds when consecutive thread ids are used as seeds).
#pragma once

#include <cstdint>

namespace citrus::util {

// SplitMix64: used for seeding and as a cheap stateless hash.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9Bull) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias, using Lemire's
  // multiply-shift reduction (one multiplication in the common case).
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // True with probability `num`/`denom` — used for op-mix selection with
  // integer thresholds (e.g. 98% contains = bounded(1000) < 980).
  constexpr bool chance(std::uint64_t num, std::uint64_t denom) noexcept {
    return bounded(denom) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace citrus::util
