// Thread placement.
//
// The paper's testbed is a 4-socket NUMA machine; thread pinning matters
// there. On machines with enough cores we pin worker i to core i (spreading
// over the whole mask); when the machine is oversubscribed pinning would
// serialize everything behind one core, so it becomes a no-op.
#pragma once

#include <cstdint>

namespace citrus::util {

// Number of CPUs available to this process.
unsigned hardware_threads();

// Pin the calling thread to `cpu % hardware_threads()` if the process has
// at least `min_cpus` CPUs; otherwise do nothing. Returns true if pinned.
bool pin_to_cpu(unsigned cpu, unsigned min_cpus = 2);

}  // namespace citrus::util
