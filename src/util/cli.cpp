#include "util/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace citrus::util {

namespace {

std::string env_name(const std::string& key) {
  std::string name = "CITRUS_";
  for (char c : key) {
    name += c == '-' ? '_' : static_cast<char>(std::toupper(c));
  }
  return name;
}

}  // namespace

Options::Options(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "unknown";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --key=value, got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";  // boolean switch form: --verbose
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  if (auto it = values_.find(key); it != values_.end()) return it->second;
  if (const char* env = std::getenv(env_name(key).c_str())) return env;
  return fallback;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const std::string v = get(key, "");
  return v.empty() ? fallback : std::stoll(v);
}

double Options::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key, "");
  return v.empty() ? fallback : std::stod(v);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::int64_t> Options::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out.empty() ? fallback : out;
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0 ||
         std::getenv(env_name(key).c_str()) != nullptr;
}

}  // namespace citrus::util
