// Hardware transactional memory: feature probe and bounded tx-retry
// harness for the optimistic copy-validate-publish updater (citrus-cop,
// src/citrus/citrus_cop.hpp; DESIGN.md §8).
//
// Three nested gates decide whether a transaction ever starts:
//   1. Compile time — `-DCITRUS_HTM=ON` (CMake) plus an architecture whose
//      intrinsics the compiler was told to emit (`__RTM__` on x86 via
//      -mrtm, `__HTM__` on POWER). Off, every wrapper below collapses to a
//      constant and run_transactions() is a single branch to the fallback.
//   2. Runtime enumeration — cpuid leaf 7 EBX bit 11 (RTM) on x86,
//      getauxval(AT_HWCAP2) & PPC_FEATURE2_HTM on POWER.
//   3. A commit self-test — RTM can be enumerated yet fused off or
//      disabled by microcode (the TAA/Zombieload mitigations ship exactly
//      that configuration), in which case XBEGIN always aborts. available()
//      only reports true after at least one empty transaction has actually
//      committed on this machine.
//
// The retry policy follows the classic RCU-HTM harness: a bounded number
// of attempts (kDefaultTxRetries), explicit abort codes distinguishing "a
// validation check failed inside the transaction" (re-traverse, the
// snapshot is stale) from "a subscribed lock was held" (back off and
// retry, the lock will clear), and capacity/illegal aborts falling through
// to the software path immediately.
#pragma once

#include <cstdint>

#if !defined(CITRUS_HTM)
#define CITRUS_HTM 0
#endif

#if CITRUS_HTM && defined(__RTM__) && (defined(__x86_64__) || defined(__i386__))
#define CITRUS_HTM_X86 1
#include <immintrin.h>
#elif CITRUS_HTM && defined(__HTM__) && defined(__powerpc64__)
#define CITRUS_HTM_POWER 1
#include <htmintrin.h>
#else
#define CITRUS_HTM_X86 0
#define CITRUS_HTM_POWER 0
#endif

#if !defined(CITRUS_HTM_X86)
#define CITRUS_HTM_X86 0
#endif
#if !defined(CITRUS_HTM_POWER)
#define CITRUS_HTM_POWER 0
#endif

// Greppable marker for lambdas whose body runs INSIDE a hardware
// transaction (the static discipline tools treat it as a protection
// context, like a held lock). Expands to nothing.
#define CITRUS_COP_TX_BODY

namespace citrus::util::htm {

// True when this build can emit transactions at all (gate 1 above).
inline constexpr bool kCompiled = CITRUS_HTM_X86 != 0 || CITRUS_HTM_POWER != 0;

// tx_begin() result when the transaction started (matches _XBEGIN_STARTED).
inline constexpr unsigned kTxStarted = ~0u;

// Explicit abort codes (8-bit immediates, the RCU-HTM convention):
// validation observed a stale snapshot — re-traverse instead of retrying;
// a subscribed lock word was held — the holder will finish, retry.
inline constexpr unsigned kAbortValidation = 0xee;
inline constexpr unsigned kAbortLockHeld = 0xff;

// Attempt budget before conceding to the software fallback.
inline constexpr unsigned kDefaultTxRetries = 20;

// Gates 2+3: enumeration plus the commit self-test, probed once per
// process and cached (htm.cpp). Always false when !kCompiled.
bool available() noexcept;

#if CITRUS_HTM_X86

inline unsigned tx_begin() noexcept { return _xbegin(); }
inline void tx_end() noexcept { _xend(); }
inline void tx_abort_validation() noexcept { _xabort(0xee); }
inline void tx_abort_lock_held() noexcept { _xabort(0xff); }
inline bool tx_aborted_explicitly(unsigned status) noexcept {
  return (status & _XABORT_EXPLICIT) != 0;
}
inline unsigned tx_abort_code(unsigned status) noexcept {
  return _XABORT_CODE(status);
}
inline bool tx_may_retry(unsigned status) noexcept {
  return (status & _XABORT_RETRY) != 0;
}

#elif CITRUS_HTM_POWER

inline unsigned tx_begin() noexcept {
  if (__builtin_tbegin(0)) return kTxStarted;
  // TEXASR upper word carries the software-supplied failure code for
  // tabort.; treat everything else as a transient conflict.
  return __builtin_get_texasru();
}
inline void tx_end() noexcept { __builtin_tend(0); }
inline void tx_abort_validation() noexcept { __builtin_tabort(0xee); }
inline void tx_abort_lock_held() noexcept { __builtin_tabort(0xff); }
inline bool tx_aborted_explicitly(unsigned status) noexcept {
  return (status & TEXASR_AC) != 0;
}
inline unsigned tx_abort_code(unsigned status) noexcept {
  return (status >> 24) & 0xff;
}
inline bool tx_may_retry(unsigned status) noexcept {
  return (status & TEXASR_PR) == 0;
}

#else

// Stub backend: tx_begin never starts, so run_transactions() falls back
// on its first iteration and none of the other wrappers is reachable.
inline unsigned tx_begin() noexcept { return 0; }
inline void tx_end() noexcept {}
inline void tx_abort_validation() noexcept {}
inline void tx_abort_lock_held() noexcept {}
inline bool tx_aborted_explicitly(unsigned) noexcept { return false; }
inline unsigned tx_abort_code(unsigned) noexcept { return 0; }
inline bool tx_may_retry(unsigned) noexcept { return false; }

#endif

// Outcome of a bounded-retry transactional attempt.
enum class TxResult {
  kCommitted,        // a transaction ran body() to completion and committed
  kValidationAbort,  // body() saw a stale snapshot — caller must re-traverse
  kFallback,         // budget exhausted or non-retryable abort — go software
};

// Bounded-retry harness. body() runs INSIDE the transaction: it must
// either return normally (the transaction commits) or call
// tx_abort_validation()/tx_abort_lock_held(), and it must not execute
// anything transaction-hostile (syscalls, page faults it can avoid,
// unbounded writes). Every abort increments *aborts. Lock-held aborts
// retry within the budget (the subscribed lock will clear); validation
// aborts return immediately (retrying the same stale snapshot cannot
// succeed); capacity/illegal aborts without the retry hint fall back.
template <typename Body>
inline TxResult run_transactions(unsigned retries, unsigned* aborts,
                                 Body&& body) {
  if (!available()) return TxResult::kFallback;
  for (unsigned i = 0; i < retries; ++i) {
    const unsigned status = tx_begin();
    if (status == kTxStarted) {
      body();
      tx_end();
      return TxResult::kCommitted;
    }
    ++*aborts;
    if (tx_aborted_explicitly(status)) {
      if (tx_abort_code(status) == kAbortValidation) {
        return TxResult::kValidationAbort;
      }
      continue;  // lock held: the holder finishes, retry is worthwhile
    }
    if (!tx_may_retry(status)) break;  // capacity/illegal: hopeless
  }
  return TxResult::kFallback;
}

}  // namespace citrus::util::htm
