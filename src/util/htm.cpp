// HTM feature probe — enumeration plus a commit self-test (see htm.hpp
// for the three-gate model). Compiled unconditionally; with the compile
// gate off this collapses to `return false`.

#include "util/htm.hpp"

#if CITRUS_HTM_X86
#include <cpuid.h>
#endif
#if CITRUS_HTM_POWER
#include <sys/auxv.h>
#endif

namespace citrus::util::htm {

namespace {

#if CITRUS_HTM_X86

bool enumerated() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 11)) != 0;  // CPUID.(EAX=7,ECX=0):EBX.RTM[bit 11]
}

#elif CITRUS_HTM_POWER

bool enumerated() noexcept {
  return (getauxval(AT_HWCAP2) & PPC_FEATURE2_HTM) != 0;
}

#else

bool enumerated() noexcept { return false; }

#endif

// Executed only when enumeration succeeded (XBEGIN on a non-RTM part is
// #UD, so the order of the gates matters). RTM disabled by microcode
// (TSX_CTRL / the TAA mitigations) still enumerates on some parts but
// aborts every transaction; a bounded loop of empty transactions decides.
bool commits() noexcept {
  if constexpr (!kCompiled) {
    return false;
  } else {
    for (int i = 0; i < 128; ++i) {
      if (tx_begin() == kTxStarted) {
        tx_end();
        return true;
      }
    }
    return false;
  }
}

}  // namespace

bool available() noexcept {
  static const bool ok = kCompiled && enumerated() && commits();
  return ok;
}

}  // namespace citrus::util::htm
