#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace citrus::util {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);

  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(n);

  if (n > 1) {
    double sq = 0.0;
    for (double x : samples) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(n - 1));
  }
  return s;
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LogHistogram::add(std::uint64_t nanos) noexcept {
  const int bucket = nanos == 0 ? 0 : 63 - std::countl_zero(nanos);
  ++buckets_[bucket];
}

std::uint64_t LogHistogram::total() const noexcept {
  std::uint64_t t = 0;
  for (auto b : buckets_) t += b;
  return t;
}

std::uint64_t LogHistogram::quantile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < 64; ++i) {
    seen += buckets_[i];
    if (seen > target) return i == 0 ? 0 : (1ull << i);
  }
  return 1ull << 63;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (int i = 0; i < 64; ++i) buckets_[i] += other.buckets_[i];
}

}  // namespace citrus::util
