// Zipfian key distribution.
//
// The paper's evaluation uses uniformly random keys; we additionally support
// Zipf-skewed keys so the harness can probe contention regimes the paper's
// discussion raises (hot-spot updates hammering the same subtree). Uses the
// rejection-inversion sampler of Hörmann & Derflinger (the same algorithm as
// Apache Commons' RejectionInversionZipfSampler): O(1) per sample with no
// table, so huge key ranges (2e6 in Figure 10) cost no setup.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace citrus::util {

class ZipfGenerator {
 public:
  // Samples from {0, ..., n-1} with P(k) proportional to 1/(k+1)^theta.
  // theta = 0 degenerates to uniform (handled explicitly).
  ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    if (theta_ > 0.0) {
      h_integral_x1_ = h_integral(1.5) - 1.0;
      h_integral_num_elements_ = h_integral(static_cast<double>(n_) + 0.5);
      s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
    }
  }

  std::uint64_t operator()(Xoshiro256& rng) const {
    if (theta_ <= 0.0) return rng.bounded(n_);
    for (;;) {
      const double u = h_integral_num_elements_ +
                       rng.uniform() * (h_integral_x1_ - h_integral_num_elements_);
      const double x = h_integral_inverse(u);
      double k = std::floor(x + 0.5);
      if (k < 1.0) k = 1.0;
      if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
      if (k - x <= s_ || u >= h_integral(k + 0.5) - h(k)) {
        return static_cast<std::uint64_t>(k) - 1;
      }
    }
  }

  std::uint64_t range() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  // H(x) = integral of h(x) = 1/x^theta.
  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - theta_) * log_x) * log_x;
  }
  double h(double x) const { return std::exp(-theta_ * std::log(x)); }
  double h_integral_inverse(double x) const {
    double t = x * (1.0 - theta_);
    if (t < -1.0) t = -1.0;
    return std::exp(helper1(t) * x);
  }
  // helper1(x) = log1p(x)/x, stable near 0.
  static double helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x * (0.5 - x / 3.0);
  }
  // helper2(x) = expm1(x)/x, stable near 0.
  static double helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x * (0.5 + x / 6.0);
  }

  std::uint64_t n_;
  double theta_;
  double h_integral_x1_ = 0.0;
  double h_integral_num_elements_ = 0.0;
  double s_ = 0.0;
};

}  // namespace citrus::util
