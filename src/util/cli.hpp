// Minimal command-line / environment option parsing for the bench binaries.
//
// The figure-reproduction binaries accept `--key=value` flags and fall back
// to `CITRUS_<KEY>` environment variables, so the same binary can run a
// quick smoke sweep by default and the full paper-scale sweep on a big box:
//
//   ./fig10_throughput_grid --seconds=5 --repeats=5 --threads=1,4,16,64
//   CITRUS_SECONDS=5 ./fig10_throughput_grid
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace citrus::util {

class Options {
 public:
  // Parses argv; aborts with a usage message on `--help` or malformed args.
  // Unrecognized keys are kept (validated by the caller via known()).
  Options(int argc, char** argv);

  // Value lookup order: command line, then CITRUS_<KEY> env var (key
  // upper-cased, '-' -> '_'), then `fallback`.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  // Comma-separated integer list, e.g. --threads=1,2,4,8.
  std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  bool has(const std::string& key) const;
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace citrus::util
