// Deterministic fault injection (compile-time opt-in).
//
// rcucheck (src/check/) *verifies* the RCU and locking discipline; this
// framework *stresses* the failure paths those proofs depend on: stalled
// readers, a grace-period leader descheduled mid-drive, an exhausted node
// pool, a reclaim worker that falls behind. Production RCU pairs its
// verifier with exactly this kind of torture seeding (Linux: rcutorture +
// CPU-stall warnings); here the consumers are tests/test_fault_torture.cpp
// and the stall watchdog (rcu/stall.hpp).
//
// Build model — identical to rcucheck:
//   * `-DCITRUS_FAULT_INJECT=ON` (CMake) defines CITRUS_FAULT_INJECT=1 for
//     the whole build; hooks then consult the process-wide Injector.
//   * OFF (the default): every hook is an empty inline function and the
//     instrumented code is byte-identical to the uninstrumented build.
//   * The Injector itself is compiled unconditionally (it is a few hundred
//     bytes) so tests that arm plans compile in every mode and skip at
//     runtime when kEnabled is false.
//
// Determinism: a Plan selects occurrences of a site by 1-based index
// (`first`, then optionally `every` n-th after), optionally thinned by a
// seeded hash of the occurrence index (`probability`), optionally
// restricted to threads holding a matching ScopedThreadRole. Given the
// same per-thread occurrence interleaving, the same occurrence indices
// fire on every run — there is no wall-clock or global-RNG dependence.
//
// Concurrency contract: hook-side state (occurrence/fire counters, stall
// gates) is atomic and hooks may race freely with release()/disarm().
// arm() itself must not race hooks for the *same site* (arm while that
// site's workload is quiescent — the normal test pattern).
#pragma once

#if !defined(CITRUS_FAULT_INJECT)
#define CITRUS_FAULT_INJECT 0
#endif

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace citrus::fault {

inline constexpr bool kEnabled = CITRUS_FAULT_INJECT != 0;

// Injection sites. Each names one place in the runtime where a seeded
// fault can be interposed (see DESIGN.md "Failure model & fault
// injection" for the site map).
enum class Site : std::uint8_t {
  // Inside a read-side critical section, immediately after the outermost
  // read_lock() publishes the reader to its domain. A stall here models a
  // reader descheduled (or SIGSTOPped) mid-section: grace periods cannot
  // complete until it is released. Threaded through all four domains.
  kReaderStall = 0,
  // In GpSeq::drive(), after the leader wins the even->odd CAS and before
  // it scans: a leader abandoned between grace-period states. Followers
  // (and the watchdog) observe a sequence stuck in-progress.
  kLeaderStall = 1,
  // NodePool::allocate(): the allocation reports failure (returns no
  // node) instead of carving a slab — injected OOM.
  kAllocFailure = 2,
  // Reclaimer worker, after a batch's grace period has elapsed and before
  // its callbacks run: a reclaim backlog that drains late.
  kReclaimDelay = 3,
  // Optimistic copy updater (citrus_cop.hpp), at the head of the HTM
  // validate/publish window: a fired occurrence models one aborted
  // hardware attempt and consumes one unit of the bounded tx-retry
  // budget, so an abort storm (every=1) forces the software fallback
  // after exactly Traits::kTxRetries simulated aborts per operation —
  // never a retry livelock. Fires whether or not real HTM exists.
  kTxAbort = 4,
};
inline constexpr std::size_t kSiteCount = 5;

const char* to_string(Site s) noexcept;

// A deterministic trigger description for one site. Occurrence indices
// are 1-based and counted per site, only over hook executions that pass
// the thread filter.
struct Plan {
  Site site = Site::kReaderStall;
  // Fire at occurrence `first`; with every > 0, also at first + k*every.
  // With every == 0 a deterministic plan (probability == 1) fires once,
  // at `first` only; a probability plan (< 1.0) treats every occurrence
  // >= first as a candidate and lets the coin do the thinning.
  std::uint64_t first = 1;
  std::uint64_t every = 0;
  // Stop firing after this many fires (the plan stays armed for counting).
  std::uint64_t max_fires = ~0ull;
  // After the occurrence match, fire only if a seeded hash of the
  // occurrence index lands under this probability.
  double probability = 1.0;
  std::uint64_t seed = 0x5EED;
  // -1 = any thread; otherwise only threads holding ScopedThreadRole(n).
  int thread_filter = -1;
  // Stall/delay sites: how long a firing hook blocks. Zero means "until
  // release(site) or disarm" — the fully deterministic gate mode tests
  // should prefer over timed stalls.
  std::chrono::milliseconds stall{0};
};

namespace detail {
// Role tag consulted by Plan::thread_filter; see ScopedThreadRole.
inline thread_local int t_role = -1;
}  // namespace detail

// Tags the current thread with a role index for thread-filtered plans
// (e.g. "stall only the designated victim reader"). RAII; nestable.
class ScopedThreadRole {
 public:
  explicit ScopedThreadRole(int role) noexcept : prev_(detail::t_role) {
    detail::t_role = role;
  }
  ~ScopedThreadRole() { detail::t_role = prev_; }
  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  int prev_;
};

// Process-wide injector: at most one armed Plan per site. Compiled
// unconditionally; consulted by hooks only when CITRUS_FAULT_INJECT=1.
class Injector {
 public:
  static Injector& instance() noexcept;

  // Install `p` for p.site (replacing any previous plan) and reset that
  // site's occurrence/fire counters. Must not race hooks for this site.
  void arm(const Plan& p) noexcept;
  void disarm(Site s) noexcept;  // also unblocks threads stalled at s
  void disarm_all() noexcept;

  // Unblock every thread currently stalled at `s` (and let stall-mode
  // fires after this call pass straight through? No — release is an
  // edge: it wakes current waiters; later fires stall again until the
  // next release or disarm).
  void release(Site s) noexcept;

  // Counters, reset by arm(). occurrences = filter-passing hook
  // executions; fires = occurrences on which the fault actually fired.
  std::uint64_t occurrences(Site s) const noexcept;
  std::uint64_t fires(Site s) const noexcept;
  // Threads blocked in a stall at `s` right now.
  std::uint64_t stalled_now(Site s) const noexcept;

  // Hook backends (no-ops / false when the site is unarmed).
  bool fire(Site s) noexcept;   // decide + count; used by failure sites
  void stall(Site s) noexcept;  // fire(), then block per the plan

 private:
  Injector() = default;
  struct Impl;
  Impl& impl() const noexcept;
};

// ---- Hooks ----------------------------------------------------------------
// These are the only functions instrumented code calls. With the gate off
// they compile to nothing.
#if CITRUS_FAULT_INJECT
inline void inject_stall(Site s) noexcept { Injector::instance().stall(s); }
[[nodiscard]] inline bool inject_fail(Site s) noexcept {
  return Injector::instance().fire(s);
}
#else
inline void inject_stall(Site) noexcept {}
[[nodiscard]] inline constexpr bool inject_fail(Site) noexcept {
  return false;
}
#endif

}  // namespace citrus::fault
