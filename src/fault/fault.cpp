// Injector — process-wide fault-plan registry and stall gates.
//
// Compiled unconditionally (mirrors check/check.cpp): with
// CITRUS_FAULT_INJECT=0 no hook ever calls into it, but tests that arm
// plans still link in every build mode and skip themselves at runtime.

#include "fault/fault.hpp"

#include <atomic>
#include <mutex>

#include "sync/backoff.hpp"

namespace citrus::fault {

const char* to_string(Site s) noexcept {
  switch (s) {
    case Site::kReaderStall:
      return "reader-stall";
    case Site::kLeaderStall:
      return "leader-stall";
    case Site::kAllocFailure:
      return "alloc-failure";
    case Site::kReclaimDelay:
      return "reclaim-delay";
    case Site::kTxAbort:
      return "tx-abort";
  }
  return "unknown";
}

namespace {

// SplitMix64 of the occurrence index: the per-occurrence coin flip for
// Plan::probability. A pure function of (seed, index), so the set of
// firing occurrences is identical on every run.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

struct Injector::Impl {
  struct SiteState {
    std::atomic<bool> armed{false};
    Plan plan;  // written by arm() while the site is quiescent
    std::atomic<std::uint64_t> occurrences{0};
    std::atomic<std::uint64_t> fires{0};
    std::atomic<std::uint64_t> stalled{0};
    // Bumped by release(); a stalled thread waits for a bump observed
    // after it entered the gate (release is an edge, not a state).
    std::atomic<std::uint64_t> release_gen{0};
  };
  SiteState sites[kSiteCount];
  std::mutex arm_mu;  // serializes arm/disarm against each other

  SiteState& at(Site s) noexcept {
    return sites[static_cast<std::size_t>(s)];
  }
  const SiteState& at(Site s) const noexcept {
    return sites[static_cast<std::size_t>(s)];
  }
};

Injector::Impl& Injector::impl() const noexcept {
  static Impl instance;
  return instance;
}

Injector& Injector::instance() noexcept {
  static Injector injector;
  return injector;
}

void Injector::arm(const Plan& p) noexcept {
  Impl& im = impl();
  std::lock_guard<std::mutex> g(im.arm_mu);
  Impl::SiteState& st = im.at(p.site);
  st.armed.store(false, std::memory_order_release);
  st.plan = p;
  st.occurrences.store(0, std::memory_order_relaxed);
  st.fires.store(0, std::memory_order_relaxed);
  // Publish the plan before the armed flag: a hook that sees armed==true
  // (acquire) sees the plan fields it was armed with.
  st.armed.store(true, std::memory_order_release);
}

void Injector::disarm(Site s) noexcept {
  Impl& im = impl();
  std::lock_guard<std::mutex> g(im.arm_mu);
  im.at(s).armed.store(false, std::memory_order_release);
}

void Injector::disarm_all() noexcept {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    disarm(static_cast<Site>(i));
  }
}

void Injector::release(Site s) noexcept {
  impl().at(s).release_gen.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t Injector::occurrences(Site s) const noexcept {
  return impl().at(s).occurrences.load(std::memory_order_relaxed);
}

std::uint64_t Injector::fires(Site s) const noexcept {
  return impl().at(s).fires.load(std::memory_order_relaxed);
}

std::uint64_t Injector::stalled_now(Site s) const noexcept {
  return impl().at(s).stalled.load(std::memory_order_acquire);
}

bool Injector::fire(Site s) noexcept {
  Impl::SiteState& st = impl().at(s);
  if (!st.armed.load(std::memory_order_acquire)) return false;
  const Plan& p = st.plan;
  if (p.thread_filter >= 0 && detail::t_role != p.thread_filter) {
    return false;  // filtered threads do not consume occurrence indices
  }
  const std::uint64_t n =
      st.occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < p.first) return false;
  if (p.every > 0) {
    if ((n - p.first) % p.every != 0) return false;
  } else if (p.probability >= 1.0 && n != p.first) {
    // Deterministic one-shot plan. A probability plan (< 1.0) with
    // every == 0 instead treats every occurrence >= first as a
    // candidate — the coin *is* the thinning.
    return false;
  }
  if (st.fires.load(std::memory_order_relaxed) >= p.max_fires) return false;
  if (p.probability < 1.0) {
    const double coin =
        static_cast<double>(mix(p.seed ^ n) >> 11) * 0x1.0p-53;
    if (coin >= p.probability) return false;
  }
  st.fires.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Injector::stall(Site s) noexcept {
  Impl::SiteState& st = impl().at(s);
  if (!st.armed.load(std::memory_order_acquire)) return;
  // Snapshot the gate before deciding to fire so a release() issued after
  // this thread committed to stalling is never missed.
  const std::uint64_t gen = st.release_gen.load(std::memory_order_acquire);
  if (!fire(s)) return;
  const Plan& p = st.plan;
  const bool timed = p.stall.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + p.stall;
  st.stalled.fetch_add(1, std::memory_order_acq_rel);
  sync::Backoff bo;
  while (st.armed.load(std::memory_order_acquire) &&
         st.release_gen.load(std::memory_order_acquire) == gen &&
         (!timed || std::chrono::steady_clock::now() < deadline)) {
    bo.pause();
  }
  st.stalled.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace citrus::fault
