// Result type of the quiescent structural audits (`check_structure`).
//
// Lives in its own header so the type-erased adapter layer
// (adapters/idictionary.hpp) can speak it without depending on the full
// tree template. Every dictionary — Citrus, the baselines, the sharded
// composite — reports through this one type; implementations without a
// structural invariant of their own return a default-constructed (ok)
// report with the fields they can fill.
#pragma once

#include <cstddef>
#include <string>

namespace citrus::core {

// Quiescent structural audit: valid only while no concurrent operations
// run. `ok == false` carries a human-readable diagnosis in `error`.
struct StructureReport {
  bool ok = true;
  std::string error;
  std::size_t node_count = 0;  // real (non-sentinel) reachable nodes
  std::size_t height = 0;      // edges on the longest root→leaf path

  // Fold another report (e.g. one shard's) into this one: conjunction of
  // ok, first error wins, counts add, heights max.
  void merge(const StructureReport& other) {
    if (ok && !other.ok) {
      ok = false;
      error = other.error;
    }
    node_count += other.node_count;
    if (other.height > height) height = other.height;
  }
};

}  // namespace citrus::core
