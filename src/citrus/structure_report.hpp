// Result type of the quiescent structural audits (`check_structure`).
//
// Lives in its own header so the type-erased adapter layer
// (adapters/idictionary.hpp) can speak it without depending on the full
// tree template. Every dictionary — Citrus, the baselines, the sharded
// composite — reports through this one type; implementations without a
// structural invariant of their own return a default-constructed (ok)
// report with the fields they can fill.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace citrus::core {

// Quiescent structural audit: valid only while no concurrent operations
// run. `ok == false` carries a human-readable diagnosis in `error`.
//
// Depth fields measure *real* nodes only: a real node's depth is the
// number of real-node ancestors above it, so the sentinels (−1/∞) and the
// per-shard dummy layers of the sharded composite do not distort the
// balance picture the structural maintainer (src/maint/) steers by.
struct StructureReport {
  bool ok = true;
  std::string error;
  std::size_t node_count = 0;  // real (non-sentinel) reachable nodes
  std::size_t height = 0;      // edges on the longest root→leaf path

  std::size_t max_depth = 0;     // deepest real node (real ancestors only)
  std::uint64_t depth_sum = 0;   // sum of real-node depths (for avg_depth)
  double avg_depth = 0.0;        // depth_sum / node_count (0 when empty)
  // depth_histogram[d] = number of real nodes at real-depth d.
  std::vector<std::size_t> depth_histogram;
  // Subtree rebuilds performed by the structural maintainer over this
  // tree's lifetime (0 for strategies without one).
  std::uint64_t rebuilds = 0;

  // Fold another report (e.g. one shard's) into this one: conjunction of
  // ok, first error wins, counts add, heights/depths max, histograms add
  // element-wise, average recomputed from the folded sums.
  void merge(const StructureReport& other) {
    if (ok && !other.ok) {
      ok = false;
      error = other.error;
    }
    node_count += other.node_count;
    if (other.height > height) height = other.height;
    if (other.max_depth > max_depth) max_depth = other.max_depth;
    depth_sum += other.depth_sum;
    if (other.depth_histogram.size() > depth_histogram.size()) {
      depth_histogram.resize(other.depth_histogram.size(), 0);
    }
    for (std::size_t d = 0; d < other.depth_histogram.size(); ++d) {
      depth_histogram[d] += other.depth_histogram[d];
    }
    rebuilds += other.rebuilds;
    avg_depth = node_count == 0
                    ? 0.0
                    : static_cast<double>(depth_sum) /
                          static_cast<double>(node_count);
  }
};

}  // namespace citrus::core
