// CITRUS — a binary search tree with RCU readers and concurrently locking
// updaters, from:
//
//   Maya Arbel and Hagit Attiya. "Concurrent Updates with RCU: Search Tree
//   as an Example". PODC 2014.
//
// The tree is *internal* (key/value pairs in every node) and unbalanced.
// Its three operations follow Section 3 of the paper:
//
//   contains/find — a sequential-style search wrapped in an RCU read-side
//     critical section. Wait-free: no locks, no retries, no helping.
//   insert — search (get), lock the parent, validate, link a new leaf.
//   erase  — search, lock parent+victim, validate; a victim with at most
//     one child is *bypassed*; a victim with two children is replaced by a
//     fresh COPY of its successor, then the updater waits for all
//     pre-existing readers (synchronize_rcu) before unlinking the original
//     successor, so a concurrent search can always find the successor in
//     either its old or its new position (never in neither — the false
//     negative of the paper's Figure 4).
//
// Validation after locking (the paper's `validate`) checks that the locked
// nodes are unmarked, still in the expected parent-child relation, and — for
// an insert into an empty slot — that the slot's ABA tag is unchanged ("a
// tag field is ... incremented every time the corresponding child field is
// set to ⊥").
//
// ── Extensions over the paper ──────────────────────────────────────────
//
// 1. Memory reclamation (the paper's stated future-work item). With
//    Traits::kReclaim, unlinked nodes are retired to per-tree sharded
//    queues; a batch is recycled into the type-stable NodePool after one
//    grace period covering the whole batch. Updaters lock nodes *outside*
//    read-side critical sections (the paper's deadlock-avoidance rule), so
//    a grace period alone cannot protect them; safety instead comes from
//    (a) type-stable slots — locking recycled memory is memory-safe — and
//    (b) a per-slot generation counter sampled during the search and
//    re-checked by validate, so a stale updater always fails validation
//    and restarts. The marked bit stays set from retirement until the slot
//    is re-initialized under its own lock, closing the recycle/validate
//    race (see node_pool.hpp).
// 2. Bounded lock acquisition: every lock is acquired with a bounded
//    try-lock; on timeout the operation releases everything and restarts
//    from the root. This makes update deadlock impossible by construction
//    (even in the reclaim-mode corner where stale pointers could order
//    lock acquisitions inconsistently) and guarantees that a blocked
//    updater periodically reaches a quiescent point, which the QSBR
//    domain's grace periods depend on.
// 3. Generic keys: the paper's dummy keys −1/∞ become sentinel node kinds,
//    so any `operator<`-ordered key type works, with no reserved values.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "citrus/citrus_node.hpp"
#include "citrus/citrus_traverse.hpp"
#include "citrus/node_pool.hpp"
#include "citrus/structure_report.hpp"
#include "citrus/update_status.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/rcu.hpp"
#include "sync/backoff.hpp"
#include "sync/spinlock.hpp"
#include "util/visit.hpp"

namespace citrus::core {

// Named execution points a test Traits can intercept (see
// tests/test_citrus_scenarios.cpp, which replays the races of the paper's
// Figures 4 and 5 deterministically). Production traits define no
// `pause`, so the hooks compile to nothing.
enum class PausePoint {
  kInsertAfterGet,      // insert: search done, parent not yet locked
  kEraseAfterGet,       // erase: search done, nothing locked
  kAfterReplacementPublish,  // two-child erase: copy linked, pre-grace
  kBeforeSuccessorUnlink,    // two-child erase: grace elapsed
  kCopAfterCopy,        // cop update: private copy built, nothing published
};

// Compile-time policy knobs for the tree.
struct DefaultTraits {
  // Node lock implementation (bench/ablation_lock_type compares these).
  using LockTag = sync::UseSpinLock;
  // Reclaim unlinked nodes through grace periods + the type-stable pool.
  // Off reproduces the paper's evaluation setup ("without performing any
  // memory reclamation").
  static constexpr bool kReclaim = true;
  // Unlinked nodes per shard before a grace period is paid to recycle them.
  static constexpr std::size_t kRetireBatch = 64;
  // try-lock budget (backoff pauses) for second-and-later locks.
  static constexpr std::uint32_t kLockAttempts = 1u << 12;
  // Maintain operation statistics (retry counters etc.).
  static constexpr bool kStats = true;
};

// Paper-faithful evaluation configuration: no reclamation, no stats.
struct BenchTraits : DefaultTraits {
  static constexpr bool kReclaim = false;
  static constexpr bool kStats = false;
};

// Mutable-operation statistics; exact only at quiescence.
struct CitrusStats {
  std::uint64_t insert_retries = 0;
  std::uint64_t erase_retries = 0;
  std::uint64_t two_child_erases = 0;
  std::uint64_t lock_timeouts = 0;
  std::uint64_t recycled_nodes = 0;

  // Ordered-operation counters: scans counts completed validated passes
  // (range chunks and succ/pred descents), scan_retries counts passes
  // restarted by a version conflict, scan_keys_visited counts pairs
  // returned by completed passes.
  std::uint64_t scans = 0;
  std::uint64_t scan_retries = 0;
  std::uint64_t scan_keys_visited = 0;

  // Optimistic copy-updater counters (citrus_cop.hpp; zero on the
  // lock+validate protocol). cop_commits counts successful optimistic
  // publishes on either path; cop_aborts_htm counts aborted HTM attempts
  // (hardware or injected via fault::Site::kTxAbort); cop_fallbacks
  // counts entries into the software validate-under-lock path (on a
  // machine without working HTM that is every publish attempt);
  // cop_validation_failures counts software-path validations that failed
  // and forced a re-traversal.
  std::uint64_t cop_commits = 0;
  std::uint64_t cop_aborts_htm = 0;
  std::uint64_t cop_fallbacks = 0;
  std::uint64_t cop_validation_failures = 0;

  // Structural-maintainer counters (src/maint/citrus_cf.hpp; zero on
  // trees without a maintainer). maint_rebuilds counts published subtree
  // rebuilds; maint_validation_failures counts rebuilds abandoned because
  // a concurrent update beat the revalidation (or a lock/allocation could
  // not be obtained — either way the subtree was left untouched);
  // maint_nodes_rebuilt counts real nodes copied into published
  // replacement subtrees.
  std::uint64_t maint_rebuilds = 0;
  std::uint64_t maint_validation_failures = 0;
  std::uint64_t maint_nodes_rebuilt = 0;

  // Grace-period engine counters of this tree's RCU domain (zero on
  // domains without the shared gp_seq). Domain-level: if several trees
  // share one domain, each stats() reports the same domain totals.
  // gp_started counts scans actually performed; gp_shared counts
  // synchronize calls that piggybacked on another caller's scan —
  // gp_started + gp_shared equals the domain's gp-path synchronize calls.
  std::uint64_t gp_started = 0;
  std::uint64_t gp_shared = 0;
  std::uint64_t gp_expedited = 0;

  // Fold another tree's counters into this one (sharded aggregation).
  void merge(const CitrusStats& o) {
    insert_retries += o.insert_retries;
    erase_retries += o.erase_retries;
    two_child_erases += o.two_child_erases;
    lock_timeouts += o.lock_timeouts;
    recycled_nodes += o.recycled_nodes;
    scans += o.scans;
    scan_retries += o.scan_retries;
    scan_keys_visited += o.scan_keys_visited;
    cop_commits += o.cop_commits;
    cop_aborts_htm += o.cop_aborts_htm;
    cop_fallbacks += o.cop_fallbacks;
    cop_validation_failures += o.cop_validation_failures;
    maint_rebuilds += o.maint_rebuilds;
    maint_validation_failures += o.maint_validation_failures;
    maint_nodes_rebuilt += o.maint_nodes_rebuilt;
    gp_started += o.gp_started;
    gp_shared += o.gp_shared;
    gp_expedited += o.gp_expedited;
  }
};

// check_structure() reports through core::StructureReport
// (structure_report.hpp), shared with the adapter layer.

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = DefaultTraits>
class CitrusTree {
 protected:
  // Visible to the derived cop tree (citrus_cop.hpp), which layers an
  // alternative update protocol over the same node/lock machinery.
  using Lock = typename Traits::LockTag::type;
  using Node = CitrusNode<Key, Value, Lock>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using rcu_type = Rcu;

  // The domain is shared infrastructure (several structures may use one
  // domain, as in the kernel); the tree does not own it. Every thread
  // operating on the tree must hold a Rcu::Registration for `domain`.
  // rcu-lint: quiescent (construction: the tree is not published yet)
  explicit CitrusTree(Rcu& domain) : rcu_(domain) {
    // Dummy layout from the paper: "The root of the tree always points to
    // a node with key −1, this node has a right child with key ∞; all
    // other nodes are in the left sub-tree of ∞."
    Node* root = pool_.allocate(false, NodeKind::kMinusInf, nullptr, nullptr,
                                nullptr, nullptr);
    Node* inf = pool_.allocate(false, NodeKind::kPlusInf, nullptr, nullptr,
                               nullptr, nullptr);
    // A constructor has no status channel: if the pool cannot even produce
    // the two sentinels (injected OOM or a genuinely exhausted allocator),
    // there is no tree to degrade gracefully — report it the C++ way.
    if (root == nullptr || inf == nullptr) {
      if (inf != nullptr) pool_.destroy_with_pool(inf);
      if (root != nullptr) pool_.destroy_with_pool(root);
      throw std::bad_alloc();
    }
    root->child[kRight].unguarded_store(inf);
    // The root slot is published exactly once; every later reader load
    // acquires against this release.
    root_.publish(root);
  }

  CitrusTree(const CitrusTree&) = delete;
  CitrusTree& operator=(const CitrusTree&) = delete;

  // Quiescent destruction: no concurrent operations, and the caller must
  // not destroy the tree while other threads still hold unflushed state
  // referring to it (worker threads are expected to have been joined).
  // rcu-lint: quiescent (single-owner teardown, no concurrent operations)
  ~CitrusTree() {
    check::ScopedQuiescent quiescent;
    std::vector<Node*> stack{root_.unguarded_load()};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (Node* l = n->child[kLeft].unguarded_load()) {
        stack.push_back(l);
      }
      if (Node* r = n->child[kRight].unguarded_load()) {
        stack.push_back(r);
      }
      pool_.destroy_with_pool(n);
    }
    for (RetireShard& shard : retire_shards_) {
      for (Node* n : shard.nodes) pool_.destroy_with_pool(n);
    }
  }

  // ── Read side ─────────────────────────────────────────────────────

  // Wait-free: returns a copy of the value mapped to `key`, if present.
  // The copy is taken inside the read-side critical section, so it is safe
  // even when reclamation is on.
  std::optional<Value> find(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const rcu::protected_ptr<const Node> curr = search_locked_free(key);
    if (curr == nullptr) return std::nullopt;
    check::on_node_access(curr.get());
    return curr->value();
  }

  // Paper's `contains`: presence only (avoids the value copy).
  bool contains(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    return search_locked_free(key) != nullptr;
  }

  // ── Ordered read side (validated scans) ───────────────────────────
  //
  // Every node carries a seqlock `version` (citrus_node.hpp) bumped by
  // writers, under the node lock, around each published child-pointer
  // store. A scan walks the tree in order inside one read-side critical
  // section, recording (node, even-version) for every node whose children
  // it reads; at the end it re-checks all recorded versions behind an
  // acquire fence. If none changed, every pointer the walk followed was
  // still the published pointer at the instant of the final check, so the
  // collected pairs are exactly the in-range content of the tree at that
  // instant — the scan's linearization point. Any conflict restarts the
  // pass (counted in CitrusStats::scan_retries).
  //
  // Long scans CHUNK: a bounded number of pairs is collected per critical
  // section and the walk re-enters with a *key* cursor — never a pointer —
  // so a scan neither stalls grace periods nor can carry a node reference
  // across a reclamation cycle (within one chunk the open read-side
  // section blocks recycling; across chunks only the key survives). One
  // corner case is handled by dedup: during a two-child erase the
  // successor's copy and the not-yet-unlinked original coexist (the
  // paper's Figure 4 window), so an in-order walk can meet the same key
  // twice in adjacent positions.

  static constexpr std::size_t kDefaultScanChunk = 256;

  // Atomically collects the first `max` (0 = all) pairs with key in
  // [lo, hi]; nullptr bounds are unbounded, `lo_inclusive` false makes the
  // lower bound exclusive (cursor re-entry). Returns true if in-range keys
  // beyond the collected prefix may remain.
  bool scan_chunk(const Key* lo, bool lo_inclusive, const Key* hi,
                  std::size_t max,
                  std::vector<std::pair<Key, Value>>* out) const {
    out->clear();
    sync::Backoff bo;
    for (;;) {
      const int r = attempt_scan(lo, lo_inclusive, hi, max, out);
      if (r >= 0) {
        bump(&CitrusStats::scans);
        bump_n(&CitrusStats::scan_keys_visited, out->size());
        return r > 0;
      }
      bump(&CitrusStats::scan_retries);
      out->clear();
      bo.pause();
    }
  }

  // In-order visit of the pairs with lo <= key <= hi. The visitor returns
  // false to stop early and is invoked OUTSIDE the read-side critical
  // section (pairs are buffered per chunk), so it may block or re-enter
  // the tree. `limit` 0 = unlimited. `chunk` 0 = one atomic pass over the
  // whole range (snapshot consistency, memory O(result)); otherwise each
  // chunk of up to `chunk` pairs is internally atomic and chunks advance
  // monotonically in key (chunked consistency). Returns pairs visited.
  template <typename F>
  std::size_t range(const Key& lo, const Key& hi, F&& f,
                    std::size_t limit = 0,
                    std::size_t chunk = kDefaultScanChunk) const {
    if (hi < lo) return 0;
    std::vector<std::pair<Key, Value>> buf;
    std::size_t visited = 0;
    const Key* cursor = &lo;
    bool cursor_inclusive = true;
    Key cursor_key{};
    for (;;) {
      std::size_t want = chunk;
      if (limit != 0) {
        const std::size_t left = limit - visited;
        want = chunk == 0 ? left : std::min(chunk, left);
      }
      const bool more = scan_chunk(cursor, cursor_inclusive, &hi, want, &buf);
      for (const auto& [k, v] : buf) {
        ++visited;
        if (!util::visit_entry(f, k, v)) return visited;
      }
      if (!more || buf.empty()) return visited;
      if (limit != 0 && visited >= limit) return visited;
      cursor_key = buf.back().first;
      cursor = &cursor_key;
      cursor_inclusive = false;
    }
  }

  // Descending mirror of scan_chunk: atomically collects the first `max`
  // (0 = all) pairs with key in [lo, hi] in DESCENDING key order; nullptr
  // bounds are unbounded, `hi_inclusive` false makes the upper bound
  // exclusive (cursor re-entry). Returns true if in-range keys below the
  // collected prefix may remain.
  bool scan_chunk_desc(const Key* lo, const Key* hi, bool hi_inclusive,
                       std::size_t max,
                       std::vector<std::pair<Key, Value>>* out) const {
    out->clear();
    sync::Backoff bo;
    for (;;) {
      const int r = attempt_scan_desc(lo, hi, hi_inclusive, max, out);
      if (r >= 0) {
        bump(&CitrusStats::scans);
        bump_n(&CitrusStats::scan_keys_visited, out->size());
        return r > 0;
      }
      bump(&CitrusStats::scan_retries);
      out->clear();
      bo.pause();
    }
  }

  // Descending mirror of range(): visits the pairs with lo <= key <= hi
  // from hi down to lo. Same consistency contract as range() — each chunk
  // is internally atomic, chunks advance monotonically downward in key,
  // the visitor runs outside the critical section. Returns pairs visited.
  template <typename F>
  std::size_t range_desc(const Key& lo, const Key& hi, F&& f,
                         std::size_t limit = 0,
                         std::size_t chunk = kDefaultScanChunk) const {
    if (hi < lo) return 0;
    std::vector<std::pair<Key, Value>> buf;
    std::size_t visited = 0;
    const Key* cursor = &hi;
    bool cursor_inclusive = true;
    Key cursor_key{};
    for (;;) {
      std::size_t want = chunk;
      if (limit != 0) {
        const std::size_t left = limit - visited;
        want = chunk == 0 ? left : std::min(chunk, left);
      }
      const bool more =
          scan_chunk_desc(&lo, cursor, cursor_inclusive, want, &buf);
      for (const auto& [k, v] : buf) {
        ++visited;
        if (!util::visit_entry(f, k, v)) return visited;
      }
      if (!more || buf.empty()) return visited;
      if (limit != 0 && visited >= limit) return visited;
      cursor_key = buf.back().first;
      cursor = &cursor_key;
      cursor_inclusive = false;
    }
  }

  // Smallest key strictly greater than `key` / greatest key strictly
  // smaller, with its value. A wait-free candidate descent validated like
  // scan_chunk, so the answer is exact at its linearization point.
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    return neighbor(key, true);
  }
  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    return neighbor(key, false);
  }

  // ── Update side ───────────────────────────────────────────────────

  // Adds (key, value); returns false (and changes nothing) if the key is
  // already present. Callers that set a pool cap or run fault builds
  // should prefer try_insert — this wrapper folds kNoMemory into false.
  bool insert(const Key& key, const Value& value) {
    return try_insert(key, value) == UpdateStatus::kSuccess;
  }

  // Status-returning insert (see update_status.hpp). kNoMemory means the
  // node pool could not produce a leaf: the operation changed nothing,
  // released every lock, and did NOT retry — retrying a permanent OOM
  // would livelock, so the decision belongs to the caller. The failure
  // happens strictly before any node is marked or any pointer published,
  // so the unwind is trivially clean.
  UpdateStatus try_insert(const Key& key, const Value& value) {
    for (;;) {
      GetResult g = get(key);
      if (g.curr != nullptr) return UpdateStatus::kNoOp;  // key found
      pause(PausePoint::kInsertAfterGet);

      LockSet locks;
      if (!locks.acquire_timed(g.prev)) {
        bump(&CitrusStats::lock_timeouts);
        continue;
      }
      if (validate(g.prev, g.prev_gen, g.tag, nullptr, 0, g.direction)) {
        Node* leaf = pool_.allocate(false, NodeKind::kReal, &key, &value,
                                    nullptr, nullptr);
        if (leaf == nullptr) return UpdateStatus::kNoMemory;  // locks unwind
        g.prev->scan_write_begin();
        g.prev->child[g.direction].publish(leaf);
        g.prev->scan_write_end();
        locks.release_all();
        size_.fetch_add(1, std::memory_order_relaxed);
        return UpdateStatus::kSuccess;
      }
      bump(&CitrusStats::insert_retries);  // LockSet releases on scope exit
    }
  }

  // Replaces the value mapped to `key`; returns false (and changes
  // nothing) if the key is absent.
  //
  // Extension over the paper (whose insert never overwrites): values are
  // immutable per node — that is what makes find's unsynchronized value
  // read safe and what lets a two-child delete publish a successor *copy*
  // — so assignment is implemented as node replacement: lock parent and
  // node, validate, publish a copy carrying the new value and the old
  // children, mark the original, retire it. Unlike a two-child delete, no
  // grace period is needed before returning: the key never changes
  // position, so a concurrent search finds the old or the new node —
  // either way the correct key, with one of the two values this operation
  // linearizes between.
  bool assign(const Key& key, const Value& value) {
    return try_assign(key, value) == UpdateStatus::kSuccess;
  }

  // Status-returning assign; kNoMemory as in try_insert (the replacement
  // copy is allocated before the original is marked, so a failed
  // allocation unwinds with the tree untouched).
  UpdateStatus try_assign(const Key& key, const Value& value) {
    for (;;) {
      GetResult g = get(key);
      if (g.curr == nullptr) return UpdateStatus::kNoOp;  // key not found

      LockSet locks;
      if (!locks.acquire_timed(g.prev) || !locks.acquire_timed(g.curr)) {
        bump(&CitrusStats::lock_timeouts);
        continue;
      }
      if (!validate(g.prev, g.prev_gen, 0, g.curr, g.curr_gen, g.direction)) {
        bump(&CitrusStats::erase_retries);
        continue;
      }
      check::on_node_access(g.curr);  // locked + validated: live
      Node* left = g.curr->child[kLeft].load_locked();
      Node* right = g.curr->child[kRight].load_locked();
      Node* replacement = pool_.allocate(false, NodeKind::kReal,
                                         &g.curr->key(), &value, left, right);
      if (replacement == nullptr) return UpdateStatus::kNoMemory;
      // Lemma 1 discipline: only marked nodes may become unreachable.
      g.curr->marked.store(true, std::memory_order_release);
      g.prev->scan_write_begin();
      g.prev->child[g.direction].publish(replacement);
      g.prev->scan_write_end();
      locks.release_all();
      retire(g.curr);
      return UpdateStatus::kSuccess;
    }
  }

  // insert-or-assign composite: returns true if the key was inserted,
  // false if an existing mapping was overwritten — or if memory ran out
  // (the bool channel cannot distinguish the two; use the try_* forms
  // where that matters).
  bool insert_or_assign(const Key& key, const Value& value) {
    for (;;) {
      switch (try_insert(key, value)) {
        case UpdateStatus::kSuccess:
          return true;
        case UpdateStatus::kNoMemory:
          return false;
        case UpdateStatus::kNoOp:
          break;
      }
      switch (try_assign(key, value)) {
        case UpdateStatus::kSuccess:
        case UpdateStatus::kNoMemory:
          return false;
        case UpdateStatus::kNoOp:
          break;  // the key vanished between the two calls; start over
      }
    }
  }

  // Removes `key`; returns false if it is not present.
  bool erase(const Key& key) {
    return try_erase(key) == UpdateStatus::kSuccess;
  }

  // Status-returning erase. Only the two-children case allocates (the
  // successor's copy, paper Line 70); a failed allocation there unwinds
  // before the victim is marked and returns kNoMemory — the key is still
  // in the tree, untouched.
  UpdateStatus try_erase(const Key& key) {
    for (;;) {
      GetResult g = get(key);
      if (g.curr == nullptr) return UpdateStatus::kNoOp;  // key not found
      pause(PausePoint::kEraseAfterGet);

      LockSet locks;
      if (!locks.acquire_timed(g.prev) || !locks.acquire_timed(g.curr)) {
        bump(&CitrusStats::lock_timeouts);
        continue;
      }
      if (!validate(g.prev, g.prev_gen, 0, g.curr, g.curr_gen, g.direction)) {
        bump(&CitrusStats::erase_retries);
        continue;  // LockSet destructor releases
      }

      // Child pointers of a locked node are stable (all writers lock).
      check::on_node_access(g.curr);  // locked + validated: live
      Node* left = g.curr->child[kLeft].load_locked();
      Node* right = g.curr->child[kRight].load_locked();

      if (left == nullptr || right == nullptr) {
        erase_single_child(g, left, right);
        locks.release_all();
        retire(g.curr);
        return UpdateStatus::kSuccess;
      }
      switch (erase_two_children(g, left, right, locks)) {
        case TwoChild::kDone:
          return UpdateStatus::kSuccess;
        case TwoChild::kNoMemory:
          return UpdateStatus::kNoMemory;  // locks unwind via LockSet
        case TwoChild::kRetry:
          break;
      }
      bump(&CitrusStats::erase_retries);
    }
  }

  // ── Introspection (quiescent unless noted) ────────────────────────

  // Key count; maintained with relaxed counters, exact at quiescence.
  std::size_t size() const noexcept {
    const std::int64_t s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }

  // Pool capacity cap (NodePool::set_max_live): with n > 0 an update that
  // would grow past n live nodes fails with kNoMemory instead of carving
  // a new slot — real exhaustion, no fault injection required. Includes
  // the two sentinels and nodes retired but not yet recycled.
  void set_max_live_nodes(std::int64_t n) noexcept { pool_.set_max_live(n); }
  std::int64_t live_nodes() const noexcept { return pool_.live(); }

  CitrusStats stats() const {
    CitrusStats out;
    if constexpr (Traits::kStats) {
      out.insert_retries = stats_.insert_retries.load(std::memory_order_relaxed);
      out.erase_retries = stats_.erase_retries.load(std::memory_order_relaxed);
      out.two_child_erases =
          stats_.two_child_erases.load(std::memory_order_relaxed);
      out.lock_timeouts = stats_.lock_timeouts.load(std::memory_order_relaxed);
      out.recycled_nodes = stats_.recycled_nodes.load(std::memory_order_relaxed);
      out.scans = stats_.scans.load(std::memory_order_relaxed);
      out.scan_retries = stats_.scan_retries.load(std::memory_order_relaxed);
      out.scan_keys_visited =
          stats_.scan_keys_visited.load(std::memory_order_relaxed);
      out.cop_commits = stats_.cop_commits.load(std::memory_order_relaxed);
      out.cop_aborts_htm =
          stats_.cop_aborts_htm.load(std::memory_order_relaxed);
      out.cop_fallbacks = stats_.cop_fallbacks.load(std::memory_order_relaxed);
      out.cop_validation_failures =
          stats_.cop_validation_failures.load(std::memory_order_relaxed);
    }
    // Domain-side counters are kept by the grace-period engine itself and
    // cost nothing to read, so they are reported even with kStats off.
    if constexpr (requires(const Rcu& d) {
                    { d.grace_periods_started() };
                    { d.grace_periods_shared() };
                  }) {
      out.gp_started = rcu_.grace_periods_started();
      out.gp_shared = rcu_.grace_periods_shared();
      if constexpr (requires(const Rcu& d) {
                      { d.grace_periods_expedited() };
                    }) {
        out.gp_expedited = rcu_.grace_periods_expedited();
      }
    }
    return out;
  }

  // In-order visit of (key, value) pairs. Quiescent only: concurrent
  // updates make multi-item reads unlinearizable (the paper's Figure 1 is
  // exactly this anomaly), which is why this is not part of the concurrent
  // API.
  template <typename F>
  void for_each_quiescent(F&& f) const {
    check::ScopedQuiescent quiescent;
    in_order(real_root(), f);
  }

  std::vector<Key> keys_quiescent() const {
    std::vector<Key> out;
    for_each_quiescent([&out](const Key& k, const Value&) { out.push_back(k); });
    return out;
  }

  // Structural audit: strict BST order under the sentinels, no reachable
  // marked node, no node with two parents, node count vs size().
  // rcu-lint: quiescent (structural audit; documented quiescent-only API)
  StructureReport check_structure() const {
    check::ScopedQuiescent quiescent;
    StructureReport rep;
    std::unordered_set<const Node*> seen;
    // (lo, hi) exclusive bounds as node pointers; nullptr = unbounded.
    struct Frame {
      const Node* n;
      const Key* lo;
      const Key* hi;
      std::size_t depth;       // edges from the root, sentinels included
      std::size_t real_depth;  // real (kReal) ancestors only
    };
    std::vector<Frame> stack;
    stack.push_back({root_.unguarded_load(), nullptr, nullptr, 0, 0});
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (f.n == nullptr) continue;
      if (!seen.insert(f.n).second) {
        return fail(rep, "node reachable through two parents");
      }
      if (f.n->marked.load(std::memory_order_relaxed)) {
        return fail(rep, "reachable node is marked");
      }
      rep.height = std::max(rep.height, f.depth);
      const Key* lo = f.lo;
      const Key* hi = f.hi;
      if (f.n->kind == NodeKind::kReal) {
        ++rep.node_count;
        // Balance picture in real-node terms (the maintainer's metric):
        // sentinel layers are excluded so the numbers compare directly
        // against log2(node_count).
        rep.max_depth = std::max(rep.max_depth, f.real_depth);
        rep.depth_sum += f.real_depth;
        if (f.real_depth >= rep.depth_histogram.size()) {
          rep.depth_histogram.resize(f.real_depth + 1, 0);
        }
        ++rep.depth_histogram[f.real_depth];
        const Key& k = f.n->key();
        if ((lo != nullptr && !(*lo < k)) || (hi != nullptr && !(k < *hi))) {
          return fail(rep, "BST order violated");
        }
        stack.push_back({f.n->child[kLeft].unguarded_load(), lo,
                         &f.n->key(), f.depth + 1, f.real_depth + 1});
        stack.push_back({f.n->child[kRight].unguarded_load(), &f.n->key(), hi,
                         f.depth + 1, f.real_depth + 1});
      } else {
        // Sentinels: −∞ bounds nothing on the left; +∞ keeps all real keys
        // in its left subtree.
        if (f.n->kind == NodeKind::kMinusInf &&
            f.n->child[kLeft].unguarded_load() != nullptr) {
          return fail(rep, "-inf sentinel grew a left child");
        }
        if (f.n->kind == NodeKind::kPlusInf &&
            f.n->child[kRight].unguarded_load() != nullptr) {
          return fail(rep, "+inf sentinel grew a right child");
        }
        stack.push_back({f.n->child[kLeft].unguarded_load(), lo, hi,
                         f.depth + 1, f.real_depth});
        stack.push_back({f.n->child[kRight].unguarded_load(), lo, hi,
                         f.depth + 1, f.real_depth});
      }
    }
    if (rep.node_count != size()) {
      return fail(rep, "size() does not match reachable node count");
    }
    rep.avg_depth = rep.node_count == 0
                        ? 0.0
                        : static_cast<double>(rep.depth_sum) /
                              static_cast<double>(rep.node_count);
    return rep;
  }

  Rcu& domain() noexcept { return rcu_; }
  std::int64_t pool_live_nodes() const noexcept { return pool_.live(); }

 protected:
  // The traversal state and bounded-locking machinery are shared with the
  // optimistic cop protocol (citrus_traverse.hpp holds the definitions).
  using GetResult = core::GetResult<Node>;
  using LockSet = core::LockSet<Node, Traits::kLockAttempts>;

  // Paper `get` (Lines 1-15): wait-free search inside a read-side critical
  // section; returns the last edge followed plus the tag of the final slot
  // ("Save tag inside read-side critical section", Line 13).
  GetResult get(const Key& key) const {
    GetResult r;
    rcu::ReadGuard<Rcu> guard(rcu_);
    rcu::protected_ptr<Node> prev = root_.load();
    int direction = kRight;
    rcu::protected_ptr<Node> curr = prev->child[kRight].load_protected();
    check::on_node_access(curr.get());
    int c = curr->compare(key);  // root's right child is never null
    while (curr != nullptr && c != 0) {
      prev = curr;
      direction = c < 0 ? kLeft : kRight;
      curr = prev->child[direction].load_protected();
      if (curr != nullptr) {
        check::on_node_access(curr.get());
        c = curr->compare(key);
      }
    }
    // Deliberate escape beyond the read section (the paper's central
    // subtlety): the locking phase re-protects these pointers through the
    // generation snapshots below — validate() fails on any node the
    // reclaimer recycled after this section closed, forcing a restart.
    // rcu-analyze: allow (generation-validated handoff to the locking
    // phase; stale escapees always fail validate, DESIGN.md §7)
    r.prev = prev.escape();
    r.curr = curr.escape();
    r.direction = direction;
    r.tag = prev->tag[direction].load(std::memory_order_acquire);
    r.prev_gen = prev->generation.load(std::memory_order_acquire);
    if (curr != nullptr) {
      r.curr_gen = curr->generation.load(std::memory_order_acquire);
    }
    return r;
  }

  // Lock-free search used by find/contains; caller holds the read guard,
  // and the returned handle stays inside that same region (protected_ptr
  // in, protected_ptr out — not an escape).
  // rcu-lint: allow (caller holds the read guard — see find/contains)
  rcu::protected_ptr<const Node> search_locked_free(const Key& key) const {
    rcu::protected_ptr<const Node> curr =
        root_.load()->child[kRight].load_protected();
    while (curr != nullptr) {
      check::on_node_access(curr.get());
      const int c = curr->compare(key);
      if (c == 0) return curr;
      curr = curr->child[c < 0 ? kLeft : kRight].load_protected();
    }
    return nullptr;
  }

  // ── Validated-scan machinery ──────────────────────────────────────

  // A node whose children the scan read, with the even version observed
  // before the reads.
  struct VersionSample {
    const Node* node;
    std::uint64_t version;
  };

  // Seqlock read-side validation (Boehm's idiom): an acquire fence, then
  // relaxed re-loads of every recorded version. Unchanged versions mean no
  // writer's wrapped store overlapped [sample, fence] on any walked node,
  // so the walk observed the exact published structure as of the fence.
  static bool validate_versions(const std::vector<VersionSample>& vset) {
    std::atomic_thread_fence(std::memory_order_acquire);
    for (const VersionSample& s : vset) {
      if (s.node->version.load(std::memory_order_relaxed) != s.version) {
        return false;
      }
    }
    return true;
  }

  // One atomic scan pass inside a single read-side critical section.
  // Returns -1 on version conflict (caller retries), 0 when the in-range
  // key space was exhausted, +1 when `max` pairs were collected and keys
  // may remain. In-order traversal with subtree pruning on the bounds;
  // when it truncates, everything not yet visited is greater (in BST
  // order, as of the validation point) than the emitted prefix, so the
  // prefix is exactly the first `max` in-range pairs.
  int attempt_scan(const Key* lo, bool lo_inclusive, const Key* hi,
                   std::size_t max,
                   std::vector<std::pair<Key, Value>>* out) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    std::vector<VersionSample> vset;
    struct Frame {
      const Node* node;
      const Node* right;  // pruned right child, pre-loaded under the sample
      bool in_lo;         // key satisfies the lower bound
      bool in_hi;         // key satisfies the upper bound
    };
    std::vector<Frame> stack;
    bool conflict = false;
    // Sample a node, prune against the bounds, and walk down its left
    // spine; every pointer is loaded after the owning node's version.
    const auto descend_left = [&](const Node* n) {
      while (n != nullptr) {
        const std::uint64_t v = n->version.load(std::memory_order_acquire);
        if ((v & 1) != 0) {
          conflict = true;  // a writer is mid-publish on this node
          return;
        }
        check::on_node_access(n);
        vset.push_back({n, v});
        const int c_lo = lo != nullptr ? n->compare(*lo) : -1;
        const int c_hi = hi != nullptr ? n->compare(*hi) : +1;
        Frame f;
        f.node = n;
        f.in_lo = c_lo < 0 || (c_lo == 0 && lo_inclusive);
        f.in_hi = c_hi >= 0;
        // Right subtree holds keys > n: relevant unless n >= hi.
        f.right = c_hi > 0 ? n->child[kRight].load_protected().get()
                           : nullptr;
        stack.push_back(f);
        // Left subtree holds keys < n: relevant unless n <= lo.
        n = c_lo < 0 ? n->child[kLeft].load_protected().get() : nullptr;
      }
    };
    bool truncated = false;
    descend_left(root_.load().get());
    while (!conflict && !stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.node->kind == NodeKind::kReal && f.in_lo && f.in_hi) {
        if (max != 0 && out->size() == max) {
          truncated = true;
          break;
        }
        // Adjacent-duplicate dedup (two-child erase window, see above).
        if (out->empty() || out->back().first < f.node->key()) {
          out->push_back({f.node->key(), f.node->value()});
        }
      }
      descend_left(f.right);
    }
    if (conflict || !validate_versions(vset)) return -1;
    return truncated ? 1 : 0;
  }

  // Descending mirror of attempt_scan: walk the RIGHT spine first so the
  // stack unwinds in descending key order. Same return protocol. When it
  // truncates, everything not yet visited is SMALLER than the emitted
  // prefix, so the prefix is exactly the last `max` in-range pairs.
  int attempt_scan_desc(const Key* lo, const Key* hi, bool hi_inclusive,
                        std::size_t max,
                        std::vector<std::pair<Key, Value>>* out) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    std::vector<VersionSample> vset;
    struct Frame {
      const Node* node;
      const Node* left;  // pruned left child, pre-loaded under the sample
      bool in_lo;        // key satisfies the lower bound
      bool in_hi;        // key satisfies the upper bound
    };
    std::vector<Frame> stack;
    bool conflict = false;
    const auto descend_right = [&](const Node* n) {
      while (n != nullptr) {
        const std::uint64_t v = n->version.load(std::memory_order_acquire);
        if ((v & 1) != 0) {
          conflict = true;  // a writer is mid-publish on this node
          return;
        }
        check::on_node_access(n);
        vset.push_back({n, v});
        const int c_lo = lo != nullptr ? n->compare(*lo) : -1;
        const int c_hi = hi != nullptr ? n->compare(*hi) : +1;
        Frame f;
        f.node = n;
        f.in_lo = c_lo <= 0;
        f.in_hi = c_hi > 0 || (c_hi == 0 && hi_inclusive);
        // Left subtree holds keys < n: relevant unless n <= lo.
        f.left = c_lo < 0 ? n->child[kLeft].load_protected().get()
                          : nullptr;
        stack.push_back(f);
        // Right subtree holds keys > n: relevant unless n >= hi.
        n = c_hi > 0 ? n->child[kRight].load_protected().get() : nullptr;
      }
    };
    bool truncated = false;
    descend_right(root_.load().get());
    while (!conflict && !stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.node->kind == NodeKind::kReal && f.in_lo && f.in_hi) {
        if (max != 0 && out->size() == max) {
          truncated = true;
          break;
        }
        // Adjacent-duplicate dedup, descending flavor.
        if (out->empty() || f.node->key() < out->back().first) {
          out->push_back({f.node->key(), f.node->value()});
        }
      }
      descend_right(f.left);
    }
    if (conflict || !validate_versions(vset)) return -1;
    return truncated ? 1 : 0;
  }

  // Shared succ/pred descent: candidate tracking over the validated path.
  // Exact because every reachable node carries a present key (marked
  // nodes pending unlink included — erase linearizes at the unlink for
  // readers), so no backtracking past the root-to-candidate path is ever
  // needed.
  std::optional<std::pair<Key, Value>> neighbor(const Key& key,
                                                bool want_succ) const {
    sync::Backoff bo;
    for (;;) {
      std::optional<std::pair<Key, Value>> out;
      if (attempt_neighbor(key, want_succ, &out)) {
        bump(&CitrusStats::scans);
        if (out.has_value()) bump_n(&CitrusStats::scan_keys_visited, 1);
        return out;
      }
      bump(&CitrusStats::scan_retries);
      bo.pause();
    }
  }

  bool attempt_neighbor(const Key& key, bool want_succ,
                        std::optional<std::pair<Key, Value>>* out) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    std::vector<VersionSample> vset;
    const Node* cand = nullptr;
    const Node* n = root_.load().get();
    while (n != nullptr) {
      const std::uint64_t v = n->version.load(std::memory_order_acquire);
      if ((v & 1) != 0) return false;
      check::on_node_access(n);
      vset.push_back({n, v});
      const int c = n->compare(key);  // <0: key < n, >0: key > n
      int dir;
      if (want_succ) {
        // Nodes greater than `key` are successor candidates; go left to
        // find a smaller one, right otherwise.
        if (c < 0 && n->kind == NodeKind::kReal) cand = n;
        dir = c < 0 ? kLeft : kRight;
      } else {
        if (c > 0 && n->kind == NodeKind::kReal) cand = n;
        dir = c > 0 ? kRight : kLeft;
      }
      n = n->child[dir].load_protected().get();
    }
    if (cand != nullptr) {
      out->emplace(cand->key(), cand->value());  // copied inside the guard
    } else {
      out->reset();
    }
    return validate_versions(vset);
  }

  // Paper `validate` (Lines 33-38): delegates to the shared
  // validate_link (citrus_traverse.hpp), which both update protocols use.
  // rcu-lint: allow (caller holds the locks acquired on prev/curr)
  bool validate(Node* prev, std::uint64_t prev_gen, std::uint64_t tag,
                Node* curr, std::uint64_t curr_gen, int direction) const {
    return validate_link<Node>(prev, prev_gen, tag, curr, curr_gen,
                               direction);
  }

  // Paper `incrementTag` (Lines 39-41); caller holds node's lock.
  // rcu-lint: allow (caller holds the node's lock)
  void increment_tag(Node* node, int direction) {
    if (node->child[direction].load_locked(std::memory_order_relaxed) ==
        nullptr) {
      node->tag[direction].fetch_add(1, std::memory_order_release);
    }
  }

  // Paper Lines 50-56: the victim has at most one child — mark and bypass.
  // rcu-lint: allow (caller holds locks on g.prev and g.curr)
  void erase_single_child(const GetResult& g, Node* left, Node* right) {
    g.curr->marked.store(true, std::memory_order_release);
    Node* child = left != nullptr ? left : right;
    g.prev->scan_write_begin();
    g.prev->child[g.direction].publish(child);
    g.prev->scan_write_end();
    increment_tag(g.prev, g.direction);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Paper Lines 57-83: replace the victim with a copy of its successor,
  // wait for pre-existing readers, then unlink the original successor.
  // kRetry if a validation failed and the caller must retry; kNoMemory if
  // the successor's copy could not be allocated (nothing was marked or
  // published — the operation unwinds cleanly). Releasing `locks` happens
  // via its destructor/continue path in the caller.
  enum class TwoChild { kDone, kRetry, kNoMemory };
  TwoChild erase_two_children(const GetResult& g, Node* left, Node* right,
                              LockSet& locks) {
    // Find the successor along the leftmost branch of the right subtree.
    // With reclamation on, the traversal runs inside a read-side critical
    // section: unlike the paper's no-reclamation setting, the nodes on the
    // path can be recycled mid-walk and only a grace period protects them.
    // (This nested section cannot deadlock with our own later
    // synchronize_rcu — we end it before taking more locks.)
    Node* prev_succ;
    Node* succ;
    std::uint64_t succ_gen, prev_succ_gen, succ_left_tag;
    {
      MaybeReadGuard guard(rcu_);
      // `g.curr` and `right` are protected by the held locks on
      // g.prev/g.curr, not by this section; the handles claim that.
      rcu::protected_ptr<Node> ps(g.curr);
      rcu::protected_ptr<Node> s(right);
      check::on_node_access(s.get());
      rcu::protected_ptr<Node> next = s->child[kLeft].load_protected();
      while (next != nullptr) {
        ps = s;
        s = next;
        check::on_node_access(s.get());
        next = next->child[kLeft].load_protected();
      }
      succ_gen = s->generation.load(std::memory_order_acquire);
      prev_succ_gen = ps->generation.load(std::memory_order_acquire);
      succ_left_tag = s->tag[kLeft].load(std::memory_order_acquire);
      // Escape beyond the nested section, re-protected by the generation
      // snapshots just taken: the lock+validate phase below restarts this
      // erase if either node was recycled after the section closed.
      // rcu-analyze: allow (generation-validated handoff, as in get())
      prev_succ = ps.escape();
      succ = s.escape();
    }

    const int succ_direction = prev_succ == g.curr ? kRight : kLeft;
    if (prev_succ != g.curr) {  // do not lock twice (paper Line 66)
      if (!locks.acquire_timed(prev_succ)) {
        bump(&CitrusStats::lock_timeouts);
        return TwoChild::kRetry;
      }
    }
    if (!locks.acquire_timed(succ)) {
      bump(&CitrusStats::lock_timeouts);
      return TwoChild::kRetry;
    }
    if (!validate(prev_succ, prev_succ_gen, 0, succ, succ_gen,
                  succ_direction) ||
        !validate(succ, succ_gen, succ_left_tag, nullptr, 0, kLeft)) {
      return TwoChild::kRetry;
    }

    // Line 70-71: the successor's copy, born locked, adopting the victim's
    // children. Its key/value are read under succ's lock, post-validation.
    Node* replacement = pool_.allocate(true, NodeKind::kReal, &succ->key(),
                                       &succ->value(), left, right);
    if (replacement == nullptr) return TwoChild::kNoMemory;
    locks.adopt(replacement);

    g.curr->marked.store(true, std::memory_order_release);  // Line 72
    g.prev->scan_write_begin();
    g.prev->child[g.direction].publish(replacement);  // Line 73
    g.prev->scan_write_end();
    pause(PausePoint::kAfterReplacementPublish);

    {
      // rcucheck blessing: the grace period is awaited while holding up to
      // five node locks (paper Lines 72-75). This cannot deadlock because
      // Citrus readers acquire no locks — the invariant this scope asserts.
      check::AllowSyncWithHeldLocks blessed;
      rcu_.synchronize();  // Line 74: wait for readers
    }
    pause(PausePoint::kBeforeSuccessorUnlink);

    succ->marked.store(true, std::memory_order_release);  // Line 75
    Node* succ_right = succ->child[kRight].load_locked();
    if (prev_succ == g.curr) {
      // Line 76-78: the successor is the victim's right child, which the
      // replacement adopted — bypass it there.
      replacement->scan_write_begin();
      replacement->child[kRight].publish(succ_right);
      replacement->scan_write_end();
      increment_tag(replacement, kRight);
    } else {
      prev_succ->scan_write_begin();
      prev_succ->child[kLeft].publish(succ_right);
      prev_succ->scan_write_end();
      increment_tag(prev_succ, kLeft);
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    bump(&CitrusStats::two_child_erases);
    locks.release_all();
    retire(g.curr);
    retire(succ);
    return TwoChild::kDone;
  }

  // ── Reclamation ───────────────────────────────────────────────────

  struct alignas(sync::kDestructiveInterference) RetireShard {
    sync::SpinLock lock;
    std::vector<Node*> nodes;
  };

  // Queue an unreachable node; recycle a whole shard batch after a single
  // grace period once the batch is full.
  void retire(Node* n) {
    // rcucheck (d): retiring an unmarked node means it was never unlinked.
    check::on_retire(n, n->marked.load(std::memory_order_relaxed));
    if constexpr (!Traits::kReclaim) {
      (void)n;  // paper mode: unreachable nodes are simply dropped
      return;
    }
    RetireShard& shard =
        retire_shards_[std::hash<std::thread::id>{}(
                           std::this_thread::get_id()) %
                       kRetireShards];
    std::vector<Node*> batch;
    {
      std::lock_guard<sync::SpinLock> guard(shard.lock);
      shard.nodes.push_back(n);
      if (shard.nodes.size() < Traits::kRetireBatch) return;
      batch.swap(shard.nodes);
    }
    // Everything in the batch was unlinked before this grace period, so
    // one synchronize covers the entire batch.
    rcu_.synchronize();
    for (Node* dead : batch) pool_.recycle(dead);
    if constexpr (Traits::kStats) {
      stats_.recycled_nodes.fetch_add(batch.size(),
                                      std::memory_order_relaxed);
    }
  }

  // Read guard that compiles to nothing when reclamation is off (the paper
  // notes the successor walk "does not need a read-side critical section"
  // — true only without reclamation). Checked builds always open the
  // section: the discipline verifier classifies the walk's dereferences by
  // context, and the no-reclaim special case is a property of this tree's
  // configuration, not of the client's discipline.
  //
  // A Traits that sets kMaintainerRecycles (src/maint/citrus_cf.hpp) also
  // forces the section on: the structural maintainer recycles replaced
  // subtrees through the pool even when update-side kReclaim is off, so
  // every unlocked traversal must be covered by a grace period again.
  static constexpr bool kMaintainerRecyclesNodes = [] {
    if constexpr (requires { Traits::kMaintainerRecycles; }) {
      return static_cast<bool>(Traits::kMaintainerRecycles);
    } else {
      return false;
    }
  }();

  class MaybeReadGuard {
   public:
    static constexpr bool kGuard =
        Traits::kReclaim || kMaintainerRecyclesNodes || check::kEnabled;
    CITRUS_RCU_READ_LOCK_FN explicit MaybeReadGuard(Rcu& rcu) : rcu_(rcu) {
      if constexpr (kGuard) rcu_.read_lock();
    }
    CITRUS_RCU_READ_UNLOCK_FN ~MaybeReadGuard() {
      if constexpr (kGuard) rcu_.read_unlock();
    }
    MaybeReadGuard(const MaybeReadGuard&) = delete;
    MaybeReadGuard& operator=(const MaybeReadGuard&) = delete;

   private:
    Rcu& rcu_;
  };

  // ── Helpers ───────────────────────────────────────────────────────

  // rcu-lint: quiescent (helper for the quiescent-only iteration APIs)
  const Node* real_root() const {
    // All real nodes live in the left subtree of the +inf sentinel.
    const Node* inf = root_.unguarded_load()->child[kRight].unguarded_load();
    return inf->child[kLeft].unguarded_load();
  }

  // rcu-lint: quiescent (reached only through for_each_quiescent)
  template <typename F>
  void in_order(const Node* n, F& f) const {
    // Explicit stack: the tree is unbalanced and may degenerate to a path.
    std::vector<const Node*> stack;
    while (n != nullptr || !stack.empty()) {
      while (n != nullptr) {
        stack.push_back(n);
        n = n->child[kLeft].unguarded_load();
      }
      n = stack.back();
      stack.pop_back();
      f(n->key(), n->value());
      n = n->child[kRight].unguarded_load();
    }
  }

  // Test-hook dispatch: no-op (and fully optimized out) unless the Traits
  // define `static void pause(PausePoint)`.
  static void pause([[maybe_unused]] PausePoint point) {
    if constexpr (requires { Traits::pause(point); }) {
      Traits::pause(point);
    }
  }

  static StructureReport fail(StructureReport rep, const char* what) {
    rep.ok = false;
    rep.error = what;
    return rep;
  }

  struct AtomicStats {
    std::atomic<std::uint64_t> insert_retries{0};
    std::atomic<std::uint64_t> erase_retries{0};
    std::atomic<std::uint64_t> two_child_erases{0};
    std::atomic<std::uint64_t> lock_timeouts{0};
    std::atomic<std::uint64_t> recycled_nodes{0};
    std::atomic<std::uint64_t> scans{0};
    std::atomic<std::uint64_t> scan_retries{0};
    std::atomic<std::uint64_t> scan_keys_visited{0};
    std::atomic<std::uint64_t> cop_commits{0};
    std::atomic<std::uint64_t> cop_aborts_htm{0};
    std::atomic<std::uint64_t> cop_fallbacks{0};
    std::atomic<std::uint64_t> cop_validation_failures{0};
  };

  void bump(std::uint64_t CitrusStats::* field) const {
    if constexpr (Traits::kStats) {
      if (field == &CitrusStats::insert_retries) {
        stats_.insert_retries.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::erase_retries) {
        stats_.erase_retries.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::two_child_erases) {
        stats_.two_child_erases.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::lock_timeouts) {
        stats_.lock_timeouts.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::scans) {
        stats_.scans.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::scan_retries) {
        stats_.scan_retries.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::cop_commits) {
        stats_.cop_commits.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::cop_aborts_htm) {
        stats_.cop_aborts_htm.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::cop_fallbacks) {
        stats_.cop_fallbacks.fetch_add(1, std::memory_order_relaxed);
      } else if (field == &CitrusStats::cop_validation_failures) {
        stats_.cop_validation_failures.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
    } else {
      (void)field;
    }
  }

  // Add-by-n variant for the batched counters.
  void bump_n(std::uint64_t CitrusStats::* field, std::uint64_t n) const {
    if constexpr (Traits::kStats) {
      if (field == &CitrusStats::scan_keys_visited) {
        stats_.scan_keys_visited.fetch_add(n, std::memory_order_relaxed);
      } else if (field == &CitrusStats::cop_aborts_htm) {
        stats_.cop_aborts_htm.fetch_add(n, std::memory_order_relaxed);
      }
    } else {
      (void)field;
      (void)n;
    }
  }

  static constexpr std::size_t kRetireShards = 16;

  Rcu& rcu_;
  mutable NodePool<Node> pool_;
  // Published-once entry slot: the -inf sentinel, set in the constructor
  // and immutable afterwards (readers load-acquire through the wrapper).
  rcu::published_ptr<Node> root_;
  std::atomic<std::int64_t> size_{0};
  mutable AtomicStats stats_;
  RetireShard retire_shards_[kRetireShards];
};

}  // namespace citrus::core
