// Type-stable node pool for the Citrus tree.
//
// The paper leaves memory reclamation as its primary future-work item
// ("it is also important to integrate into Citrus ... efficient memory
// reclamation"). Reclaiming Citrus nodes is subtle because updaters
// deliberately acquire node locks *outside* the read-side critical section
// (to avoid RCU deadlocks, Section 3), so a grace period does not protect an
// updater that still holds a pointer obtained from `get` — it may lock a
// node that has already been unlinked, waited out and reclaimed.
//
// The classic systems answer (Fraser's PhD; K42; SLAB_TYPESAFE_BY_RCU in
// Linux) is *type-stable memory*: node slots are only ever recycled as
// nodes and are returned to the OS exclusively at pool destruction. Locking
// a recycled slot is then memory-safe, and a *generation counter* bumped on
// every reuse lets the updater's validation detect that the slot no longer
// means what it meant during the search. The Citrus tree pairs this pool
// with generation checks in `validate` (see citrus_tree.hpp).
//
// Lifecycle of a slot:
//   allocate(): pop from a sharded free list (or carve from a slab), take
//     the slot's lock, bump `generation`, construct the key/value payload,
//     clear `marked`, release the lock (or hand it over still locked, for
//     delete's replacement copy which must be published locked).
//   recycle(): destroy the payload and push onto a free list. Callers must
//     guarantee a grace period has elapsed since the node was unlinked
//     (readers), and `marked` must still be true (it is — nodes are marked
//     before unlinking and `marked` is only cleared by allocate(), under
//     the slot lock), so a late updater that locks the slot between
//     recycle() and reuse still fails validation on the marked bit.
//
// The free lists and slab list are sharded/guarded by spinlocks; allocation
// is not the bottleneck of any workload in the paper (the evaluation
// pre-fills the tree and runs a uniform mix), but sharding avoids turning
// the pool into a synchronization point the way a global malloc lock would
// (the paper used jemalloc for the same reason).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "sync/cache.hpp"
#include "sync/spinlock.hpp"

namespace citrus::core {

// Node must provide:
//   void construct_payload(Args...);   // placement-init key/value/links
//   void destroy_payload();            // destroy key/value
//   void scrub_links(Node* poison);    // clear child/tag fields on recycle
//   LockType lock;                     // stable across reuse
//   std::atomic<std::uint64_t> generation;
//   std::atomic<bool> marked;
//   Node* pool_next;                   // free-list linkage (dead slots only)
template <typename Node>
class NodePool {
 public:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kSlabNodes = 512;

  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // All outstanding nodes must have been recycled or had destroy_payload()
  // called by the owner (the tree destructor walks its reachable nodes).
  ~NodePool() {
    for (void* slab : slabs_) {
      ::operator delete(slab, std::align_val_t{alignof(Node)});
    }
  }

  // Returns a node whose header (lock/generation/marked) is live and whose
  // payload has been constructed with `args`. If `keep_locked`, the node's
  // lock is held by the caller on return.
  //
  // Failure channel: returns nullptr — with no lock held and no state
  // changed — when the pool cannot produce a node: injected OOM
  // (fault::Site::kAllocFailure), the configured capacity cap (set_max_live)
  // with an empty free list, or the underlying ::operator new throwing.
  // Callers (citrus_tree.hpp update paths) must treat nullptr as a clean
  // kNoMemory failure of the operation, never as fatal.
  template <typename... Args>
  Node* allocate(bool keep_locked, Args&&... args) {
    if (fault::inject_fail(fault::Site::kAllocFailure)) return nullptr;
    Node* n = pop_free();
    const bool from_free_list = n != nullptr;
    if (n == nullptr) {
      const std::int64_t cap = max_live_.load(std::memory_order_relaxed);
      if (cap > 0 && live_.load(std::memory_order_relaxed) >= cap) {
        return nullptr;  // exhausted: at capacity and nothing recyclable
      }
      n = carve();
      if (n == nullptr) return nullptr;  // the allocator itself failed
      new (n) Node();  // header constructed exactly once per slot
    }
    // rcucheck: verify the free-list canary survived and stamp the slot
    // live *before* publication is possible (no-op in unchecked builds).
    check::on_pool_allocate(n, from_free_list);
    // Re-initialization happens under the slot lock so that a stale updater
    // that managed to lock this slot cannot observe a half-built payload
    // after passing validation: it either holds the lock before us (and
    // fails validation on marked/generation, since allocate is the only
    // place marked is cleared) or locks after us and sees the new
    // generation.
    n->lock.lock();
    n->generation.fetch_add(1, std::memory_order_release);
    n->construct_payload(std::forward<Args>(args)...);
    n->marked.store(false, std::memory_order_release);
    if (!keep_locked) n->lock.unlock();
    live_.fetch_add(1, std::memory_order_relaxed);
    return n;
  }

  // Returns a node's slot to the pool. Precondition: a grace period has
  // elapsed since the node became unreachable, and marked == true.
  void recycle(Node* n) {
    // rcucheck (d): an unmarked node was never unlinked — reclaiming it
    // hands readers a dangling pointer. (e): a free canary here means a
    // double recycle. In unchecked builds the protocol is asserted only.
    if constexpr (check::kEnabled) {
      check::on_retire(n, n->marked.load(std::memory_order_relaxed));
      check::on_pool_recycle(n);
    } else {
      assert(n->marked.load(std::memory_order_relaxed) &&
             "recycling a node that was never marked for deletion");
    }
    n->destroy_payload();
    // Scrub the link fields so a free-list node can never be mistaken for
    // a live interior node: a straggling updater validating against this
    // slot must see children that match no live node (nullptr, or the
    // rcucheck poison pattern so a checked traversal faults loudly).
    n->scrub_links(check::kEnabled
                       ? static_cast<Node*>(check::poison_pointer())
                       : nullptr);
    live_.fetch_sub(1, std::memory_order_relaxed);
    Shard& s = shard();
    std::lock_guard<sync::SpinLock> g(s.lock);
    n->pool_next = s.free;
    s.free = n;
  }

  // Payload teardown for nodes destroyed with the structure (reachable at
  // destruction time); the slot memory is released with the slabs.
  void destroy_with_pool(Node* n) {
    n->destroy_payload();
    live_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Nodes whose payload is currently alive. Exact only at quiescence.
  std::int64_t live() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }

  std::size_t slab_count() const {
    std::lock_guard<sync::SpinLock> g(slab_lock_);
    return slabs_.size();
  }

  // Capacity cap: with n > 0, allocate() fails (returns nullptr) instead
  // of carving a new slot once `live() >= n` and the free lists are empty.
  // 0 (the default) = unbounded, the historic behavior. The cap bounds
  // *payload-live* nodes, not slab memory: recycled slots are always
  // reusable, so a tree under the cap keeps churning — only net growth
  // fails. Used to exercise real pool exhaustion without injection.
  void set_max_live(std::int64_t n) noexcept {
    max_live_.store(n, std::memory_order_relaxed);
  }
  std::int64_t max_live() const noexcept {
    return max_live_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(sync::kDestructiveInterference) Shard {
    sync::SpinLock lock;
    Node* free = nullptr;
  };

  Shard& shard() {
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[h % kShards];
  }

  Node* pop_free() {
    // Try own shard first, then steal from the others.
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    for (std::size_t i = 0; i < kShards; ++i) {
      Shard& s = shards_[(h + i) % kShards];
      std::lock_guard<sync::SpinLock> g(s.lock);
      if (s.free != nullptr) {
        Node* n = s.free;
        s.free = n->pool_next;
        return n;
      }
    }
    return nullptr;
  }

  // Returns nullptr (instead of propagating bad_alloc) when the system
  // allocator fails: the tree degrades to a clean per-operation failure
  // rather than unwinding through noexcept update paths.
  Node* carve() {
    std::lock_guard<sync::SpinLock> g(slab_lock_);
    if (bump_ == 0 || bump_ == kSlabNodes) {
      void* slab = ::operator new(sizeof(Node) * kSlabNodes,
                                  std::align_val_t{alignof(Node)},
                                  std::nothrow);
      if (slab == nullptr) return nullptr;
      slabs_.push_back(slab);
      bump_ = 0;
    }
    auto* base = static_cast<Node*>(slabs_.back());
    return base + bump_++;
  }

  Shard shards_[kShards];
  mutable sync::SpinLock slab_lock_;
  std::vector<void*> slabs_;
  std::size_t bump_ = 0;
  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> max_live_{0};  // 0 = unbounded (set_max_live)
};

}  // namespace citrus::core
