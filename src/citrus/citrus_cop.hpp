// CITRUS-COP — an optimistic copy-validate-publish update protocol layered
// over the Citrus tree (DESIGN.md §8).
//
// The paper's updaters pessimistically lock first and allocate/publish
// second; under update-heavy contention the node locks are held across the
// allocator and the retry loop convoys on them. This protocol inverts the
// order, following the RCU-HTM recipe (Siakavaras et al., PACT'17 lineage;
// see PAPERS.md): run the same wait-free `get`, build a PRIVATE copy of the
// affected neighborhood from the node pool while holding nothing, then
// validate-and-publish with one release-ordered pointer swing —
//
//   * HTM fast path: a hardware transaction subscribes the neighborhood's
//     lock words (SpinLock::is_locked puts them in the read-set, so any
//     lock-based updater aborts us instead of racing us), re-runs
//     validate_link, swings the one parent->child pointer and commits.
//     Entirely lock-free when it commits; bounded retries
//     (util/htm.hpp::run_transactions), then the software path.
//   * Software path: the paper's validate-under-lock, but with the
//     allocation hoisted out of the critical section — the locks now cover
//     only validate + one store, which is what shrinks the contention
//     window on machines without (working) TSX.
//
// Private copies that lose (key already present, validation failed) are
// returned to the pool immediately: they were never published, so no
// reader can hold them and no grace period is owed. Replaced nodes retire
// through the base tree's deferred grace-period machinery, unchanged.
//
// What deliberately stays out of the transaction:
//   * The two-child erase: it awaits a grace period mid-protocol (paper
//     Line 74) — unboundedly transaction-hostile — so it always runs the
//     software protocol (still with the successor's copy built before the
//     locks are taken).
//   * size_ and the stats counters: shared cache lines touched after the
//     commit, so concurrent updates do not conflict on bookkeeping.
//   * rcucheck builds: the check hooks write global state (canaries,
//     held-lock sets) that would both abort transactions and be torn by
//     them; with check::kEnabled the HTM gate is closed at compile time
//     and every operation takes the (fully checked) software path.
//
// Fault site: fault::Site::kTxAbort fires at the head of each operation's
// transactional window; every fired occurrence consumes one unit of the
// bounded retry budget and counts as one simulated HTM abort, so an abort
// storm degrades to the software path after exactly tx_retries() aborts —
// by construction there is no retry livelock, with or without hardware.
#pragma once

#include <cassert>
#include <cstdint>
#include <new>
#include <utility>

#include "check/check.hpp"
#include "citrus/citrus_node.hpp"
#include "citrus/citrus_traverse.hpp"
#include "citrus/citrus_tree.hpp"
#include "citrus/update_status.hpp"
#include "fault/fault.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/rcu.hpp"
#include "util/htm.hpp"

namespace citrus::core {

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = DefaultTraits>
class CitrusCopTree : public CitrusTree<Key, Value, Rcu, Traits> {
  using Base = CitrusTree<Key, Value, Rcu, Traits>;
  using typename Base::GetResult;
  using typename Base::Lock;
  using typename Base::LockSet;
  using typename Base::MaybeReadGuard;
  using typename Base::Node;
  using Base::bump;
  using Base::bump_n;
  using Base::erase_single_child;
  using Base::get;
  using Base::increment_tag;
  using Base::pause;
  using Base::pool_;
  using Base::rcu_;
  using Base::retire;
  using Base::size_;
  using Base::validate;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using rcu_type = Rcu;

  explicit CitrusCopTree(Rcu& domain) : Base(domain) {}

  // The HTM fast path exists only when the node lock can be subscribed
  // (SpinLock exposes its lock word; std::mutex cannot).
  static constexpr bool kLockSubscribable =
      requires(const Lock& l) { { l.is_locked() } -> std::convertible_to<bool>; };

  // All three gates of util/htm.hpp plus the protocol-level ones above.
  static bool htm_enabled() noexcept {
    if constexpr (!util::htm::kCompiled || check::kEnabled ||
                  !kLockSubscribable) {
      return false;
    } else {
      return util::htm::available();
    }
  }

  // Per-operation transactional attempt budget (Traits override hook).
  static constexpr unsigned tx_retries() noexcept {
    if constexpr (requires { Traits::kTxRetries; }) {
      return Traits::kTxRetries;
    } else {
      return util::htm::kDefaultTxRetries;
    }
  }

 private:
  // Lock subscription that still compiles for non-subscribable locks (the
  // transaction bodies are dead code then — htm_enabled() is false — but
  // they are part of an instantiated function).
  static bool subscribed_locked(const Node* n) noexcept {
    if constexpr (kLockSubscribable) {
      return n->lock.is_locked();
    } else {
      return false;
    }
  }

 public:

  // ── Update side (shadows the base protocol; the read side and the
  //    ordered operations are inherited unchanged) ────────────────────
  //
  // The base class dispatches its bool wrappers to its own try_* forms
  // non-virtually, so the wrappers are shadowed here as well.

  bool insert(const Key& key, const Value& value) {
    return try_insert(key, value) == UpdateStatus::kSuccess;
  }
  bool erase(const Key& key) {
    return try_erase(key) == UpdateStatus::kSuccess;
  }
  bool assign(const Key& key, const Value& value) {
    return try_assign(key, value) == UpdateStatus::kSuccess;
  }
  bool insert_or_assign(const Key& key, const Value& value) {
    for (;;) {
      switch (try_insert(key, value)) {
        case UpdateStatus::kSuccess:
          return true;
        case UpdateStatus::kNoMemory:
          return false;
        case UpdateStatus::kNoOp:
          break;
      }
      switch (try_assign(key, value)) {
        case UpdateStatus::kSuccess:
        case UpdateStatus::kNoMemory:
          return false;
        case UpdateStatus::kNoOp:
          break;  // the key vanished between the two calls; start over
      }
    }
  }

  // Optimistic insert: the leaf is built before anything is examined —
  // the kNoMemory unwind therefore cannot have touched the tree at all.
  UpdateStatus try_insert(const Key& key, const Value& value) {
    Node* leaf = pool_.allocate(false, NodeKind::kReal, &key, &value,
                                nullptr, nullptr);
    if (leaf == nullptr) return UpdateStatus::kNoMemory;
    pause(PausePoint::kCopAfterCopy);
    for (;;) {
      GetResult g = get(key);
      if (g.curr != nullptr) {
        discard_copy(leaf);
        return UpdateStatus::kNoOp;  // key found; the copy was never needed
      }

      switch (tx_attempt([&]() CITRUS_COP_TX_BODY {
        if (subscribed_locked(g.prev)) util::htm::tx_abort_lock_held();
        if (!validate_link<Node>(g.prev, g.prev_gen, g.tag, nullptr, 0,
                                 g.direction)) {
          util::htm::tx_abort_validation();
        }
        g.prev->child[g.direction].publish(leaf);
        // The transaction is atomic to every other thread, so the seqlock
        // takes one even step — no observable odd intermediate.
        g.prev->version.fetch_add(2, std::memory_order_release);
      })) {
        case util::htm::TxResult::kCommitted:
          size_.fetch_add(1, std::memory_order_relaxed);
          bump(&CitrusStats::cop_commits);
          return UpdateStatus::kSuccess;
        case util::htm::TxResult::kValidationAbort:
          continue;  // stale snapshot: re-traverse
        case util::htm::TxResult::kFallback:
          break;
      }

      // Software path: the paper's lock+validate, allocation already done.
      bump(&CitrusStats::cop_fallbacks);
      LockSet locks;
      if (!locks.acquire_timed(g.prev)) {
        bump(&CitrusStats::lock_timeouts);
        continue;
      }
      if (!validate(g.prev, g.prev_gen, g.tag, nullptr, 0, g.direction)) {
        bump(&CitrusStats::cop_validation_failures);
        continue;  // LockSet releases on scope exit
      }
      g.prev->scan_write_begin();
      // The single-pointer publish, as a release CAS: under the lock the
      // validated slot can only hold nullptr, so the CAS never loses —
      // only weak-CAS spurious failure loops here.
      Node* expected = nullptr;
      while (!g.prev->child[g.direction].compare_exchange_weak(expected,
                                                               leaf) &&
             expected == nullptr) {
      }
      assert(expected == nullptr && "validated empty slot changed under lock");
      g.prev->scan_write_end();
      locks.release_all();
      size_.fetch_add(1, std::memory_order_relaxed);
      bump(&CitrusStats::cop_commits);
      return UpdateStatus::kSuccess;
    }
  }

  // Optimistic assign: the replacement is built once, before any lock;
  // only its child links (readable solely under curr's lock or in-tx) are
  // filled in at publish time. Values are immutable per node (the base
  // class invariant), so assignment is node replacement here too.
  UpdateStatus try_assign(const Key& key, const Value& value) {
    Node* copy = nullptr;
    for (;;) {
      GetResult g = get(key);
      if (g.curr == nullptr) {
        if (copy != nullptr) discard_copy(copy);
        return UpdateStatus::kNoOp;  // key not found
      }
      if (copy == nullptr) {
        copy = pool_.allocate(false, NodeKind::kReal, &key, &value, nullptr,
                              nullptr);
        if (copy == nullptr) return UpdateStatus::kNoMemory;
        pause(PausePoint::kCopAfterCopy);
      }

      switch (tx_attempt([&]() CITRUS_COP_TX_BODY {
        if (subscribed_locked(g.prev) || subscribed_locked(g.curr)) {
          util::htm::tx_abort_lock_held();
        }
        if (!validate_link<Node>(g.prev, g.prev_gen, 0, g.curr, g.curr_gen,
                                 g.direction)) {
          util::htm::tx_abort_validation();
        }
        // The copy is private until the publish below; storing into it
        // needs no ordering of its own (the publish is the release).
        // rcu-analyze: allow (pre-publication construction of the private
        // copy inside the transaction; the publish below is the release)
        copy->child[kLeft].unguarded_store(g.curr->child[kLeft].load_locked());
        copy->child[kRight].unguarded_store(
            g.curr->child[kRight].load_locked());
        g.curr->marked.store(true, std::memory_order_release);
        g.prev->child[g.direction].publish(copy);
        g.prev->version.fetch_add(2, std::memory_order_release);
      })) {
        case util::htm::TxResult::kCommitted:
          bump(&CitrusStats::cop_commits);
          retire(g.curr);
          return UpdateStatus::kSuccess;
        case util::htm::TxResult::kValidationAbort:
          continue;
        case util::htm::TxResult::kFallback:
          break;
      }

      bump(&CitrusStats::cop_fallbacks);
      LockSet locks;
      if (!locks.acquire_timed(g.prev) || !locks.acquire_timed(g.curr)) {
        bump(&CitrusStats::lock_timeouts);
        continue;
      }
      if (!validate(g.prev, g.prev_gen, 0, g.curr, g.curr_gen, g.direction)) {
        bump(&CitrusStats::cop_validation_failures);
        continue;  // keep the copy: key/value are still right for a retry
      }
      check::on_node_access(g.curr);  // locked + validated: live
      // rcu-analyze: allow (pre-publication construction of the private
      // copy under curr's lock; the publish below is the release)
      copy->child[kLeft].unguarded_store(g.curr->child[kLeft].load_locked());
      copy->child[kRight].unguarded_store(g.curr->child[kRight].load_locked());
      g.curr->marked.store(true, std::memory_order_release);
      g.prev->scan_write_begin();
      g.prev->child[g.direction].publish(copy);
      g.prev->scan_write_end();
      locks.release_all();
      bump(&CitrusStats::cop_commits);
      retire(g.curr);
      return UpdateStatus::kSuccess;
    }
  }

  // Optimistic erase. The single-child case is one pointer swing and takes
  // the transactional window; the two-child case awaits a grace period
  // mid-protocol and therefore always runs the software protocol — with
  // the successor's replacement copy built before any lock is taken.
  UpdateStatus try_erase(const Key& key) {
    for (;;) {
      GetResult g = get(key);
      if (g.curr == nullptr) return UpdateStatus::kNoOp;  // key not found
      pause(PausePoint::kEraseAfterGet);

      // Classify the victim (one child vs two) without locks. Inside a
      // fresh read-side section a node that still carries the searched
      // generation and is unmarked cannot be recycled while the section
      // stays open, so its child slots are safe to *load* (the hints are
      // re-established under locks / in-tx before anything is trusted).
      Node* left_hint = nullptr;
      Node* right_hint = nullptr;
      {
        MaybeReadGuard guard(rcu_);
        check::on_node_header_access(g.curr);
        if (g.curr->generation.load(std::memory_order_acquire) !=
                g.curr_gen ||
            g.curr->marked.load(std::memory_order_acquire)) {
          bump(&CitrusStats::erase_retries);
          continue;  // the victim moved on since the search
        }
        // rcu-analyze: allow (classification hints only — never
        // dereferenced; the protocol re-reads the children under locks
        // or inside the transaction before trusting them)
        left_hint = g.curr->child[kLeft].load_protected().escape();
        right_hint = g.curr->child[kRight].load_protected().escape();
      }

      if (left_hint == nullptr || right_hint == nullptr) {
        switch (erase_one_child_cop(g)) {
          case OneChild::kDone:
            return UpdateStatus::kSuccess;
          case OneChild::kRetry:
            break;
        }
      } else {
        switch (erase_two_children_cop(g)) {
          case TwoChildCop::kDone:
            return UpdateStatus::kSuccess;
          case TwoChildCop::kNoMemory:
            return UpdateStatus::kNoMemory;
          case TwoChildCop::kRetry:
            break;
        }
      }
    }
  }

 private:
  enum class OneChild { kDone, kRetry };
  enum class TwoChildCop { kDone, kRetry, kNoMemory };

  // Mark-and-bypass of a victim with at most one child: HTM window first,
  // then lock+validate. kRetry covers every failed validation and the
  // victim growing a second child (the caller re-classifies).
  OneChild erase_one_child_cop(const GetResult& g) {
    switch (tx_attempt([&]() CITRUS_COP_TX_BODY {
      if (subscribed_locked(g.prev) || subscribed_locked(g.curr)) {
        util::htm::tx_abort_lock_held();
      }
      if (!validate_link<Node>(g.prev, g.prev_gen, 0, g.curr, g.curr_gen,
                               g.direction)) {
        util::htm::tx_abort_validation();
      }
      Node* left = g.curr->child[kLeft].load_locked();
      Node* right = g.curr->child[kRight].load_locked();
      if (left != nullptr && right != nullptr) {
        util::htm::tx_abort_validation();  // grew a child: re-classify
      }
      g.curr->marked.store(true, std::memory_order_release);
      Node* child = left != nullptr ? left : right;
      g.prev->child[g.direction].publish(child);
      if (child == nullptr) {
        g.prev->tag[g.direction].fetch_add(1, std::memory_order_release);
      }
      g.prev->version.fetch_add(2, std::memory_order_release);
    })) {
      case util::htm::TxResult::kCommitted:
        size_.fetch_sub(1, std::memory_order_relaxed);
        bump(&CitrusStats::cop_commits);
        retire(g.curr);
        return OneChild::kDone;
      case util::htm::TxResult::kValidationAbort:
        return OneChild::kRetry;
      case util::htm::TxResult::kFallback:
        break;
    }

    bump(&CitrusStats::cop_fallbacks);
    LockSet locks;
    if (!locks.acquire_timed(g.prev) || !locks.acquire_timed(g.curr)) {
      bump(&CitrusStats::lock_timeouts);
      return OneChild::kRetry;
    }
    if (!validate(g.prev, g.prev_gen, 0, g.curr, g.curr_gen, g.direction)) {
      bump(&CitrusStats::cop_validation_failures);
      return OneChild::kRetry;
    }
    check::on_node_access(g.curr);  // locked + validated: live
    Node* left = g.curr->child[kLeft].load_locked();
    Node* right = g.curr->child[kRight].load_locked();
    if (left != nullptr && right != nullptr) {
      bump(&CitrusStats::erase_retries);
      return OneChild::kRetry;  // re-classify as two-child
    }
    erase_single_child(g, left, right);
    locks.release_all();
    bump(&CitrusStats::cop_commits);
    retire(g.curr);
    return OneChild::kDone;
  }

  // Two-child erase, cop style: walk to the successor and copy its
  // key/value inside a read-side section (a generation-verified node
  // cannot be recycled while the section is open, and generations are
  // re-validated under the locks before the copy is trusted), build the
  // replacement from the pool BEFORE locking, then run the paper's
  // lock/validate/publish/grace/unlink sequence (Lines 57-83).
  TwoChildCop erase_two_children_cop(const GetResult& g) {
    Node* prev_succ;
    Node* succ;
    std::uint64_t succ_gen, prev_succ_gen, succ_left_tag;
    alignas(Key) unsigned char skey_buf[sizeof(Key)];
    alignas(Value) unsigned char sval_buf[sizeof(Value)];
    {
      MaybeReadGuard guard(rcu_);
      check::on_node_header_access(g.curr);
      if (g.curr->generation.load(std::memory_order_acquire) != g.curr_gen ||
          g.curr->marked.load(std::memory_order_acquire)) {
        bump(&CitrusStats::erase_retries);
        return TwoChildCop::kRetry;
      }
      // Generation verified inside this open section: the victim's links
      // are live, so the leftmost walk of its right subtree stays on live
      // nodes for as long as the section lasts.
      rcu::protected_ptr<Node> ps(g.curr);
      rcu::protected_ptr<Node> s = g.curr->child[kRight].load_protected();
      if (s == nullptr) {
        bump(&CitrusStats::erase_retries);
        return TwoChildCop::kRetry;  // no longer two-child: re-classify
      }
      check::on_node_access(s.get());
      rcu::protected_ptr<Node> next = s->child[kLeft].load_protected();
      while (next != nullptr) {
        ps = s;
        s = next;
        check::on_node_access(s.get());
        next = next->child[kLeft].load_protected();
      }
      succ_gen = s->generation.load(std::memory_order_acquire);
      prev_succ_gen = ps->generation.load(std::memory_order_acquire);
      succ_left_tag = s->tag[kLeft].load(std::memory_order_acquire);
      // Copy the successor's payload while the section still protects it;
      // the lock-phase generation checks below prove the payload was not
      // rebuilt between this copy and the publish that uses it.
      new (skey_buf) Key(s->key());
      new (sval_buf) Value(s->value());
      // rcu-analyze: allow (generation-validated handoff to the locking
      // phase, as in get(); stale escapees always fail validate)
      prev_succ = ps.escape();
      succ = s.escape();
    }
    const Key& skey = *std::launder(reinterpret_cast<Key*>(skey_buf));
    const Value& sval = *std::launder(reinterpret_cast<Value*>(sval_buf));
    struct PayloadGuard {  // the stack copies always die with this frame
      const Key& k;
      const Value& v;
      ~PayloadGuard() {
        k.~Key();
        v.~Value();
      }
    } payload_guard{skey, sval};

    // The replacement, built from the pool before any lock is taken (born
    // locked: it is published mid-protocol and must stay immutable to
    // other updaters until the successor is unlinked).
    Node* replacement =
        pool_.allocate(true, NodeKind::kReal, &skey, &sval, nullptr, nullptr);
    if (replacement == nullptr) return TwoChildCop::kNoMemory;

    LockSet locks;
    locks.adopt(replacement);
    const auto abandon = [&]() {
      locks.release_all();
      discard_copy(replacement);
    };

    if (!locks.acquire_timed(g.prev) || !locks.acquire_timed(g.curr)) {
      bump(&CitrusStats::lock_timeouts);
      abandon();
      return TwoChildCop::kRetry;
    }
    if (!validate(g.prev, g.prev_gen, 0, g.curr, g.curr_gen, g.direction)) {
      bump(&CitrusStats::cop_validation_failures);
      abandon();
      return TwoChildCop::kRetry;
    }
    check::on_node_access(g.curr);  // locked + validated: live
    Node* left = g.curr->child[kLeft].load_locked();
    Node* right = g.curr->child[kRight].load_locked();
    if (left == nullptr || right == nullptr) {
      bump(&CitrusStats::erase_retries);
      abandon();
      return TwoChildCop::kRetry;  // no longer two-child: re-classify
    }
    const int succ_direction = prev_succ == g.curr ? kRight : kLeft;
    if (prev_succ != g.curr) {  // do not lock twice (paper Line 66)
      if (!locks.acquire_timed(prev_succ)) {
        bump(&CitrusStats::lock_timeouts);
        abandon();
        return TwoChildCop::kRetry;
      }
    }
    if (!locks.acquire_timed(succ)) {
      bump(&CitrusStats::lock_timeouts);
      abandon();
      return TwoChildCop::kRetry;
    }
    if (!validate(prev_succ, prev_succ_gen, 0, succ, succ_gen,
                  succ_direction) ||
        !validate(succ, succ_gen, succ_left_tag, nullptr, 0, kLeft)) {
      bump(&CitrusStats::cop_validation_failures);
      abandon();
      return TwoChildCop::kRetry;
    }
    // succ's generation is unchanged under its lock, so the payload copied
    // in the read section above is exactly succ's payload — the
    // replacement's key/value are valid. Its children (read under curr's
    // lock, so stable) are filled in now, pre-publication.
    // rcu-analyze: allow (pre-publication construction of the private
    // replacement under the held locks; the publish below is the release)
    replacement->child[kLeft].unguarded_store(left);
    replacement->child[kRight].unguarded_store(right);

    g.curr->marked.store(true, std::memory_order_release);  // Line 72
    g.prev->scan_write_begin();
    g.prev->child[g.direction].publish(replacement);  // Line 73
    g.prev->scan_write_end();
    pause(PausePoint::kAfterReplacementPublish);

    {
      // Same rcucheck blessing as the base protocol: readers acquire no
      // locks, so awaiting a grace period under node locks cannot deadlock.
      check::AllowSyncWithHeldLocks blessed;
      rcu_.synchronize();  // Line 74: wait for readers
    }
    pause(PausePoint::kBeforeSuccessorUnlink);

    succ->marked.store(true, std::memory_order_release);  // Line 75
    Node* succ_right = succ->child[kRight].load_locked();
    if (prev_succ == g.curr) {
      replacement->scan_write_begin();
      replacement->child[kRight].publish(succ_right);
      replacement->scan_write_end();
      increment_tag(replacement, kRight);
    } else {
      prev_succ->scan_write_begin();
      prev_succ->child[kLeft].publish(succ_right);
      prev_succ->scan_write_end();
      increment_tag(prev_succ, kLeft);
    }
    size_.fetch_sub(1, std::memory_order_relaxed);
    bump(&CitrusStats::two_child_erases);
    bump(&CitrusStats::cop_commits);
    locks.release_all();
    retire(g.curr);
    retire(succ);
    return TwoChildCop::kDone;
  }

  // One bounded transactional attempt window: drain any injected abort
  // storm first (each simulated abort consumes budget, exactly like a real
  // one), then run the hardware transaction if every gate is open. Returns
  // kFallback when no hardware path exists — the common case, and the
  // reason every caller has a complete software protocol behind it.
  template <typename Body>
  util::htm::TxResult tx_attempt(Body&& body) {
    unsigned budget = tx_retries();
    while (budget > 0 && fault::inject_fail(fault::Site::kTxAbort)) {
      --budget;
      bump(&CitrusStats::cop_aborts_htm);
    }
    if (budget == 0 || !htm_enabled()) return util::htm::TxResult::kFallback;
    unsigned aborts = 0;
    const util::htm::TxResult r =
        util::htm::run_transactions(budget, &aborts, std::forward<Body>(body));
    if (aborts > 0) bump_n(&CitrusStats::cop_aborts_htm, aborts);
    return r;
  }

  // Return a never-published private copy to the pool. No reader can hold
  // it (it was never reachable), so no grace period is owed; the marked
  // store satisfies recycle()'s unlink protocol. The caller must have
  // released the node's lock if it was allocated keep_locked.
  void discard_copy(Node* n) {
    n->marked.store(true, std::memory_order_relaxed);
    pool_.recycle(n);
  }
};

}  // namespace citrus::core
