// Structured result of a dictionary update — the `expected`-style channel
// that distinguishes "the operation was a semantic no-op" (insert of a
// present key, erase of an absent one) from "the operation could not run
// because the node pool failed to produce a node" (injected OOM, capacity
// cap, or allocator failure; see node_pool.hpp).
//
// The distinction matters for correctness tooling: a kNoOp insert that
// returns false *asserts the key was present* and the linearizability
// checker will hold the history to that; a kNoMemory failure asserts
// nothing — it is a legal no-op at any point in time (the checker's
// `noop` events, lineariz/history.hpp). Collapsing both onto `false`
// would make an OOM failure indistinguishable from a membership claim.
//
// The legacy bool APIs (insert/erase returning "did it change the set")
// remain and map kSuccess -> true, kNoOp/kNoMemory -> false; callers that
// can encounter memory failure (fault builds, capped pools) should use
// the try_* forms and branch on the status.
#pragma once

#include <cstdint>

namespace citrus::core {

enum class UpdateStatus : std::uint8_t {
  kSuccess = 0,   // the operation ran and changed the set
  kNoOp = 1,      // semantic no-op: insert(present) / erase(absent)
  kNoMemory = 2,  // node pool exhausted or allocation failed; no change
};

inline const char* to_string(UpdateStatus s) noexcept {
  switch (s) {
    case UpdateStatus::kSuccess:
      return "success";
    case UpdateStatus::kNoOp:
      return "no-op";
    case UpdateStatus::kNoMemory:
      return "no-memory";
  }
  return "unknown";
}

}  // namespace citrus::core
