// Node layout for the Citrus tree.
//
// Per the paper (Section 3): each node stores a key (immutable), a value,
// two child pointers, two per-direction ABA *tags* ("a tag field is
// initialized to zero, and incremented every time the corresponding child
// field is set to ⊥"), a `marked` bit ("indicating that the node was
// deleted, in a manner similar to [the lazy list]"), and a lock.
//
// Beyond the paper, a node carries:
//   * `kind` — sentinel discrimination. The paper uses dummy keys −1 and ∞;
//     a generic C++ dictionary cannot steal key values, so the two dummies
//     (root with key −∞ and its right child with key +∞) are expressed as
//     node kinds that compare below/above every real key.
//   * `generation` — reuse counter for the type-stable pool (node_pool.hpp),
//     checked by `validate` so that an updater holding a stale pointer from
//     before a reclamation cycle always restarts.
//
// Field order follows the evaluation section's observation that node layout
// dominates performance: the search-hot fields (kind, key, children) share
// the first cache line; the update-only fields (lock, tags, marked,
// generation) come after.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

#include "check/check.hpp"
#include "rcu/guarded_ptr.hpp"

namespace citrus::core {

enum class NodeKind : std::uint8_t {
  kMinusInf = 0,  // the root sentinel; every key is greater
  kPlusInf = 1,   // the root's right child; every key is smaller
  kReal = 2,
};

enum Direction : int { kLeft = 0, kRight = 1 };

template <typename Key, typename Value, typename Lock>
struct CitrusNode {
  using KeyType = Key;
  using ValueType = Value;

  // ---- search-hot ----
  // RCU-guarded child links: the only mutable pointer state readers
  // traverse without locks, so the only deref-able access is through the
  // typed wrapper API (rcu/guarded_ptr.hpp) — load_protected() inside a
  // read-side critical section, load_locked() under this node's lock,
  // publish() for the release-ordered pointer swings of the update side.
  rcu::guarded_ptr<CitrusNode> child[2];
  NodeKind kind = NodeKind::kReal;

  // ---- update-side ----
  std::atomic<bool> marked{false};
  std::atomic<std::uint64_t> tag[2] = {0, 0};
  std::atomic<std::uint64_t> generation{0};
  // Seqlock word for the validated scans of citrus_tree.hpp: a writer
  // holding this node's lock bumps it to odd immediately before a child
  // pointer store that changes the published structure, and back to even
  // immediately after. A scanner that reads the same even value before its
  // child loads and at its final validation fence knows no structural
  // change to this node overlapped the scan. Deliberately never reset by
  // construct_payload/scrub_links: the counter must stay monotonic across
  // pool recycling so a recorded (node, version) pair can never be
  // revalidated against a later incarnation of the slot.
  std::atomic<std::uint64_t> version{0};
  Lock lock;

  // ---- pool plumbing ----
  CitrusNode* pool_next = nullptr;

#if CITRUS_RCU_CHECK
  // Lifetime canary for the rcucheck use-after-reclaim detector: kLiveCanary
  // while allocated, kFreeCanary while on a free list (check/check.hpp).
  // Exists only in checked builds; the unchecked node layout is untouched.
  std::uint64_t check_canary = 0;
#endif

  // Payload storage; constructed/destroyed per pool lifetime so the node
  // header (lock, generation, marked) stays type-stable across reuse.
  alignas(Key) unsigned char key_buf[sizeof(Key)];
  alignas(Value) unsigned char value_buf[sizeof(Value)];

  CitrusNode() = default;
  CitrusNode(const CitrusNode&) = delete;
  CitrusNode& operator=(const CitrusNode&) = delete;

  const Key& key() const noexcept {
    return *std::launder(reinterpret_cast<const Key*>(key_buf));
  }
  const Value& value() const noexcept {
    return *std::launder(reinterpret_cast<const Value*>(value_buf));
  }

  // Pool hook: (re)build this slot as a live node.
  // rcu-analyze: quiescent (slot held under its own lock, pre-publication:
  // no reader can reach these links until the allocating updater's later
  // release-ordered publish, which also orders these relaxed stores)
  void construct_payload(NodeKind k, const Key* key, const Value* value,
                         CitrusNode* left, CitrusNode* right) {
    kind = k;
    if (k == NodeKind::kReal) {
      new (key_buf) Key(*key);
      new (value_buf) Value(*value);
    }
    child[kLeft].unguarded_store(left);
    child[kRight].unguarded_store(right);
    tag[kLeft].store(0, std::memory_order_relaxed);
    tag[kRight].store(0, std::memory_order_relaxed);
  }

  // Pool hook: tear down the payload (slot stays alive for reuse).
  void destroy_payload() {
    if (kind == NodeKind::kReal) {
      key().~Key();
      value().~Value();
    }
  }

  // Pool hook: clear the link fields of a slot headed for the free list,
  // so a recycled node can never be mistaken for a live interior node by a
  // straggler still holding its address. `poison` is nullptr in unchecked
  // builds and the rcucheck poison pattern in checked ones (where the
  // payload bytes are additionally poisoned to trip the canary/ASan on any
  // read of reclaimed data).
  // rcu-analyze: quiescent (called only after a grace period made the slot
  // unreachable; the relaxed stores are ordered before any reuse by the
  // free-list publication in NodePool::recycle)
  void scrub_links(CitrusNode* poison) {
    child[kLeft].unguarded_store(poison);
    child[kRight].unguarded_store(poison);
    tag[kLeft].store(0, std::memory_order_relaxed);
    tag[kRight].store(0, std::memory_order_relaxed);
#if CITRUS_RCU_CHECK
    std::memset(key_buf, check::kPoisonByte, sizeof(key_buf));
    std::memset(value_buf, check::kPoisonByte, sizeof(value_buf));
#endif
  }

  // Seqlock write section around one published child-pointer store; the
  // caller must hold this node's lock. The acq_rel bump on entry keeps the
  // protected store from moving above it; the release bump on exit keeps
  // it from moving below.
  void scan_write_begin() noexcept {
    version.fetch_add(1, std::memory_order_acq_rel);  // even -> odd
  }
  void scan_write_end() noexcept {
    version.fetch_add(1, std::memory_order_release);  // odd -> even
  }

  // Three-way comparison of a search key against this node, treating the
  // sentinels as -inf / +inf. Only requires operator< on Key.
  int compare(const Key& k) const noexcept {
    switch (kind) {
      case NodeKind::kMinusInf:
        return +1;  // k > node
      case NodeKind::kPlusInf:
        return -1;  // k < node
      case NodeKind::kReal:
        break;
    }
    if (k < key()) return -1;
    if (key() < k) return +1;
    return 0;
  }
};

}  // namespace citrus::core
