// Shared traversal/validation machinery of the Citrus updaters.
//
// Both update protocols — the paper's lock+validate (citrus_tree.hpp) and
// the optimistic copy-validate-publish path (citrus_cop.hpp) — run the
// same wait-free `get` search, carry the same (node, generation, tag)
// snapshots out of the read-side critical section, and re-establish
// safety with the same post-lock validation. This header holds the pieces
// that are protocol-independent so the cop tree is a protocol layer, not
// a fork:
//
//   GetResult  — the last edge the search followed, plus the generation
//                and ABA-tag snapshots reclaim-mode validation needs.
//   LockSet    — bounded multi-lock acquisition (timed try-lock, bulk
//                release, adoption of locks acquired elsewhere). Bounded
//                acquisition makes update deadlock impossible by
//                construction and guarantees a blocked updater reaches a
//                quiescent point (the QSBR domain depends on this).
//   validate_link — the paper's `validate` (Lines 33-38) extended with
//                generation checks: the locked (or transaction-subscribed)
//                nodes are unmarked, still in the expected parent-child
//                relation, and the slot's tag is unchanged for an insert
//                into an empty slot.
#pragma once

#include <cstdint>

#include "check/check.hpp"
#include "citrus/citrus_node.hpp"
#include "sync/backoff.hpp"

namespace citrus::core {

// Result of the paper's `get` (Lines 1-15) plus the generation snapshots
// used by reclaim-mode validation.
template <typename Node>
struct GetResult {
  Node* prev = nullptr;
  Node* curr = nullptr;
  std::uint64_t tag = 0;
  std::uint64_t prev_gen = 0;
  std::uint64_t curr_gen = 0;
  int direction = kRight;
};

// Bounded multi-lock helper: every acquisition is a bounded try-lock (on
// timeout the whole operation restarts from the root), so update deadlock
// is impossible by construction and no thread ever blocks indefinitely
// without passing a quiescent point. Releases everything on destruction
// unless release_all() already ran. Capacity: the deepest holder is the
// two-child erase with prev, curr, prevSucc, succ and the replacement.
template <typename Node, std::uint32_t kAttempts>
class LockSet {
 public:
  ~LockSet() { release_all(); }

  bool acquire_timed(Node* n) {
    sync::Backoff bo;
    for (std::uint32_t i = 0; i < kAttempts; ++i) {
      if (n->lock.try_lock()) {
        held_[count_++] = n;
        return true;
      }
      bo.pause();
    }
    return false;
  }

  // Adopt a lock acquired elsewhere (the pool returns delete's
  // replacement node already locked).
  void adopt(Node* n) { held_[count_++] = n; }

  void release_all() {
    while (count_ > 0) held_[--count_]->lock.unlock();
  }

 private:
  Node* held_[5] = {};
  int count_ = 0;
};

// Paper `validate` (Lines 33-38) extended with generation checks (always
// compiled; generations never change when reclamation is off, so the
// extra comparisons are branch-predicted away in bench mode). The caller
// must have made the inspected state stable: either it holds the locks on
// prev/curr (the lock+validate protocol) or it runs inside an HTM
// transaction that has subscribed those locks (the cop fast path).
// rcu-lint: allow (caller locks or HTM-subscribes prev/curr)
template <typename Node>
bool validate_link(Node* prev, std::uint64_t prev_gen, std::uint64_t tag,
                   Node* curr, std::uint64_t curr_gen, int direction) {
  // Header-only accesses: validate may legally inspect a recycled slot
  // (the generation/marked checks are what detect that), so the lifetime
  // canary is not consulted here.
  check::on_node_header_access(prev);
  if (curr != nullptr) check::on_node_header_access(curr);
  if (prev->generation.load(std::memory_order_acquire) != prev_gen) {
    return false;
  }
  if (prev->marked.load(std::memory_order_acquire)) return false;
  if (prev->child[direction].load_locked() != curr) {
    return false;
  }
  if (curr != nullptr) {
    return curr->generation.load(std::memory_order_acquire) == curr_gen &&
           !curr->marked.load(std::memory_order_acquire);
  }
  return prev->tag[direction].load(std::memory_order_acquire) == tag;
}

}  // namespace citrus::core
