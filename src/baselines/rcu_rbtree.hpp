// Relativistic red-black tree — the paper's "Red-Black" comparator, after
// Howard and Walpole, "Relativistic red-black trees" (CC:P&E 2013).
//
// One writer at a time (a global mutex — the coarse-grained updater
// synchronization whose collapse under update load Figures 9/10 show);
// readers traverse concurrently under RCU with no locks and no retries.
// What makes the tree "relativistic" is that every restructuring step is
// expressed so that a concurrent reader can never miss a key:
//
//   * Linking a fresh leaf or splicing out a node with at most one child
//     is a single child-pointer store: readers see the tree before or
//     after, both valid.
//   * A rotation never moves nodes in place. rotate() builds a *copy* of
//     the pivot in its post-rotation position, links the copy below the
//     rising child, and only then publishes the rising child at the old
//     parent slot. A reader paused on the old pivot still has a correct
//     view through the pivot's (unchanged) children; the old pivot is
//     retired behind a grace period. (In-place rotation is exactly the
//     step Howard shows can lose readers.) Colors and parent pointers are
//     writer-only fields, so the rotation's recoloring is invisible to
//     readers.
//   * Deleting a node with two children copies the successor's payload
//     into a new node at the victim's position, publishes it, waits for
//     pre-existing readers with synchronize_rcu, and only then unlinks
//     the original successor — the same move Citrus makes, here serialized
//     with all other updates.
//
// Rebalancing follows the classic insert/delete fixups (CLRS), adapted to
// the copying rotation: a rotation invalidates the rotated node, so the
// fixup continues on the copy the rotation returns.
// rcu-lint: exempt-file (internal helpers run under the caller's writer
//   mutex or read-side section; the adapter establishes both)
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/rcu.hpp"

namespace citrus::baselines {

struct RbTraits {
  static constexpr bool kReclaim = true;
};
struct RbBenchTraits : RbTraits {
  static constexpr bool kReclaim = false;
};

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = RbTraits>
class RcuRedBlackTree {
  static constexpr int kLeft = 0;
  static constexpr int kRight = 1;

 public:
  using key_type = Key;
  using mapped_type = Value;

  explicit RcuRedBlackTree(Rcu& domain) : rcu_(domain) {}
  RcuRedBlackTree(const RcuRedBlackTree&) = delete;
  RcuRedBlackTree& operator=(const RcuRedBlackTree&) = delete;

  ~RcuRedBlackTree() {
    std::vector<Node*> stack;
    if (Node* r = root_.load(std::memory_order_relaxed)) stack.push_back(r);
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      for (int d = 0; d < 2; ++d) {
        if (Node* c = n->child[d].load(std::memory_order_relaxed)) {
          stack.push_back(c);
        }
      }
      delete n;
    }
  }

  bool contains(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    return reader_locate(key) != nullptr;
  }

  std::optional<Value> find(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Node* n = reader_locate(key);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  // Weak-consistency ordered neighbors (see the registry traits): a
  // candidate descent over a tree whose relativistic rotations may run
  // mid-walk. Every reachable node is present, so the descent needs no
  // backtracking; a rotation racing the walk can return a stale-but-valid
  // neighbor — the documented weak scan level of this baseline.
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Node* cand = nullptr;
    for (const Node* n = root_.load(std::memory_order_acquire);
         n != nullptr;) {
      if (key < n->key) {
        cand = n;
        n = n->child[kLeft].load(std::memory_order_acquire);
      } else {
        n = n->child[kRight].load(std::memory_order_acquire);
      }
    }
    if (cand == nullptr) return std::nullopt;
    return std::make_pair(cand->key, cand->value);
  }
  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Node* cand = nullptr;
    for (const Node* n = root_.load(std::memory_order_acquire);
         n != nullptr;) {
      if (n->key < key) {
        cand = n;
        n = n->child[kRight].load(std::memory_order_acquire);
      } else {
        n = n->child[kLeft].load(std::memory_order_acquire);
      }
    }
    if (cand == nullptr) return std::nullopt;
    return std::make_pair(cand->key, cand->value);
  }

  bool insert(const Key& key, const Value& value) {
    std::lock_guard<std::mutex> writer(writer_lock_);
    Node* parent = nullptr;
    int dir = kLeft;
    Node* n = root_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      if (key < n->key) {
        parent = n;
        dir = kLeft;
      } else if (n->key < key) {
        parent = n;
        dir = kRight;
      } else {
        return false;
      }
      n = parent->child[dir].load(std::memory_order_relaxed);
    }
    Node* leaf = new Node(key, value);
    leaf->red = true;
    leaf->parent = parent;
    set_child(parent, dir, leaf);
    insert_fixup(leaf);
    ++size_;
    return true;
  }

  bool erase(const Key& key) {
    std::lock_guard<std::mutex> writer(writer_lock_);
    Node* z = writer_locate(key);
    if (z == nullptr) return false;

    bool removed_black;
    Node* x;        // the node (possibly null) taking the removed position
    Node* x_parent; // its parent after the splice
    Node* zl = z->child[kLeft].load(std::memory_order_relaxed);
    Node* zr = z->child[kRight].load(std::memory_order_relaxed);

    if (zl == nullptr || zr == nullptr) {
      // Splice z out with a single published store.
      x = zl != nullptr ? zl : zr;
      x_parent = z->parent;
      removed_black = !z->red;
      set_child(z->parent, z->parent == nullptr ? kLeft : dir_of(z), x);
      retire(z);
    } else {
      // Two children: relativistic successor move (copy + grace period).
      Node* y = zr;
      while (Node* l = y->child[kLeft].load(std::memory_order_relaxed)) {
        y = l;
      }
      removed_black = !y->red;
      x = y->child[kRight].load(std::memory_order_relaxed);

      Node* z2 = new Node(y->key, y->value);
      z2->red = z->red;
      z2->parent = z->parent;
      z2->child[kLeft].store(zl, std::memory_order_relaxed);
      z2->child[kRight].store(zr, std::memory_order_relaxed);
      zl->parent = z2;
      zr->parent = z2;
      set_child(z->parent, z->parent == nullptr ? kLeft : dir_of(z), z2);
      retire(z);

      // Readers that began before the publication may still be en route to
      // the successor's old position; wait them out before unlinking it
      // (otherwise a search for y->key could miss it both places — the
      // false negative of the paper's Figure 4).
      rcu_.synchronize();

      if (y == zr) {
        // The successor was z's right child, which z2 adopted.
        x_parent = z2;
        z2->child[kRight].store(x, std::memory_order_release);
      } else {
        x_parent = y->parent;
        y->parent->child[kLeft].store(x, std::memory_order_release);
      }
      if (x != nullptr) x->parent = x_parent;
      retire(y);
    }

    if (removed_black) erase_fixup(x, x_parent);
    --size_;
    return true;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // Quiescent audit: BST order, no red node with a red child, equal black
  // height on every path, consistent parent pointers, size match.
  bool check_structure(std::string* error = nullptr) const {
    const Node* root = root_.load(std::memory_order_relaxed);
    if (root != nullptr && root->red) {
      return set_error(error, "root is red");
    }
    std::size_t count = 0;
    const int bh = audit(root, nullptr, nullptr, nullptr, count, error);
    if (bh < 0) return false;
    if (count != size_) return set_error(error, "size mismatch");
    return true;
  }

 private:
  struct Node {
    std::atomic<Node*> child[2] = {nullptr, nullptr};
    Node* parent = nullptr;  // writer-only
    bool red = false;        // writer-only
    const Key key;
    const Value value;

    Node(const Key& k, const Value& v) : key(k), value(v) {}
  };

  const Node* reader_locate(const Key& key) const {
    const Node* n = root_.load(std::memory_order_acquire);
    while (n != nullptr) {
      if (key < n->key) {
        n = n->child[kLeft].load(std::memory_order_acquire);
      } else if (n->key < key) {
        n = n->child[kRight].load(std::memory_order_acquire);
      } else {
        break;
      }
    }
    return n;
  }

  Node* writer_locate(const Key& key) {
    Node* n = root_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      if (key < n->key) {
        n = n->child[kLeft].load(std::memory_order_relaxed);
      } else if (n->key < key) {
        n = n->child[kRight].load(std::memory_order_relaxed);
      } else {
        break;
      }
    }
    return n;
  }

  int dir_of(const Node* n) const {
    return n->parent->child[kRight].load(std::memory_order_relaxed) == n
               ? kRight
               : kLeft;
  }

  void set_child(Node* parent, int dir, Node* c) {
    if (parent == nullptr) {
      root_.store(c, std::memory_order_release);
    } else {
      parent->child[dir].store(c, std::memory_order_release);
    }
    if (c != nullptr) c->parent = parent;
  }

  // Copying rotation. `dir` is the direction the pivot x moves: dir==kLeft
  // is the classic left-rotation (x's right child rises). Returns {rising
  // child, copy of x}; the original x is retired and must not be used.
  std::pair<Node*, Node*> rotate(Node* x, int dir) {
    Node* y = x->child[1 - dir].load(std::memory_order_relaxed);
    Node* x2 = new Node(x->key, x->value);
    x2->red = x->red;
    Node* inner = y->child[dir].load(std::memory_order_relaxed);
    Node* outer = x->child[dir].load(std::memory_order_relaxed);
    x2->child[dir].store(outer, std::memory_order_relaxed);
    x2->child[1 - dir].store(inner, std::memory_order_relaxed);
    if (outer != nullptr) outer->parent = x2;
    if (inner != nullptr) inner->parent = x2;
    x2->parent = y;
    Node* p = x->parent;
    const int xd = p == nullptr ? kLeft : dir_of(x);
    // Order matters for readers: the copy must be reachable below y
    // before y is published in x's place, or a search could miss x's key.
    y->child[dir].store(x2, std::memory_order_release);
    set_child(p, xd, y);
    retire(x);
    return {y, x2};
  }

  void insert_fixup(Node* z) {
    while (z->parent != nullptr && z->parent->red) {
      Node* p = z->parent;
      Node* g = p->parent;  // exists: p is red, so p is not the root
      const int side = p == g->child[kLeft].load(std::memory_order_relaxed)
                           ? kLeft
                           : kRight;
      Node* u = g->child[1 - side].load(std::memory_order_relaxed);
      if (u != nullptr && u->red) {
        p->red = false;
        u->red = false;
        g->red = true;
        z = g;
        continue;
      }
      if (z == p->child[1 - side].load(std::memory_order_relaxed)) {
        // Inner grandchild: rotate the parent; continue from its copy.
        auto [up, copy] = rotate(p, side);
        (void)up;
        z = copy;
        p = z->parent;
        g = p->parent;
      }
      p->red = false;
      g->red = true;
      rotate(g, 1 - side);
      break;
    }
    Node* root = root_.load(std::memory_order_relaxed);
    root->red = false;
  }

  static bool is_black(const Node* n) { return n == nullptr || !n->red; }

  // CLRS delete-fixup. `x` (possibly null, counted black) sits at
  // `x_parent`; each copying rotation of x_parent re-parents x to the
  // returned copy, which the loop adopts.
  void erase_fixup(Node* x, Node* x_parent) {
    while (x_parent != nullptr && is_black(x)) {
      const int side =
          x_parent->child[kLeft].load(std::memory_order_relaxed) == x
              ? kLeft
              : kRight;
      Node* w = x_parent->child[1 - side].load(std::memory_order_relaxed);
      // w is non-null: x is doubly black, so its sibling subtree has
      // black height >= 1.
      if (w->red) {
        w->red = false;
        x_parent->red = true;
        auto [up, copy] = rotate(x_parent, side);
        (void)up;
        x_parent = copy;  // x's parent is now the copy
        w = x_parent->child[1 - side].load(std::memory_order_relaxed);
      }
      Node* wn = w->child[side].load(std::memory_order_relaxed);      // near
      Node* wf = w->child[1 - side].load(std::memory_order_relaxed);  // far
      if (is_black(wn) && is_black(wf)) {
        w->red = true;
        x = x_parent;
        x_parent = x->parent;
        continue;
      }
      if (is_black(wf)) {
        // Near nephew red: rotate w away; the risen near nephew is the
        // new sibling.
        wn->red = false;
        w->red = true;
        rotate(w, 1 - side);
        w = x_parent->child[1 - side].load(std::memory_order_relaxed);
        wf = w->child[1 - side].load(std::memory_order_relaxed);
      }
      w->red = x_parent->red;
      x_parent->red = false;
      wf->red = false;
      rotate(x_parent, side);
      x = nullptr;
      x_parent = nullptr;  // done
    }
    if (x != nullptr) x->red = false;
  }

  void retire(Node* n) {
    if constexpr (Traits::kReclaim) {
      rcu::retire_delete(rcu_, n);
    } else {
      (void)n;  // paper evaluation mode: drop without reclaiming
    }
  }

  // Returns black height, or -1 on violation.
  int audit(const Node* n, const Key* lo, const Key* hi, const Node* parent,
            std::size_t& count, std::string* error) const {
    if (n == nullptr) return 0;
    if (n->parent != parent) return set_error(error, "bad parent"), -1;
    if ((lo != nullptr && !(*lo < n->key)) ||
        (hi != nullptr && !(n->key < *hi))) {
      return set_error(error, "BST order violated"), -1;
    }
    const Node* l = n->child[kLeft].load(std::memory_order_relaxed);
    const Node* r = n->child[kRight].load(std::memory_order_relaxed);
    if (n->red && ((l != nullptr && l->red) || (r != nullptr && r->red))) {
      return set_error(error, "red node with red child"), -1;
    }
    ++count;
    const int lb = audit(l, lo, &n->key, n, count, error);
    if (lb < 0) return -1;
    const int rb = audit(r, &n->key, hi, n, count, error);
    if (rb < 0) return -1;
    if (lb != rb) return set_error(error, "black height mismatch"), -1;
    return lb + (n->red ? 0 : 1);
  }

  static bool set_error(std::string* error, const char* what) {
    if (error != nullptr) *error = what;
    return false;
  }

  Rcu& rcu_;
  std::atomic<Node*> root_{nullptr};
  std::mutex writer_lock_;
  std::size_t size_ = 0;  // writer-lock protected
};

}  // namespace citrus::baselines
