// Lock-free external binary search tree — the paper's "Lock-Free"
// comparator, after Natarajan and Mittal, "Fast Concurrent Lock-free
// Binary Search Trees" (PPoPP 2014).
//
// External tree: keys live in leaves; internal nodes are binary routers
// (always exactly two children). Coordination happens on *edges*: the two
// low bits of every child pointer hold a FLAG (the leaf below is being
// deleted) and a TAG (the edge is frozen because its parent is condemned).
// An operation that encounters a marked edge helps complete the deletion
// that owns it, so the structure is lock-free.
//
//   insert: seek to the leaf; CAS the parent edge from the leaf to a fresh
//     internal node routing {old leaf, new leaf}.
//   delete: two phases. *Injection* CASes the flag onto the parent→leaf
//     edge (the linearization point of a successful delete). *Cleanup*
//     tags the sibling edge, then CASes the *ancestor* edge (the lowest
//     untagged edge above, recorded by seek) from the successor to the
//     surviving sibling — splicing out the whole condemned chain at once.
//
// The three sentinel ranks (inf0 < inf1 < inf2, all above every real key)
// build the static scaffold R(inf2) → S(inf1) → leaf(inf0) the algorithm
// requires so every real leaf has both a parent and an ancestor edge.
//
// Reclamation (extension; the original leaks): with Traits::kReclaim every
// operation runs in an RCU read-side critical section and the cleanup
// winner retires the condemned chain; a per-node claim bit makes
// retirement idempotent under helping races.
// rcu-lint: exempt-file (lock-free CAS protocol: safety rests on
//   edge flag/tag marking and helping, not on locks or RCU sections)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/rcu.hpp"

namespace citrus::baselines {

struct LfBstTraits {
  static constexpr bool kReclaim = true;
};
struct LfBstBenchTraits : LfBstTraits {
  static constexpr bool kReclaim = false;
};

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = LfBstTraits>
class LockFreeBst {
  static constexpr int kLeft = 0;
  static constexpr int kRight = 1;
  static constexpr std::uintptr_t kFlag = 1;  // leaf below is being deleted
  static constexpr std::uintptr_t kTag = 2;   // edge frozen (parent condemned)
  static constexpr std::uintptr_t kMask = ~std::uintptr_t{3};

 public:
  using key_type = Key;
  using mapped_type = Value;

  explicit LockFreeBst(Rcu& domain) : rcu_(domain) {
    Node* leaf0 = new Node(1);  // rank inf0
    Node* leaf1 = new Node(2);
    Node* leaf2 = new Node(3);
    s_ = new Node(2);  // S routes at inf1
    s_->child[kLeft].store(pack(leaf0), std::memory_order_relaxed);
    s_->child[kRight].store(pack(leaf1), std::memory_order_relaxed);
    r_ = new Node(3);  // R routes at inf2
    r_->child[kLeft].store(pack(s_), std::memory_order_relaxed);
    r_->child[kRight].store(pack(leaf2), std::memory_order_relaxed);
  }

  LockFreeBst(const LockFreeBst&) = delete;
  LockFreeBst& operator=(const LockFreeBst&) = delete;

  ~LockFreeBst() {
    std::vector<Node*> stack{r_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      for (int d = 0; d < 2; ++d) {
        if (Node* c = unpack(n->child[d].load(std::memory_order_relaxed))) {
          stack.push_back(c);
        }
      }
      delete n;
    }
  }

  bool contains(const Key& key) const {
    MaybeGuard guard(rcu_);
    const Node* leaf = descend(key);
    return leaf->is_key(key);
  }

  std::optional<Value> find(const Key& key) const {
    MaybeGuard guard(rcu_);
    const Node* leaf = descend(key);
    if (!leaf->is_key(key)) return std::nullopt;
    return leaf->value();
  }

  // Weak-consistency ordered neighbors (see the registry traits): a
  // recursive walk over the external tree, skipping sentinel leaves; a
  // condemned-but-reachable leaf may still be reported, and edges may be
  // spliced mid-walk — the documented weak scan level of this baseline.
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    MaybeGuard guard(rcu_);
    return succ_rec(r_, key);
  }
  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    MaybeGuard guard(rcu_);
    return pred_rec(r_, key);
  }

  bool insert(const Key& key, const Value& value) {
    Node* new_leaf = nullptr;
    for (;;) {
      MaybeGuard guard(rcu_);
      SeekRecord s = seek(key);
      if (s.leaf->is_key(key)) {
        delete new_leaf;
        return false;
      }
      if (new_leaf == nullptr) new_leaf = new Node(key, value);
      // The new router's key is the larger of the two leaves; the smaller
      // leaf goes left. (Routing sends key < node left, key >= node right.)
      Node* router;
      if (s.leaf->less_than(key)) {
        router = new Node(key, RouterTag{});
        router->child[kLeft].store(pack(s.leaf), std::memory_order_relaxed);
        router->child[kRight].store(pack(new_leaf),
                                    std::memory_order_relaxed);
      } else {
        router = new Node(*s.leaf, RouterTag{});
        router->child[kLeft].store(pack(new_leaf), std::memory_order_relaxed);
        router->child[kRight].store(pack(s.leaf), std::memory_order_relaxed);
      }
      const int d = child_dir(s.parent, key);
      std::uintptr_t expected = pack(s.leaf);
      if (s.parent->child[d].compare_exchange_strong(
              expected, pack(router), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      delete router;
      // CAS failed. If the edge still leads to our leaf but is marked, a
      // deletion owns it: help it finish before retrying.
      if (unpack(expected) == s.leaf && (expected & (kFlag | kTag)) != 0) {
        cleanup(key, s);
      }
    }
  }

  bool erase(const Key& key) {
    bool injected = false;
    Node* leaf = nullptr;
    for (;;) {
      bool done = false;
      bool result = false;
      {
        MaybeGuard guard(rcu_);
        SeekRecord s = seek(key);
        if (!injected) {
          leaf = s.leaf;
          if (!leaf->is_key(key)) {
            done = true;  // not present
          } else {
            const int d = child_dir(s.parent, key);
            std::uintptr_t expected = pack(leaf);
            if (s.parent->child[d].compare_exchange_strong(
                    expected, pack(leaf) | kFlag, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
              injected = true;  // linearization point of the delete
              size_.fetch_sub(1, std::memory_order_relaxed);
              if (cleanup(key, s)) {
                done = true;
                result = true;
              }
            } else if (unpack(expected) == leaf &&
                       (expected & (kFlag | kTag)) != 0) {
              cleanup(key, s);  // help the deletion blocking our edge
            }
          }
        } else {
          // Our flag is set; keep trying to physically remove until someone
          // (possibly a helper) has done it.
          if (s.leaf != leaf || cleanup(key, s)) {
            done = true;
            result = true;
          }
        }
      }
      if (done) {
        // Outside the read-side section: give the deferred-reclamation
        // queue a chance to flush (it cannot inside our own section).
        if constexpr (Traits::kReclaim) rcu_.maybe_flush_retired();
        return result;
      }
    }
  }

  std::size_t size() const noexcept {
    const std::int64_t s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }

  // Quiescent audit: external-BST shape (internal nodes have exactly two
  // children, leaves none), correct routing, no surviving flags or tags,
  // leaf count matches size().
  bool check_structure(std::string* error = nullptr) const {
    std::size_t leaves = 0;
    if (!audit(r_, nullptr, nullptr, leaves, error)) return false;
    // The three sentinel leaves are counted too.
    if (leaves != size() + 3) return set_error(error, "size mismatch");
    return true;
  }

 private:
  struct RouterTag {};

  // rank 0 = real key; ranks 1..3 are the inf0 < inf1 < inf2 sentinels.
  struct alignas(8) Node {
    std::atomic<std::uintptr_t> child[2] = {0, 0};
    std::uint8_t rank;
    bool has_value = false;
    std::atomic<bool> claimed{false};  // retirement dedup under helping
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];

    explicit Node(std::uint8_t r) : rank(r) {}  // sentinel (never rank 0)
    Node(const Key& k, const Value& v) : rank(0), has_value(true) {
      new (key_buf) Key(k);
      new (value_buf) Value(v);
    }
    // Router carrying a real key.
    Node(const Key& k, RouterTag) : rank(0) { new (key_buf) Key(k); }
    // Router copying another node's routing point (key or sentinel rank).
    Node(const Node& src, RouterTag) : rank(src.rank) {
      if (rank == 0) new (key_buf) Key(src.key());
    }
    ~Node() {
      if (rank == 0) {
        key().~Key();
        if (has_value) value().~Value();
      }
    }
    const Key& key() const {
      return *std::launder(reinterpret_cast<const Key*>(key_buf));
    }
    const Value& value() const {
      return *std::launder(reinterpret_cast<const Value*>(value_buf));
    }

    // True iff this node's routing point is strictly less than `k`.
    bool less_than(const Key& k) const {
      return rank == 0 && key() < k;
    }
    bool is_key(const Key& k) const {
      return rank == 0 && !(key() < k) && !(k < key());
    }
    // Routing: key < node goes left, key >= node goes right. Sentinels
    // exceed every real key.
    int route(const Key& k) const {
      if (rank != 0) return kLeft;
      return k < key() ? kLeft : kRight;
    }
  };

  struct SeekRecord {
    Node* ancestor;
    Node* successor;
    Node* parent;
    Node* leaf;
  };

  class MaybeGuard {
   public:
    explicit MaybeGuard(Rcu& rcu) : rcu_(rcu) {
      if constexpr (Traits::kReclaim) rcu_.read_lock();
    }
    ~MaybeGuard() {
      if constexpr (Traits::kReclaim) rcu_.read_unlock();
    }
    MaybeGuard(const MaybeGuard&) = delete;
    MaybeGuard& operator=(const MaybeGuard&) = delete;

   private:
    Rcu& rcu_;
  };

  static std::uintptr_t pack(const Node* n) {
    return reinterpret_cast<std::uintptr_t>(n);
  }
  static Node* unpack(std::uintptr_t w) {
    return reinterpret_cast<Node*>(w & kMask);
  }

  int child_dir(const Node* n, const Key& key) const { return n->route(key); }

  // Plain search for the read side: route to the terminal leaf.
  const Node* descend(const Key& key) const {
    const Node* n = r_;
    for (;;) {
      const Node* c =
          unpack(n->child[n->route(key)].load(std::memory_order_acquire));
      if (c == nullptr) return n;
      n = c;
    }
  }

  // ── Weak ordered-neighbor helpers (keys live in rank-0 leaves) ────

  const Node* load_child(const Node* n, int dir) const {
    return unpack(n->child[dir].load(std::memory_order_acquire));
  }

  static std::optional<std::pair<Key, Value>> leaf_pair(const Node* n) {
    if (n->rank != 0) return std::nullopt;  // sentinel scaffold leaf
    return std::make_pair(n->key(), n->value());
  }

  // First real leaf in in-order (want_min) / reverse in-order.
  std::optional<std::pair<Key, Value>> extreme_leaf(const Node* n,
                                                    bool want_min) const {
    if (n == nullptr) return std::nullopt;
    const Node* first = load_child(n, want_min ? kLeft : kRight);
    if (first == nullptr) return leaf_pair(n);
    if (auto best = extreme_leaf(first, want_min); best.has_value()) {
      return best;
    }
    return extreme_leaf(load_child(n, want_min ? kRight : kLeft), want_min);
  }

  // Routing invariant: keys < router go left, keys >= router go right;
  // sentinel routers behave as +inf.
  std::optional<std::pair<Key, Value>> succ_rec(const Node* n,
                                                const Key& key) const {
    if (n == nullptr) return std::nullopt;
    const Node* left = load_child(n, kLeft);
    if (left == nullptr) {  // leaf
      if (n->rank == 0 && key < n->key()) return leaf_pair(n);
      return std::nullopt;
    }
    if (n->rank != 0 || key < n->key()) {
      if (auto best = succ_rec(left, key); best.has_value()) return best;
      // Right subtree's minimum is >= the router >= anything left of it.
      return extreme_leaf(load_child(n, kRight), true);
    }
    return succ_rec(load_child(n, kRight), key);
  }

  std::optional<std::pair<Key, Value>> pred_rec(const Node* n,
                                                const Key& key) const {
    if (n == nullptr) return std::nullopt;
    const Node* left = load_child(n, kLeft);
    if (left == nullptr) {  // leaf
      if (n->rank == 0 && n->key() < key) return leaf_pair(n);
      return std::nullopt;
    }
    if (n->rank == 0 && n->key() < key) {
      if (auto best = pred_rec(load_child(n, kRight), key);
          best.has_value()) {
        return best;
      }
      return extreme_leaf(left, false);
    }
    return pred_rec(left, key);
  }

  // Algorithm 2 of Natarajan-Mittal: walk to the leaf, remembering the
  // last edge whose word was untagged (ancestor→successor) and the final
  // edge (parent→leaf).
  SeekRecord seek(const Key& key) const {
    SeekRecord s;
    s.ancestor = r_;
    s.successor = s_;
    s.parent = s_;
    std::uintptr_t parent_field =
        s_->child[s_->route(key)].load(std::memory_order_acquire);
    s.leaf = unpack(parent_field);
    std::uintptr_t current_field =
        s.leaf->child[s.leaf->route(key)].load(std::memory_order_acquire);
    Node* current = unpack(current_field);
    while (current != nullptr) {
      if ((parent_field & kTag) == 0) {
        s.ancestor = s.parent;
        s.successor = s.leaf;
      }
      s.parent = s.leaf;
      s.leaf = current;
      parent_field = current_field;
      current_field =
          current->child[current->route(key)].load(std::memory_order_acquire);
      current = unpack(current_field);
    }
    return s;
  }

  // Physically remove the condemned chain: tag the surviving sibling's
  // edge at the parent, then swing the ancestor edge from the successor to
  // that sibling. Returns true iff this call's CAS performed the removal.
  bool cleanup(const Key& key, const SeekRecord& s) {
    Node* parent = s.parent;
    int d = child_dir(parent, key);
    int sibling_dir = 1 - d;
    // If the edge on our side is not flagged, the deletion in progress at
    // this parent targets the *other* child; we survive, it goes.
    if ((parent->child[d].load(std::memory_order_acquire) & kFlag) == 0) {
      sibling_dir = d;
    }
    // Freeze the surviving edge so no insert/delete can slip below it
    // between our reads and the ancestor CAS.
    parent->child[sibling_dir].fetch_or(kTag, std::memory_order_acq_rel);
    const std::uintptr_t sibling_field =
        parent->child[sibling_dir].load(std::memory_order_acquire);
    Node* sibling = unpack(sibling_field);
    const std::uintptr_t flag = sibling_field & kFlag;

    const int ad = child_dir(s.ancestor, key);
    std::uintptr_t expected = pack(s.successor);
    const bool won = s.ancestor->child[ad].compare_exchange_strong(
        expected, pack(sibling) | flag, std::memory_order_acq_rel,
        std::memory_order_acquire);
    if (won && Traits::kReclaim) retire_chain(s, key, sibling);
    return won;
  }

  // Retire every node detached by a successful cleanup: the internal chain
  // successor→…→parent and the condemned leaves hanging off it (everything
  // except the surviving sibling subtree). The claim bit makes this safe
  // if two cleanups' chains ever overlap.
  void retire_chain(const SeekRecord& s, const Key& key, Node* sibling) {
    Node* n = s.successor;
    while (n != nullptr && n != sibling) {
      Node* next = nullptr;
      for (int d = 0; d < 2; ++d) {
        Node* c = unpack(n->child[d].load(std::memory_order_acquire));
        if (c == nullptr || c == sibling) continue;
        if (d == child_dir(n, key) && c != sibling) {
          next = c;  // continue down the condemned path
        } else if (!c->claimed.exchange(true, std::memory_order_acq_rel)) {
          rcu::retire_delete(rcu_, c);  // condemned off-path leaf
        }
      }
      if (!n->claimed.exchange(true, std::memory_order_acq_rel)) {
        rcu::retire_delete(rcu_, n);
      }
      n = next;
    }
  }

  bool audit(const Node* n, const Key* lo, const Key* hi, std::size_t& leaves,
             std::string* error) const {
    const std::uintptr_t lw = n->child[kLeft].load(std::memory_order_relaxed);
    const std::uintptr_t rw = n->child[kRight].load(std::memory_order_relaxed);
    if (((lw | rw) & (kFlag | kTag)) != 0) {
      return set_error(error, "flag/tag survived to quiescence");
    }
    const Node* l = unpack(lw);
    const Node* r = unpack(rw);
    if ((l == nullptr) != (r == nullptr)) {
      return set_error(error, "internal node with one child");
    }
    if (n->rank == 0) {
      const Key& k = n->key();
      if ((lo != nullptr && k < *lo) || (hi != nullptr && !(k < *hi))) {
        return set_error(error, "routing violated");
      }
    }
    if (l == nullptr) {
      ++leaves;
      return true;
    }
    // Left subtree: keys < n. Right subtree: keys >= n (sentinel ranks
    // always route left of themselves, so only real-keyed bounds matter).
    const Key* nk = n->rank == 0 ? &n->key() : hi;
    return audit(l, lo, nk, leaves, error) &&
           audit(r, n->rank == 0 ? &n->key() : lo, hi, leaves, error);
  }

  static bool set_error(std::string* error, const char* what) {
    if (error != nullptr) *error = what;
    return false;
  }

  Rcu& rcu_;
  Node* r_;
  Node* s_;
  std::atomic<std::int64_t> size_{0};
};

}  // namespace citrus::baselines
