// Sentinel-aware key comparison shared by the baseline structures.
//
// The classic pseudocode for these algorithms assumes keys −∞ and +∞ for the
// sentinels. To stay generic over any `operator<`-ordered key type, each
// node carries a Bound discriminator; sentinel nodes compare below/above
// every real key without reserving key values.
#pragma once

#include <cstdint>

namespace citrus::baselines {

enum class Bound : std::uint8_t {
  kMin = 0,  // -inf sentinel
  kKey = 1,  // a real key
  kMax = 2,  // +inf sentinel
};

// Three-way comparison of search key `k` against a (bound, key) pair:
// negative if k is smaller, 0 if equal, positive if greater.
template <typename Key>
int compare_bounded(const Key& k, Bound bound, const Key& node_key) {
  switch (bound) {
    case Bound::kMin:
      return +1;
    case Bound::kMax:
      return -1;
    case Bound::kKey:
      break;
  }
  if (k < node_key) return -1;
  if (node_key < k) return +1;
  return 0;
}

}  // namespace citrus::baselines
