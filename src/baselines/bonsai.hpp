// Bonsai — an RCU-based balanced search tree in the style of Clements,
// Kaashoek and Zeldovich, "Scalable Address Spaces Using RCU Balanced
// Trees" (ASPLOS 2012): one of the two RCU-tree comparators in the paper's
// evaluation.
//
// "Inspired by functional programming, Bonsai never modifies the tree in
// place, creating instead a new instance for the changed data structure"
// (paper, Section 6). Every update: (a) takes the single writer lock — this
// is precisely the coarse-grained updater synchronization whose scaling
// collapse Figures 9 and 10 show — (b) rebuilds the root-to-leaf path
// functionally (nodes are immutable once published), (c) publishes the new
// root with one atomic store, and (d) only then retires the replaced nodes,
// whose memory is reclaimed after a grace period. Readers run inside an
// RCU read-side critical section, load the root once, and traverse a fully
// immutable snapshot — so reads are wait-free and even multi-item
// operations (see snapshot()) are trivially linearizable, which is the one
// capability Citrus deliberately gives up in exchange for concurrent
// updaters.
//
// Balance: weight-balanced tree with Adams' parameters (delta=3, gamma=2;
// the scheme of Haskell's Data.Map), giving O(log n) height like the
// original's "bonsai" (Nievergelt-Reingold) balance.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/rcu.hpp"
#include "util/visit.hpp"

namespace citrus::baselines {

struct BonsaiTraits {
  static constexpr bool kReclaim = true;
};
struct BonsaiBenchTraits : BonsaiTraits {
  static constexpr bool kReclaim = false;
};

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = BonsaiTraits>
class BonsaiTree {
 public:
  using key_type = Key;
  using mapped_type = Value;

  explicit BonsaiTree(Rcu& domain) : rcu_(domain) {}
  BonsaiTree(const BonsaiTree&) = delete;
  BonsaiTree& operator=(const BonsaiTree&) = delete;

  ~BonsaiTree() {
    free_subtree(root_.load(std::memory_order_relaxed));
  }

  bool contains(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    return locate(root_.load(std::memory_order_acquire), key) != nullptr;
  }

  std::optional<Value> find(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Node* n = locate(root_.load(std::memory_order_acquire), key);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  bool insert(const Key& key, const Value& value) {
    std::lock_guard<std::mutex> writer(writer_lock_);
    garbage_.clear();
    bool inserted = false;
    Node* new_root =
        insert_rec(root_.load(std::memory_order_relaxed), key, value,
                   inserted);
    if (!inserted) return false;
    publish_and_reclaim(new_root);
    return true;
  }

  bool erase(const Key& key) {
    std::lock_guard<std::mutex> writer(writer_lock_);
    garbage_.clear();
    bool erased = false;
    Node* new_root =
        erase_rec(root_.load(std::memory_order_relaxed), key, erased);
    if (!erased) return false;
    publish_and_reclaim(new_root);
    return true;
  }

  std::size_t size() const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    return weight_of(root_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

  // Linearizable multi-item read: an in-order dump of one immutable
  // snapshot. (The anomaly of the paper's Figure 1 cannot happen here;
  // this is what coarse-grained RCU trees buy with their single writer.)
  std::vector<std::pair<Key, Value>> snapshot() const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    std::vector<std::pair<Key, Value>> out;
    const Node* root = root_.load(std::memory_order_acquire);
    out.reserve(weight_of(root));
    std::vector<const Node*> stack;
    const Node* n = root;
    while (n != nullptr || !stack.empty()) {
      while (n != nullptr) {
        stack.push_back(n);
        n = n->left;
      }
      n = stack.back();
      stack.pop_back();
      out.emplace_back(n->key, n->value);
      n = n->right;
    }
    return out;
  }

  // ── Ordered operations ────────────────────────────────────────────
  //
  // Readers traverse one immutable root, so every multi-key read is
  // exact: it linearizes at the root load (snapshot consistency for
  // free — what the single writer lock buys).

  // In-order visit of pairs with lo <= key <= hi; the visitor returns
  // false to stop early and runs OUTSIDE the read-side critical section
  // (pairs are buffered), matching the Citrus range contract. `limit` 0 =
  // unlimited. Returns the number of pairs visited.
  template <typename F>
  std::size_t range(const Key& lo, const Key& hi, F&& f,
                    std::size_t limit = 0) const {
    if (hi < lo) return 0;
    std::vector<std::pair<Key, Value>> buf;
    {
      rcu::ReadGuard<Rcu> guard(rcu_);
      collect_range(root_.load(std::memory_order_acquire), lo, hi, limit,
                    buf);
    }
    std::size_t visited = 0;
    for (const auto& [k, v] : buf) {
      ++visited;
      if (!util::visit_entry(f, k, v)) break;
    }
    return visited;
  }

  // Smallest key strictly greater / greatest key strictly smaller than
  // `key`, with its value. Exact (immutable snapshot descent).
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Node* cand = nullptr;
    for (const Node* n = root_.load(std::memory_order_acquire);
         n != nullptr;) {
      if (key < n->key) {
        cand = n;
        n = n->left;
      } else {
        n = n->right;
      }
    }
    if (cand == nullptr) return std::nullopt;
    return std::make_pair(cand->key, cand->value);
  }
  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Node* cand = nullptr;
    for (const Node* n = root_.load(std::memory_order_acquire);
         n != nullptr;) {
      if (n->key < key) {
        cand = n;
        n = n->right;
      } else {
        n = n->left;
      }
    }
    if (cand == nullptr) return std::nullopt;
    return std::make_pair(cand->key, cand->value);
  }

  // Quiescent audit: BST order, correct subtree weights, and Adams'
  // balance invariant at every node.
  bool check_structure(std::string* error = nullptr) const {
    return audit(root_.load(std::memory_order_relaxed), nullptr, nullptr,
                 error) != kBad;
  }

 private:
  struct Node {
    const Key key;
    const Value value;
    Node* const left;
    Node* const right;
    const std::size_t weight;  // nodes in this subtree, inclusive

    Node(const Key& k, const Value& v, Node* l, Node* r)
        : key(k),
          value(v),
          left(l),
          right(r),
          weight(1 + weight_of(l) + weight_of(r)) {}
  };

  static std::size_t weight_of(const Node* n) {
    return n == nullptr ? 0 : n->weight;
  }

  static const Node* locate(const Node* n, const Key& key) {
    while (n != nullptr) {
      if (key < n->key) {
        n = n->left;
      } else if (n->key < key) {
        n = n->right;
      } else {
        return n;
      }
    }
    return nullptr;
  }

  // ── Functional rebuilding (writer lock held) ──────────────────────

  Node* make(const Key& k, const Value& v, Node* l, Node* r) {
    return new Node(k, v, l, r);
  }

  // A node consumed by the rebuild: unreachable from the new version.
  void discard(Node* n) { garbage_.push_back(n); }

  // Adams' delta/gamma balance. `l`/`r` differ from the originals by at
  // most one element, which single/double rotations restore.
  static constexpr std::size_t kDelta = 3;
  static constexpr std::size_t kGamma = 2;

  Node* balance(const Key& k, const Value& v, Node* l, Node* r) {
    const std::size_t lw = weight_of(l);
    const std::size_t rw = weight_of(r);
    if (lw + rw <= 1) return make(k, v, l, r);
    if (rw > kDelta * lw) {  // right too heavy
      Node* rl = r->left;
      Node* rr = r->right;
      discard(r);
      if (weight_of(rl) < kGamma * weight_of(rr)) {  // single left
        return make(r->key, r->value, make(k, v, l, rl), rr);
      }
      // double: rotate rl up
      Node* a = rl->left;
      Node* b = rl->right;
      discard(rl);
      return make(rl->key, rl->value, make(k, v, l, a),
                  make(r->key, r->value, b, rr));
    }
    if (lw > kDelta * rw) {  // left too heavy
      Node* ll = l->left;
      Node* lr = l->right;
      discard(l);
      if (weight_of(lr) < kGamma * weight_of(ll)) {  // single right
        return make(l->key, l->value, ll, make(k, v, lr, r));
      }
      Node* a = lr->left;
      Node* b = lr->right;
      discard(lr);
      return make(lr->key, lr->value, make(l->key, l->value, ll, a),
                  make(k, v, b, r));
    }
    return make(k, v, l, r);
  }

  Node* insert_rec(Node* n, const Key& key, const Value& value,
                   bool& inserted) {
    if (n == nullptr) {
      inserted = true;
      return make(key, value, nullptr, nullptr);
    }
    if (key < n->key) {
      Node* nl = insert_rec(n->left, key, value, inserted);
      if (!inserted) return n;
      discard(n);
      return balance(n->key, n->value, nl, n->right);
    }
    if (n->key < key) {
      Node* nr = insert_rec(n->right, key, value, inserted);
      if (!inserted) return n;
      discard(n);
      return balance(n->key, n->value, n->left, nr);
    }
    inserted = false;  // already present
    return n;
  }

  Node* erase_rec(Node* n, const Key& key, bool& erased) {
    if (n == nullptr) {
      erased = false;
      return nullptr;
    }
    if (key < n->key) {
      Node* nl = erase_rec(n->left, key, erased);
      if (!erased) return n;
      discard(n);
      return balance(n->key, n->value, nl, n->right);
    }
    if (n->key < key) {
      Node* nr = erase_rec(n->right, key, erased);
      if (!erased) return n;
      discard(n);
      return balance(n->key, n->value, n->left, nr);
    }
    erased = true;
    discard(n);
    return join(n->left, n->right);
  }

  // Glue two subtrees where everything in l < everything in r.
  Node* join(Node* l, Node* r) {
    if (l == nullptr) return r;
    if (r == nullptr) return l;
    const Key* min_key;
    const Value* min_value;
    Node* nr = extract_min(r, min_key, min_value);
    return balance(*min_key, *min_value, l, nr);
  }

  // Functionally remove the leftmost node of `n`; its payload outlives the
  // call because the node is only *queued* as garbage (freed after the
  // caller publishes and a grace period passes).
  Node* extract_min(Node* n, const Key*& k, const Value*& v) {
    if (n->left == nullptr) {
      k = &n->key;
      v = &n->value;
      discard(n);
      return n->right;
    }
    Node* nl = extract_min(n->left, k, v);
    discard(n);
    return balance(n->key, n->value, nl, n->right);
  }

  void publish_and_reclaim(Node* new_root) {
    root_.store(new_root, std::memory_order_release);
    // Old-path nodes become invisible to new readers at the store above;
    // pre-existing readers are covered by the grace period behind retire.
    if constexpr (Traits::kReclaim) {
      for (Node* dead : garbage_) rcu::retire_delete(rcu_, dead);
    }
    garbage_.clear();
  }

  // Pruned in-order collection over an immutable subtree (reader side;
  // the caller holds the read guard).
  static void collect_range(const Node* root, const Key& lo, const Key& hi,
                            std::size_t limit,
                            std::vector<std::pair<Key, Value>>& out) {
    std::vector<const Node*> stack;
    const auto descend = [&stack, &lo](const Node* n) {
      while (n != nullptr) {
        if (n->key < lo) {
          n = n->right;  // n and its left subtree are below the range
          continue;
        }
        stack.push_back(n);
        n = lo < n->key ? n->left : nullptr;
      }
    };
    descend(root);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (hi < n->key) break;  // in-order: everything later is larger
      out.emplace_back(n->key, n->value);
      if (limit != 0 && out.size() >= limit) break;
      descend(n->right);
    }
  }

  static void free_subtree(Node* n) {
    std::vector<Node*> stack;
    if (n != nullptr) stack.push_back(n);
    while (!stack.empty()) {
      Node* cur = stack.back();
      stack.pop_back();
      if (cur->left != nullptr) stack.push_back(cur->left);
      if (cur->right != nullptr) stack.push_back(cur->right);
      delete cur;
    }
  }

  static constexpr std::size_t kBad = static_cast<std::size_t>(-1);

  // Returns subtree weight, or kBad on invariant violation.
  std::size_t audit(const Node* n, const Key* lo, const Key* hi,
                    std::string* error) const {
    if (n == nullptr) return 0;
    if ((lo != nullptr && !(*lo < n->key)) ||
        (hi != nullptr && !(n->key < *hi))) {
      if (error != nullptr) *error = "BST order violated";
      return kBad;
    }
    const std::size_t lw = audit(n->left, lo, &n->key, error);
    if (lw == kBad) return kBad;
    const std::size_t rw = audit(n->right, &n->key, hi, error);
    if (rw == kBad) return kBad;
    if (n->weight != 1 + lw + rw) {
      if (error != nullptr) *error = "stale subtree weight";
      return kBad;
    }
    if (lw + rw > 1 && (lw > kDelta * rw || rw > kDelta * lw)) {
      if (error != nullptr) *error = "weight balance violated";
      return kBad;
    }
    return n->weight;
  }

  Rcu& rcu_;
  std::atomic<Node*> root_{nullptr};
  std::mutex writer_lock_;
  std::vector<Node*> garbage_;  // writer-lock protected scratch
};

}  // namespace citrus::baselines
