// Lock-based optimistic ("lazy") skiplist.
//
// Herlihy, Lev, Luchangco, Shavit: "A Simple Optimistic Skiplist Algorithm"
// (SIROCCO 2007) — the paper's "Skiplist" comparator, which it describes as
// the "lock-based lazy skiplist" with Gramoli's synchrobench C version as
// the reference. Searches are lock-free and never retry; updates lock the
// predecessors at every level, validate (predecessor unmarked, still linked
// to the expected successor), and retry on validation failure. A node is
// logically deleted by its `marked` bit and physically unlinked afterwards
// — the same lazy two-step Citrus borrows for its own marked bit.
//
// Reclamation (extension): with Traits::kReclaim every operation runs
// inside an RCU read-side critical section of the supplied domain, and
// unlinked nodes are retired through the domain; with it off the structure
// matches the evaluation setups of the paper (no reclamation — unlinked
// nodes are dropped).
// rcu-lint: exempt-file (lazy-skiplist protocol: searches are wait-free
//   by marked-bit validation; updates lock predecessors at each level)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "baselines/bounded_key.hpp"
#include "sync/backoff.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/rcu.hpp"
#include "sync/spinlock.hpp"
#include "util/rng.hpp"

namespace citrus::baselines {

struct SkiplistTraits {
  static constexpr int kMaxLevel = 20;  // 2^20 keys expected max
  static constexpr bool kReclaim = true;
  using LockTag = sync::UseSpinLock;
};

struct SkiplistBenchTraits : SkiplistTraits {
  static constexpr bool kReclaim = false;
};

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = SkiplistTraits>
class LazySkiplist {
  using Lock = typename Traits::LockTag::type;
  static constexpr int kMaxLevel = Traits::kMaxLevel;
  struct Node;

 public:
  using key_type = Key;
  using mapped_type = Value;

  explicit LazySkiplist(Rcu& domain) : rcu_(domain) {
    head_ = new Node(Bound::kMin, kMaxLevel - 1);
    tail_ = new Node(Bound::kMax, kMaxLevel - 1);
    for (int l = 0; l < kMaxLevel; ++l) {
      head_->next[l].store(tail_, std::memory_order_relaxed);
    }
  }

  LazySkiplist(const LazySkiplist&) = delete;
  LazySkiplist& operator=(const LazySkiplist&) = delete;

  ~LazySkiplist() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) const {
    MaybeGuard guard(rcu_);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int found = find_node(key, preds, succs);
    return found != -1 && succs[found]->fully_linked.load(std::memory_order_acquire) &&
           !succs[found]->marked.load(std::memory_order_acquire);
  }

  std::optional<Value> find(const Key& key) const {
    MaybeGuard guard(rcu_);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int found = find_node(key, preds, succs);
    if (found == -1 ||
        !succs[found]->fully_linked.load(std::memory_order_acquire) ||
        succs[found]->marked.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    return succs[found]->value();
  }

  // Weak-consistency ordered neighbors (see the registry traits): exact
  // at quiescence (erase unlinks marked nodes before returning), and a
  // key that stays present for the whole call is never stepped over —
  // both walks examine every bottom-level node in the answer's span.
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    MaybeGuard guard(rcu_);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    find_node(key, preds, succs);
    // Bottom-level walk from the first node >= key to the first valid
    // strictly greater one.
    for (Node* n = succs[0]; n != nullptr;
         n = n->next[0].load(std::memory_order_acquire)) {
      if (n->bound == Bound::kMax) return std::nullopt;
      if (n->bound == Bound::kKey && key < n->key() &&
          n->fully_linked.load(std::memory_order_acquire) &&
          !n->marked.load(std::memory_order_acquire)) {
        return std::make_pair(n->key(), n->value());
      }
    }
    return std::nullopt;
  }

  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    MaybeGuard guard(rcu_);
    // Standard descent, remembering the last valid node below `key`;
    // candidates are visited in nondecreasing key order, so the final one
    // is the predecessor. Above the bottom level the walk only advances
    // across nodes that are valid when inspected: hopping over a marked
    // tall node would also hop over every bottom-level key behind it with
    // nothing recorded at or above them, understating the predecessor
    // (the reverse-scan pred-chain would then skip continuously-present
    // keys). Descending instead re-examines that span one level lower; at
    // the bottom level skipping an invalid node is safe because every
    // later node is still visited individually.
    std::optional<std::pair<Key, Value>> best;
    Node* pred = head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (compare_bounded(key, curr->bound,
                             curr->bound == Bound::kKey ? curr->key() : key) >
             0) {
        const bool valid =
            curr->bound == Bound::kKey &&
            curr->fully_linked.load(std::memory_order_acquire) &&
            !curr->marked.load(std::memory_order_acquire);
        if (!valid && l > 0) break;
        if (valid) best = std::make_pair(curr->key(), curr->value());
        pred = curr;
        curr = pred->next[l].load(std::memory_order_acquire);
      }
    }
    return best;
  }

  bool insert(const Key& key, const Value& value) {
    const int top_level = random_level();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    for (;;) {
      MaybeGuard guard(rcu_);
      const int found = find_node(key, preds, succs);
      if (found != -1) {
        Node* existing = succs[found];
        if (!existing->marked.load(std::memory_order_acquire)) {
          // Key present (possibly mid-insert: wait until fully linked so
          // our linearization point is after its).
          sync::Backoff bo;
          while (!existing->fully_linked.load(std::memory_order_acquire)) {
            bo.pause();
          }
          return false;
        }
        continue;  // marked victim still in the way: retry
      }
      // Lock the predecessors bottom-up and validate each level.
      int highest_locked = -1;
      bool valid = true;
      Node* locked_pred = nullptr;
      for (int l = 0; valid && l <= top_level; ++l) {
        Node* pred = preds[l];
        Node* succ = succs[l];
        if (pred != locked_pred) {  // consecutive levels often share preds
          pred->lock.lock();
          locked_pred = pred;
          highest_locked = l;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                !succ->marked.load(std::memory_order_acquire) &&
                pred->next[l].load(std::memory_order_acquire) == succ;
      }
      if (!valid) {
        unlock_preds(preds, highest_locked);
        continue;
      }
      Node* node = new Node(key, value, top_level);
      for (int l = 0; l <= top_level; ++l) {
        node->next[l].store(succs[l], std::memory_order_relaxed);
      }
      for (int l = 0; l <= top_level; ++l) {
        preds[l]->next[l].store(node, std::memory_order_release);
      }
      node->fully_linked.store(true, std::memory_order_release);
      unlock_preds(preds, highest_locked);
      size_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  bool erase(const Key& key) {
    Node* victim = nullptr;
    bool is_marked = false;
    int top_level = -1;
    for (;;) {
      const EraseStep step = erase_attempt(key, victim, is_marked, top_level);
      if (step == EraseStep::kFalse) return false;
      if (step == EraseStep::kDone) {
        // Retire outside the read-side critical section so the reclamation
        // batch can be flushed (a grace period inside our own section
        // would deadlock).
        if constexpr (Traits::kReclaim) rcu::retire_delete(rcu_, victim);
        return true;
      }
    }
  }

 private:
  enum class EraseStep { kRetry, kFalse, kDone };

  EraseStep erase_attempt(const Key& key, Node*& victim, bool& is_marked,
                          int& top_level) {
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    {
      MaybeGuard guard(rcu_);
      const int found = find_node(key, preds, succs);
      if (!is_marked) {
        if (found == -1) return EraseStep::kFalse;
        victim = succs[found];
        if (!victim->fully_linked.load(std::memory_order_acquire) ||
            victim->top_level != found ||
            victim->marked.load(std::memory_order_acquire)) {
          return EraseStep::kFalse;
        }
        top_level = victim->top_level;
        victim->lock.lock();
        if (victim->marked.load(std::memory_order_acquire)) {
          victim->lock.unlock();  // someone else won the logical delete
          return EraseStep::kFalse;
        }
        victim->marked.store(true, std::memory_order_release);
        is_marked = true;
      }
      // Physical unlink under predecessor locks.
      int highest_locked = -1;
      bool valid = true;
      Node* locked_pred = nullptr;
      for (int l = 0; valid && l <= top_level; ++l) {
        Node* pred = preds[l];
        if (pred != locked_pred) {
          pred->lock.lock();
          locked_pred = pred;
          highest_locked = l;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[l].load(std::memory_order_acquire) == victim;
      }
      if (!valid) {
        unlock_preds(preds, highest_locked);
        return EraseStep::kRetry;
      }
      for (int l = top_level; l >= 0; --l) {
        preds[l]->next[l].store(
            victim->next[l].load(std::memory_order_acquire),
            std::memory_order_release);
      }
      victim->lock.unlock();
      unlock_preds(preds, highest_locked);
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
    return EraseStep::kDone;
  }

 public:

  std::size_t size() const noexcept {
    const std::int64_t s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }

  // Quiescent audit: bottom-level list strictly sorted, counts match, and
  // every node is linked at every level up to its top_level.
  bool check_structure(std::string* error = nullptr) const {
    std::size_t count = 0;
    const Node* prev = head_;
    for (const Node* n = head_->next[0].load(std::memory_order_relaxed);
         n != tail_; n = n->next[0].load(std::memory_order_relaxed)) {
      if (n == nullptr) return set_error(error, "level-0 list broke");
      if (n->bound != Bound::kKey) {
        return set_error(error, "sentinel inside the list");
      }
      if (prev->bound == Bound::kKey && !(prev->key() < n->key())) {
        return set_error(error, "level-0 keys out of order");
      }
      if (n->marked.load(std::memory_order_relaxed)) {
        return set_error(error, "marked node still linked");
      }
      ++count;
      prev = n;
    }
    if (count != size()) return set_error(error, "size() mismatch");
    // Each upper level must be a sublist of level 0 (strictly sorted too).
    for (int l = 1; l < kMaxLevel; ++l) {
      const Node* p = head_;
      for (const Node* n = head_->next[l].load(std::memory_order_relaxed);
           n != tail_; n = n->next[l].load(std::memory_order_relaxed)) {
        if (n == nullptr) return set_error(error, "upper list broke");
        if (n->top_level < l) {
          return set_error(error, "node linked above its top level");
        }
        if (p->bound == Bound::kKey && n->bound == Bound::kKey &&
            !(p->key() < n->key())) {
          return set_error(error, "upper-level keys out of order");
        }
        p = n;
      }
    }
    return true;
  }

 private:
  struct Node {
    std::atomic<Node*> next[kMaxLevel];
    Lock lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    Bound bound;
    int top_level;
    alignas(Key) unsigned char key_buf[sizeof(Key)];
    alignas(Value) unsigned char value_buf[sizeof(Value)];

    Node(const Key& k, const Value& v, int top)
        : bound(Bound::kKey), top_level(top) {
      new (key_buf) Key(k);
      new (value_buf) Value(v);
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
    Node(Bound b, int top) : bound(b), top_level(top) {
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
      fully_linked.store(true, std::memory_order_relaxed);
    }
    ~Node() {
      if (bound == Bound::kKey) {
        key().~Key();
        value().~Value();
      }
    }
    const Key& key() const {
      return *std::launder(reinterpret_cast<const Key*>(key_buf));
    }
    const Value& value() const {
      return *std::launder(reinterpret_cast<const Value*>(value_buf));
    }
  };

  class MaybeGuard {
   public:
    explicit MaybeGuard(Rcu& rcu) : rcu_(rcu) {
      if constexpr (Traits::kReclaim) rcu_.read_lock();
    }
    ~MaybeGuard() {
      if constexpr (Traits::kReclaim) rcu_.read_unlock();
    }
    MaybeGuard(const MaybeGuard&) = delete;
    MaybeGuard& operator=(const MaybeGuard&) = delete;

   private:
    Rcu& rcu_;
  };

  // Classic skiplist search: records the predecessor and successor at every
  // level; returns the highest level where the key was found, else -1.
  int find_node(const Key& key, Node** preds, Node** succs) const {
    int found = -1;
    Node* pred = head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      Node* curr = pred->next[l].load(std::memory_order_acquire);
      while (compare_bounded(key, curr->bound,
                             curr->bound == Bound::kKey ? curr->key() : key) >
             0) {
        pred = curr;
        curr = pred->next[l].load(std::memory_order_acquire);
      }
      if (found == -1 && curr->bound == Bound::kKey &&
          compare_bounded(key, curr->bound, curr->key()) == 0) {
        found = l;
      }
      preds[l] = pred;
      succs[l] = curr;
    }
    return found;
  }

  void unlock_preds(Node** preds, int highest_locked) {
    Node* last = nullptr;
    for (int l = 0; l <= highest_locked; ++l) {
      if (preds[l] != last) {
        preds[l]->lock.unlock();
        last = preds[l];
      }
    }
  }

  // Geometric level distribution (p = 1/2) from a per-thread generator.
  int random_level() {
    thread_local util::Xoshiro256 rng(
        0x9E3779B97F4A7C15ull ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    int level = 0;
    while (level < kMaxLevel - 1 && (rng() & 1) != 0) ++level;
    return level;
  }

  static bool set_error(std::string* error, const char* what) {
    if (error != nullptr) *error = what;
    return false;
  }

  Rcu& rcu_;
  Node* head_;
  Node* tail_;
  std::atomic<std::int64_t> size_{0};
};

}  // namespace citrus::baselines
