// Relativistic hash table, after Triplett, McKenney and Walpole ("Scalable
// Concurrent Hash Tables via Relativistic Programming", SIGOPS OSR 2010,
// and "Resizable, Scalable, Concurrent Hash Tables", USENIX ATC 2011) —
// the hash-table instance of the coarse-to-medium-grained RCU designs the
// paper's related-work section contrasts Citrus with: "the data structure
// is partitioned into segments, e.g., buckets in a hash table, each guarded
// by a single lock".
//
// Readers traverse a bucket's singly-linked chain inside an RCU read-side
// critical section — wait-free, never blocked by writers or by a resize.
// Updates hash to a bucket and take that bucket's spinlock only (concurrent
// updates to different buckets proceed in parallel; per-bucket locking is
// exactly the paper's characterization). Unlinked nodes are retired through
// the domain.
//
// Resize: the table (bucket array + mask) is itself RCU-published. Growth
// builds a fresh table with *copied* nodes under all bucket locks, installs
// it with one atomic store, and retires the old table and nodes — readers
// mid-traversal keep a fully consistent old version (copy-based resize;
// the USENIX'11 paper's incremental unzip achieves the same reader
// guarantee without the copy, at considerably more algorithmic machinery —
// see DESIGN.md). Resizing is triggered automatically at load factor 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rcu/counter_flag_rcu.hpp"
#include "rcu/rcu.hpp"
#include "sync/cache.hpp"
#include "sync/spinlock.hpp"

namespace citrus::baselines {

struct RelHashTraits {
  static constexpr bool kReclaim = true;
  static constexpr std::size_t kInitialBuckets = 16;  // power of two
};
struct RelHashBenchTraits : RelHashTraits {
  static constexpr bool kReclaim = false;
};

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = RelHashTraits, typename Hash = std::hash<Key>>
class RelativisticHashTable {
 public:
  using key_type = Key;
  using mapped_type = Value;

  explicit RelativisticHashTable(Rcu& domain)
      : RelativisticHashTable(domain, Traits::kInitialBuckets) {}

  // Pre-sized variant (adapters::Options::key_range_hint): starts with
  // `initial_buckets` rounded up to a power of two, skipping the resize
  // ramp a known-large workload would otherwise pay.
  RelativisticHashTable(Rcu& domain, std::size_t initial_buckets)
      : rcu_(domain) {
    std::size_t n = Traits::kInitialBuckets;
    while (n < initial_buckets) n <<= 1;
    table_.store(new Table(n), std::memory_order_release);
  }

  RelativisticHashTable(const RelativisticHashTable&) = delete;
  RelativisticHashTable& operator=(const RelativisticHashTable&) = delete;

  ~RelativisticHashTable() {
    Table* t = table_.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < t->bucket_count; ++b) {
      Node* n = t->buckets[b].head.load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* next = n->next.load(std::memory_order_relaxed);
        delete n;
        n = next;
      }
    }
    delete t;
  }

  bool contains(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    return locate(key) != nullptr;
  }

  std::optional<Value> find(const Key& key) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Node* n = locate(key);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  // Weak ordered access: a hash table has no key order, so succ/pred scan
  // the whole table — every bucket chain — under one read-side critical
  // section, tracking the best candidate. O(buckets + n) per call; exact
  // only at quiescence (ScanConsistency::kWeak in adapter terms).
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    return neighbor(key, /*want_succ=*/true);
  }
  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    return neighbor(key, /*want_succ=*/false);
  }

  bool insert(const Key& key, const Value& value) {
    bool inserted = false;
    {
      rcu::ReadGuard<Rcu> guard(rcu_);
      Table* t = table_.load(std::memory_order_acquire);
      Bucket& bucket = t->bucket_for(hash_(key));
      std::lock_guard<sync::SpinLock> lock(bucket.lock);
      // Re-check the current table: a resize may have swapped it while we
      // waited for the lock; bucket locks belong to a specific table.
      if (t != table_.load(std::memory_order_acquire)) {
        return insert(key, value);  // rare: retry against the new table
      }
      for (Node* n = bucket.head.load(std::memory_order_relaxed);
           n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        if (!(n->key < key) && !(key < n->key)) return false;
      }
      Node* node = new Node(key, value);
      // rcu-analyze: allow (pre-publication init: `node` is unreachable
      // until the release store of head on the next line, which orders it)
      node->next.store(bucket.head.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      bucket.head.store(node, std::memory_order_release);  // publish at head
      size_.fetch_add(1, std::memory_order_relaxed);
      inserted = true;
    }
    if (inserted) maybe_grow();
    return true;
  }

  bool erase(const Key& key) {
    Node* victim = nullptr;
    {
      rcu::ReadGuard<Rcu> guard(rcu_);
      Table* t = table_.load(std::memory_order_acquire);
      Bucket& bucket = t->bucket_for(hash_(key));
      std::lock_guard<sync::SpinLock> lock(bucket.lock);
      if (t != table_.load(std::memory_order_acquire)) {
        return erase(key);
      }
      std::atomic<Node*>* slot = &bucket.head;
      for (Node* n = slot->load(std::memory_order_relaxed); n != nullptr;
           n = slot->load(std::memory_order_relaxed)) {
        if (!(n->key < key) && !(key < n->key)) {
          // Unlink: the victim's own next pointer stays intact so a reader
          // paused on it still reaches the rest of the chain.
          slot->store(n->next.load(std::memory_order_relaxed),
                      std::memory_order_release);
          size_.fetch_sub(1, std::memory_order_relaxed);
          victim = n;
          break;
        }
        slot = &n->next;
      }
    }
    if (victim == nullptr) return false;
    retire_node(victim);
    if constexpr (Traits::kReclaim) rcu_.maybe_flush_retired();
    return true;
  }

  std::size_t size() const noexcept {
    const std::int64_t s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }

  std::size_t bucket_count() const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    return table_.load(std::memory_order_acquire)->bucket_count;
  }

  std::uint64_t resizes() const noexcept {
    return resizes_.load(std::memory_order_relaxed);
  }

  // Quiescent audit: every node hashes to the bucket that holds it, no
  // duplicate keys, chain count matches size().
  bool check_structure(std::string* error = nullptr) const {
    const Table* t = table_.load(std::memory_order_relaxed);
    std::size_t count = 0;
    for (std::size_t b = 0; b < t->bucket_count; ++b) {
      for (const Node* n = t->buckets[b].head.load(std::memory_order_relaxed);
           n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        if ((hash_(n->key) & t->mask) != b) {
          return set_error(error, "node in the wrong bucket");
        }
        for (const Node* m = n->next.load(std::memory_order_relaxed);
             m != nullptr; m = m->next.load(std::memory_order_relaxed)) {
          if (!(m->key < n->key) && !(n->key < m->key)) {
            return set_error(error, "duplicate key in a chain");
          }
        }
        ++count;
      }
    }
    if (count != size()) return set_error(error, "size mismatch");
    return true;
  }

 private:
  struct Node {
    const Key key;
    const Value value;
    std::atomic<Node*> next{nullptr};
    Node(const Key& k, const Value& v) : key(k), value(v) {}
  };

  struct alignas(sync::kDestructiveInterference) Bucket {
    std::atomic<Node*> head{nullptr};
    sync::SpinLock lock;
  };

  struct Table {
    const std::size_t bucket_count;
    const std::size_t mask;
    std::vector<Bucket> buckets;

    explicit Table(std::size_t n)
        : bucket_count(n), mask(n - 1), buckets(n) {}

    Bucket& bucket_for(std::size_t h) { return buckets[h & mask]; }
    const Bucket& bucket_for(std::size_t h) const { return buckets[h & mask]; }
  };

  std::optional<std::pair<Key, Value>> neighbor(const Key& key,
                                                bool want_succ) const {
    rcu::ReadGuard<Rcu> guard(rcu_);
    const Table* t = table_.load(std::memory_order_acquire);
    const Node* cand = nullptr;
    for (std::size_t b = 0; b < t->bucket_count; ++b) {
      for (const Node* n = t->buckets[b].head.load(std::memory_order_acquire);
           n != nullptr; n = n->next.load(std::memory_order_acquire)) {
        const bool beyond = want_succ ? key < n->key : n->key < key;
        if (!beyond) continue;
        const bool better =
            cand == nullptr ||
            (want_succ ? n->key < cand->key : cand->key < n->key);
        if (better) cand = n;
      }
    }
    if (cand == nullptr) return std::nullopt;
    return std::make_pair(cand->key, cand->value);
  }

  const Node* locate(const Key& key) const {
    const Table* t = table_.load(std::memory_order_acquire);
    const Bucket& bucket = t->bucket_for(hash_(key));
    for (const Node* n = bucket.head.load(std::memory_order_acquire);
         n != nullptr; n = n->next.load(std::memory_order_acquire)) {
      if (!(n->key < key) && !(key < n->key)) return n;
    }
    return nullptr;
  }

  void maybe_grow() {
    Table* t = table_.load(std::memory_order_acquire);
    if (size() <= t->bucket_count) return;  // load factor <= 1
    std::lock_guard<std::mutex> resize_guard(resize_lock_);
    t = table_.load(std::memory_order_acquire);
    if (size() <= t->bucket_count) return;  // someone else grew already

    // Freeze all updates to the old table.
    for (auto& bucket : t->buckets) bucket.lock.lock();

    auto* fresh = new Table(t->bucket_count * 2);
    std::vector<Node*> old_nodes;
    for (auto& bucket : t->buckets) {
      for (Node* n = bucket.head.load(std::memory_order_relaxed);
           n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        // Copy, don't move: readers may be anywhere in the old chains.
        Bucket& target = fresh->bucket_for(hash_(n->key));
        Node* copy = new Node(n->key, n->value);
        // rcu-analyze: allow (pre-publication init: `copy` is unreachable
        // until the release stores of target.head and table_ below)
        copy->next.store(target.head.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        target.head.store(copy, std::memory_order_release);
        old_nodes.push_back(n);
      }
    }
    table_.store(fresh, std::memory_order_release);  // one-shot publish
    resizes_.fetch_add(1, std::memory_order_relaxed);
    for (auto& bucket : t->buckets) bucket.lock.unlock();

    // Pre-existing readers may still traverse the old version; retire it.
    if constexpr (Traits::kReclaim) {
      for (Node* n : old_nodes) rcu::retire_delete(rcu_, n);
      rcu::retire_delete(rcu_, t);
      rcu_.maybe_flush_retired();
    } else {
      // Paper-parity leak mode still frees the (node-free) old table
      // after a grace period paid here, to bound array growth.
      rcu_.synchronize();
      delete t;
      (void)old_nodes;  // nodes leak, as elsewhere in bench mode
    }
  }

  void retire_node(Node* n) {
    if constexpr (Traits::kReclaim) {
      rcu::retire_delete(rcu_, n);
    } else {
      (void)n;
    }
  }

  static bool set_error(std::string* error, const char* what) {
    if (error != nullptr) *error = what;
    return false;
  }

  Rcu& rcu_;
  Hash hash_;
  std::atomic<Table*> table_;
  std::mutex resize_lock_;
  std::atomic<std::int64_t> size_{0};
  std::atomic<std::uint64_t> resizes_{0};
};

}  // namespace citrus::baselines
