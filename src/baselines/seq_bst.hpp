// Sequential internal binary search tree.
//
// The single-threaded reference implementation the paper's Section 3 says
// Citrus "greatly resembles". It serves two purposes here:
//   * the oracle for the concurrent test suites (same dictionary semantics,
//     no synchronization), and
//   * the single-thread performance baseline in bench/micro_tree_ops, which
//     shows what each concurrent structure pays at one thread.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/visit.hpp"

namespace citrus::baselines {

template <typename Key, typename Value>
class SeqBst {
 public:
  using key_type = Key;
  using mapped_type = Value;

  SeqBst() = default;
  SeqBst(const SeqBst&) = delete;
  SeqBst& operator=(const SeqBst&) = delete;
  ~SeqBst() { clear(); }

  bool insert(const Key& key, const Value& value) {
    Node** slot = locate(key);
    if (*slot != nullptr) return false;
    *slot = new Node{key, value, nullptr, nullptr};
    ++size_;
    return true;
  }

  bool erase(const Key& key) {
    Node** slot = locate(key);
    Node* victim = *slot;
    if (victim == nullptr) return false;
    if (victim->left == nullptr || victim->right == nullptr) {
      *slot = victim->left != nullptr ? victim->left : victim->right;
    } else {
      // Two children: splice out the successor node and put it in the
      // victim's place (node replacement, mirroring what Citrus does
      // concurrently with a copy).
      Node** succ_slot = &victim->right;
      while ((*succ_slot)->left != nullptr) succ_slot = &(*succ_slot)->left;
      Node* succ = *succ_slot;
      *succ_slot = succ->right;
      succ->left = victim->left;
      succ->right = victim->right;
      *slot = succ;
    }
    delete victim;
    --size_;
    return true;
  }

  bool contains(const Key& key) const { return locate_const(key) != nullptr; }

  std::optional<Value> find(const Key& key) const {
    const Node* n = locate_const(key);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    std::vector<Node*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
      delete n;
    }
    root_ = nullptr;
    size_ = 0;
  }

  // ── Ordered operations (the oracle for the concurrent scans) ──────

  // In-order visit of pairs with lo <= key <= hi; visitor returns false
  // to stop early. `limit` 0 = unlimited. Returns pairs visited.
  template <typename F>
  std::size_t range(const Key& lo, const Key& hi, F&& f,
                    std::size_t limit = 0) const {
    if (hi < lo) return 0;
    std::size_t visited = 0;
    std::vector<const Node*> stack;
    const auto descend = [&stack, &lo](const Node* n) {
      while (n != nullptr) {
        if (n->key < lo) {
          n = n->right;
          continue;
        }
        stack.push_back(n);
        n = lo < n->key ? n->left : nullptr;
      }
    };
    descend(root_);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (hi < n->key) break;
      ++visited;
      if (!util::visit_entry(f, n->key, n->value)) break;
      if (limit != 0 && visited >= limit) break;
      descend(n->right);
    }
    return visited;
  }

  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    const Node* cand = nullptr;
    for (const Node* n = root_; n != nullptr;) {
      if (key < n->key) {
        cand = n;
        n = n->left;
      } else {
        n = n->right;
      }
    }
    if (cand == nullptr) return std::nullopt;
    return std::make_pair(cand->key, cand->value);
  }

  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    const Node* cand = nullptr;
    for (const Node* n = root_; n != nullptr;) {
      if (n->key < key) {
        cand = n;
        n = n->right;
      } else {
        n = n->left;
      }
    }
    if (cand == nullptr) return std::nullopt;
    return std::make_pair(cand->key, cand->value);
  }

  template <typename F>
  void for_each(F&& f) const {
    std::vector<const Node*> stack;
    const Node* n = root_;
    while (n != nullptr || !stack.empty()) {
      while (n != nullptr) {
        stack.push_back(n);
        n = n->left;
      }
      n = stack.back();
      stack.pop_back();
      f(n->key, n->value);
      n = n->right;
    }
  }

 private:
  struct Node {
    Key key;
    Value value;
    Node* left;
    Node* right;
  };

  // Pointer to the child slot where `key` is or would be.
  Node** locate(const Key& key) {
    Node** slot = &root_;
    while (*slot != nullptr) {
      if (key < (*slot)->key) {
        slot = &(*slot)->left;
      } else if ((*slot)->key < key) {
        slot = &(*slot)->right;
      } else {
        break;
      }
    }
    return slot;
  }

  const Node* locate_const(const Key& key) const {
    const Node* n = root_;
    while (n != nullptr) {
      if (key < n->key) {
        n = n->left;
      } else if (n->key < key) {
        n = n->right;
      } else {
        return n;
      }
    }
    return nullptr;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace citrus::baselines
