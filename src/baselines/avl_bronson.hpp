// Optimistic concurrent AVL tree — the paper's "AVL" comparator, after
// Bronson, Casper, Chafi and Olukotun, "A Practical Concurrent Binary
// Search Tree" (PPoPP 2010).
//
// The design points, mirrored here from the reference algorithm:
//
//   * Partially external: a delete of a node with two children does not
//     restructure the tree; it just clears the node's value, turning it
//     into a *routing* node. Routing nodes with fewer than two children
//     are unlinked opportunistically during rebalancing.
//   * Hand-over-hand optimistic validation: searches take no locks.
//     Every node carries a *version* word; a node that is about to move
//     down in a rotation sets its SHRINKING bit first and bumps the
//     version after. A search (i) reads the child pointer, (ii) waits out
//     a shrinking child, (iii) re-checks that the parent's version is
//     unchanged before descending, and on mismatch retries from the
//     parent above — the "grow means no false negatives, shrink means
//     retry" argument of the paper.
//   * Relaxed balance: updates fix heights and rotate bottom-up along
//     their own path (fixHeightAndRebalance); transient imbalance is
//     tolerated while repairs propagate.
//
// Citrus' evaluation singles this tree out as the strongest fine-grained
// lock-based competitor; unlike Citrus it pays for balancing, which the
// paper notes "is not cost-effective when considering a uniform
// distribution of keys".
//
// Reclamation (extension; the C reference leaks): with Traits::kReclaim
// all operations run inside RCU read-side critical sections, and unlinked
// routing nodes / replaced values are retired through the domain.
// rcu-lint: exempt-file (optimistic version validation: readers take no
//   locks by design; writers validate node versions after locking)
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "baselines/bounded_key.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/rcu.hpp"
#include "sync/backoff.hpp"
#include "sync/spinlock.hpp"

namespace citrus::baselines {

struct AvlTraits {
  static constexpr bool kReclaim = true;
  using LockTag = sync::UseSpinLock;
};
struct AvlBenchTraits : AvlTraits {
  static constexpr bool kReclaim = false;
};

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = AvlTraits>
class BronsonAvlTree {
  using Lock = typename Traits::LockTag::type;
  static constexpr int kLeft = 0;
  static constexpr int kRight = 1;

  // Version word: UNLINKED and SHRINKING flags plus a change counter.
  static constexpr std::uint64_t kUnlinked = 1;
  static constexpr std::uint64_t kShrinking = 2;
  static constexpr std::uint64_t kOvlIncr = 4;

  struct Node {
    std::atomic<std::uint64_t> version{0};
    std::atomic<int> height{1};
    std::atomic<Node*> parent{nullptr};
    std::atomic<Node*> child[2] = {nullptr, nullptr};
    // null = routing node (key logically absent). Written under this
    // node's lock; read locklessly by gets.
    std::atomic<const Value*> value{nullptr};
    Lock lock;
    Bound bound;
    alignas(Key) unsigned char key_buf[sizeof(Key)];

    explicit Node(Bound b) : bound(b) {}
    Node(const Key& k, const Value* v) : bound(Bound::kKey) {
      new (key_buf) Key(k);
      value.store(v, std::memory_order_relaxed);
    }
    ~Node() {
      if (bound == Bound::kKey) key().~Key();
      delete value.load(std::memory_order_relaxed);
    }
    const Key& key() const {
      return *std::launder(reinterpret_cast<const Key*>(key_buf));
    }
  };

  static bool is_unlinked(std::uint64_t v) { return (v & kUnlinked) != 0; }
  static bool is_shrinking(std::uint64_t v) { return (v & kShrinking) != 0; }

 public:
  using key_type = Key;
  using mapped_type = Value;

  explicit BronsonAvlTree(Rcu& domain) : rcu_(domain) {
    // The root holder acts as -inf: searches always descend right; it
    // never shrinks, so its version is a permanent 0.
    root_holder_ = new Node(Bound::kMin);
    root_holder_->height.store(0, std::memory_order_relaxed);
  }

  BronsonAvlTree(const BronsonAvlTree&) = delete;
  BronsonAvlTree& operator=(const BronsonAvlTree&) = delete;

  ~BronsonAvlTree() {
    std::vector<Node*> stack{root_holder_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      for (int d = 0; d < 2; ++d) {
        if (Node* c = n->child[d].load(std::memory_order_relaxed)) {
          stack.push_back(c);
        }
      }
      delete n;
    }
  }

  bool contains(const Key& key) const { return find(key).has_value(); }

  std::optional<Value> find(const Key& key) const {
    MaybeGuard guard(rcu_);
    for (;;) {
      GetResult r = attempt_get(key, root_holder_, kRight, 0);
      if (r.state == GetState::kFound) return *r.value;  // copy inside guard
      if (r.state == GetState::kNotFound) return std::nullopt;
      // kRetry at the root holder: start over.
    }
  }

  // Weak-consistency ordered neighbors (see the registry traits): a
  // plain descent over a tree that may rotate mid-walk, skipping routing
  // nodes (null value = logically absent). Each returned pair did map key
  // to value at some instant, but the "nothing in between" property is
  // only best-effort under concurrent rebalancing — which is exactly the
  // documented weak scan level this baseline advertises.
  std::optional<std::pair<Key, Value>> succ(const Key& key) const {
    MaybeGuard guard(rcu_);
    return neighbor_rec(
        root_holder_->child[kRight].load(std::memory_order_acquire), key,
        true);
  }
  std::optional<std::pair<Key, Value>> pred(const Key& key) const {
    MaybeGuard guard(rcu_);
    return neighbor_rec(
        root_holder_->child[kRight].load(std::memory_order_acquire), key,
        false);
  }

  bool insert(const Key& key, const Value& value) {
    MaybeGuard guard(rcu_);
    for (;;) {
      const UpdateResult r = attempt_insert(key, value, root_holder_, kRight, 0);
      if (r != UpdateResult::kRetry) return r == UpdateResult::kTrue;
    }
  }

  bool erase(const Key& key) {
    bool result;
    {
      MaybeGuard guard(rcu_);
      for (;;) {
        const UpdateResult r = attempt_erase(key, root_holder_, kRight, 0);
        if (r != UpdateResult::kRetry) {
          result = r == UpdateResult::kTrue;
          break;
        }
      }
    }
    if constexpr (Traits::kReclaim) rcu_.maybe_flush_retired();
    return result;
  }

  std::size_t size() const noexcept {
    const std::int64_t s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }
  bool empty() const noexcept { return size() == 0; }

  // Quiescent audit: BST order, consistent parent pointers, no reachable
  // unlinked node, logical size. Balance and stored heights are *not*
  // checked strictly: the algorithm intentionally defers repairs that a
  // routing node blocks ("if necessary n will be balanced later" in the
  // reference implementation), so they are not quiescent invariants —
  // max_imbalance() reports how relaxed the balance currently is.
  bool check_structure(std::string* error = nullptr) const {
    std::size_t count = 0;
    int imbalance = 0;
    const int h =
        audit(root_holder_->child[kRight].load(std::memory_order_relaxed),
              root_holder_, nullptr, nullptr, count, imbalance, error);
    if (h < 0) return false;
    if (count != size()) return set_error(error, "size mismatch");
    return true;
  }

  // Largest |height(left) - height(right)| over all nodes (recomputed
  // heights, not the stored heuristics). 1 = perfectly AVL.
  int max_imbalance() const {
    std::size_t count = 0;
    int imbalance = 0;
    audit(root_holder_->child[kRight].load(std::memory_order_relaxed),
          root_holder_, nullptr, nullptr, count, imbalance, nullptr);
    return imbalance;
  }

 private:
  enum class GetState { kFound, kNotFound, kRetry };
  struct GetResult {
    GetState state;
    const Value* value = nullptr;
  };
  enum class UpdateResult { kTrue, kFalse, kRetry };

  class MaybeGuard {
   public:
    explicit MaybeGuard(Rcu& rcu) : rcu_(rcu) {
      if constexpr (Traits::kReclaim) rcu_.read_lock();
    }
    ~MaybeGuard() {
      if constexpr (Traits::kReclaim) rcu_.read_unlock();
    }
    MaybeGuard(const MaybeGuard&) = delete;
    MaybeGuard& operator=(const MaybeGuard&) = delete;

   private:
    Rcu& rcu_;
  };

  // Present-key read: a routing node reports no pair. Value copied while
  // the caller's guard is open (retired values outlive readers).
  static std::optional<std::pair<Key, Value>> present_pair(const Node* n) {
    const Value* v = n->value.load(std::memory_order_acquire);
    if (v == nullptr) return std::nullopt;
    return std::make_pair(n->key(), *v);
  }

  // succ (want_succ) / pred recursion with routing-node fallback: if the
  // preferred subtree yields nothing, the node itself (when present) and
  // then the other subtree's closest present node are the answers.
  static std::optional<std::pair<Key, Value>> neighbor_rec(const Node* n,
                                                           const Key& key,
                                                           bool want_succ) {
    if (n == nullptr) return std::nullopt;
    const Key& nk = n->key();
    const bool node_beyond = want_succ ? key < nk : nk < key;
    if (!node_beyond) {
      return neighbor_rec(
          n->child[want_succ ? kRight : kLeft].load(std::memory_order_acquire),
          key, want_succ);
    }
    auto best = neighbor_rec(
        n->child[want_succ ? kLeft : kRight].load(std::memory_order_acquire),
        key, want_succ);
    if (best.has_value()) return best;
    if (auto self = present_pair(n); self.has_value()) return self;
    return extreme_present(
        n->child[want_succ ? kRight : kLeft].load(std::memory_order_acquire),
        want_succ);
  }

  // First present pair in in-order (want_min) / reverse order.
  static std::optional<std::pair<Key, Value>> extreme_present(const Node* n,
                                                              bool want_min) {
    if (n == nullptr) return std::nullopt;
    auto best = extreme_present(
        n->child[want_min ? kLeft : kRight].load(std::memory_order_acquire),
        want_min);
    if (best.has_value()) return best;
    if (auto self = present_pair(n); self.has_value()) return self;
    return extreme_present(
        n->child[want_min ? kRight : kLeft].load(std::memory_order_acquire),
        want_min);
  }

  static int height_of(const Node* n) {
    return n == nullptr ? 0 : n->height.load(std::memory_order_relaxed);
  }

  int cmp(const Key& k, const Node* n) const {
    return compare_bounded(k, n->bound,
                           n->bound == Bound::kKey ? n->key() : k);
  }

  // Wait for an in-flight rotation at `n` to finish.
  static void wait_until_not_shrinking(const Node* n) {
    sync::Backoff bo;
    while (is_shrinking(n->version.load(std::memory_order_acquire))) {
      bo.pause();
    }
  }

  // ── get (paper Fig. 2: attemptGet) ────────────────────────────────
  //
  // `node_v` is the version of `node` captured by the caller before
  // descending into it; any change means `node` shrank and the search may
  // have entered the wrong subtree — return kRetry to the caller.
  GetResult attempt_get(const Key& key, const Node* node, int dir_to_c,
                        std::uint64_t node_v) const {
    for (;;) {
      const Node* child = node->child[dir_to_c].load(std::memory_order_acquire);
      if (node->version.load(std::memory_order_acquire) != node_v) {
        return {GetState::kRetry};
      }
      if (child == nullptr) return {GetState::kNotFound};
      const int c = cmp(key, child);
      if (c == 0) {
        const Value* v = child->value.load(std::memory_order_acquire);
        return v != nullptr ? GetResult{GetState::kFound, v}
                            : GetResult{GetState::kNotFound};
      }
      const std::uint64_t child_v =
          child->version.load(std::memory_order_acquire);
      if (is_shrinking(child_v)) {
        wait_until_not_shrinking(child);
        continue;  // re-read the child pointer
      }
      if (is_unlinked(child_v) ||
          child != node->child[dir_to_c].load(std::memory_order_acquire)) {
        continue;
      }
      if (node->version.load(std::memory_order_acquire) != node_v) {
        return {GetState::kRetry};
      }
      const GetResult r =
          attempt_get(key, child, c < 0 ? kLeft : kRight, child_v);
      if (r.state != GetState::kRetry) return r;
      // Child shrank under us: retry from here (node is still valid).
    }
  }

  // ── insert ────────────────────────────────────────────────────────
  UpdateResult attempt_insert(const Key& key, const Value& value, Node* node,
                              int dir_to_c, std::uint64_t node_v) {
    for (;;) {
      Node* child = node->child[dir_to_c].load(std::memory_order_acquire);
      if (node->version.load(std::memory_order_acquire) != node_v) {
        return UpdateResult::kRetry;
      }
      if (child == nullptr) {
        // Try to link a fresh leaf here.
        {
          std::lock_guard<Lock> g(node->lock);
          if (node->version.load(std::memory_order_relaxed) != node_v) {
            return UpdateResult::kRetry;
          }
          if (node->child[dir_to_c].load(std::memory_order_relaxed) !=
              nullptr) {
            continue;  // somebody linked a subtree; descend into it
          }
          Node* leaf = new Node(key, new Value(value));
          leaf->parent.store(node, std::memory_order_relaxed);
          node->child[dir_to_c].store(leaf, std::memory_order_release);
        }
        size_.fetch_add(1, std::memory_order_relaxed);
        fix_height_and_rebalance(node);
        return UpdateResult::kTrue;
      }
      const int c = cmp(key, child);
      if (c == 0) {
        // Key position exists; succeed only if it is currently routing.
        std::lock_guard<Lock> g(child->lock);
        if (is_unlinked(child->version.load(std::memory_order_relaxed))) {
          continue;  // unlinked under us: re-read the child pointer
        }
        if (child->value.load(std::memory_order_relaxed) != nullptr) {
          return UpdateResult::kFalse;
        }
        child->value.store(new Value(value), std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return UpdateResult::kTrue;
      }
      const std::uint64_t child_v =
          child->version.load(std::memory_order_acquire);
      if (is_shrinking(child_v)) {
        wait_until_not_shrinking(child);
        continue;
      }
      if (is_unlinked(child_v) ||
          child != node->child[dir_to_c].load(std::memory_order_acquire)) {
        continue;
      }
      if (node->version.load(std::memory_order_acquire) != node_v) {
        return UpdateResult::kRetry;
      }
      const UpdateResult r =
          attempt_insert(key, value, child, c < 0 ? kLeft : kRight, child_v);
      if (r != UpdateResult::kRetry) return r;
    }
  }

  // ── erase ─────────────────────────────────────────────────────────
  UpdateResult attempt_erase(const Key& key, Node* node, int dir_to_c,
                             std::uint64_t node_v) {
    for (;;) {
      Node* child = node->child[dir_to_c].load(std::memory_order_acquire);
      if (node->version.load(std::memory_order_acquire) != node_v) {
        return UpdateResult::kRetry;
      }
      if (child == nullptr) return UpdateResult::kFalse;
      const int c = cmp(key, child);
      if (c == 0) {
        const UpdateResult r = attempt_rm_node(node, child);
        if (r != UpdateResult::kRetry) return r;
        continue;  // the parent-child relation moved; re-examine
      }
      const std::uint64_t child_v =
          child->version.load(std::memory_order_acquire);
      if (is_shrinking(child_v)) {
        wait_until_not_shrinking(child);
        continue;
      }
      if (is_unlinked(child_v) ||
          child != node->child[dir_to_c].load(std::memory_order_acquire)) {
        continue;
      }
      if (node->version.load(std::memory_order_acquire) != node_v) {
        return UpdateResult::kRetry;
      }
      const UpdateResult r =
          attempt_erase(key, child, c < 0 ? kLeft : kRight, child_v);
      if (r != UpdateResult::kRetry) return r;
    }
  }

  bool has_two_children(const Node* n) const {
    return n->child[kLeft].load(std::memory_order_acquire) != nullptr &&
           n->child[kRight].load(std::memory_order_acquire) != nullptr;
  }

  // Remove the mapping held by `n` (whose parent was observed to be
  // `par`). Two-children nodes only lose their value (partial
  // externality); others are unlinked under parent+node locks.
  UpdateResult attempt_rm_node(Node* par, Node* n) {
    if (n->value.load(std::memory_order_acquire) == nullptr) {
      return UpdateResult::kFalse;
    }
    for (;;) {
      if (has_two_children(n)) {
        // Routing conversion: value removal only, no structural change.
        std::lock_guard<Lock> g(n->lock);
        if (is_unlinked(n->version.load(std::memory_order_relaxed))) {
          return UpdateResult::kRetry;
        }
        if (!has_two_children(n)) continue;  // take the unlink path
        const Value* prev = n->value.load(std::memory_order_relaxed);
        if (prev == nullptr) return UpdateResult::kFalse;
        n->value.store(nullptr, std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        retire_value(prev);
        return UpdateResult::kTrue;
      }
      bool unlinked = false;
      {
        std::lock_guard<Lock> gp(par->lock);
        if (is_unlinked(par->version.load(std::memory_order_relaxed)) ||
            n->parent.load(std::memory_order_relaxed) != par) {
          return UpdateResult::kRetry;
        }
        std::lock_guard<Lock> gn(n->lock);
        const Value* prev = n->value.load(std::memory_order_relaxed);
        if (prev == nullptr) return UpdateResult::kFalse;
        n->value.store(nullptr, std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        retire_value(prev);
        if (!has_two_children(n)) {
          unlink(par, n);  // both locks held
          unlinked = true;
        }
      }
      if (unlinked) fix_height_and_rebalance(par);
      return UpdateResult::kTrue;
    }
  }

  // Splice a routing node with at most one child out of the tree.
  // Precondition: par and n locked, n->parent == par, n has <= 1 child.
  void unlink(Node* par, Node* n) {
    Node* left = n->child[kLeft].load(std::memory_order_relaxed);
    Node* right = n->child[kRight].load(std::memory_order_relaxed);
    Node* splice = left != nullptr ? left : right;
    const int dir =
        par->child[kLeft].load(std::memory_order_relaxed) == n ? kLeft
                                                               : kRight;
    par->child[dir].store(splice, std::memory_order_release);
    if (splice != nullptr) splice->parent.store(par, std::memory_order_release);
    // Keep n's children intact: a paused search inside n must still see a
    // path to everything below. Mark it so validators bail out.
    const std::uint64_t v = n->version.load(std::memory_order_relaxed);
    n->version.store((v + kOvlIncr) | kUnlinked, std::memory_order_release);
    retire_node(n);
  }

  // ── relaxed rebalancing (paper Sec. 5) ────────────────────────────

  static constexpr int kNothingRequired = -1;
  static constexpr int kUnlinkRequired = -2;
  static constexpr int kRebalanceRequired = -3;

  // What does `n` need? Returns one of the markers above or the replacement
  // height.
  int node_condition(const Node* n) const {
    const Node* l = n->child[kLeft].load(std::memory_order_acquire);
    const Node* r = n->child[kRight].load(std::memory_order_acquire);
    if ((l == nullptr || r == nullptr) &&
        n->value.load(std::memory_order_acquire) == nullptr) {
      return kUnlinkRequired;
    }
    const int hn = n->height.load(std::memory_order_relaxed);
    const int hl = height_of(l);
    const int hr = height_of(r);
    const int repl = 1 + std::max(hl, hr);
    if (hl - hr < -1 || hl - hr > 1) return kRebalanceRequired;
    return hn != repl ? repl : kNothingRequired;
  }

  void fix_height_and_rebalance(Node* node) {
    // A rotation can leave damage both at an inner node (which it returns)
    // and at the parent whose child-subtree height changed. The inner
    // repair is done first; parents of every rotation are queued so their
    // heights are re-validated before the repair pass finishes.
    std::vector<Node*> pending;
    for (;;) {
      if (node == root_holder_ || node == nullptr) {
        if (pending.empty()) return;
        node = pending.back();
        pending.pop_back();
        continue;
      }
      const int condition = node_condition(node);
      if (condition == kNothingRequired ||
          is_unlinked(node->version.load(std::memory_order_acquire))) {
        node = nullptr;  // this chain is clean; drain the pending queue
        continue;
      }
      if (condition != kUnlinkRequired && condition != kRebalanceRequired) {
        std::lock_guard<Lock> g(node->lock);
        node = fix_height(node);
      } else {
        Node* par = node->parent.load(std::memory_order_acquire);
        if (par == nullptr) {
          node = nullptr;
          continue;
        }
        std::lock_guard<Lock> gp(par->lock);
        if (is_unlinked(par->version.load(std::memory_order_relaxed)) ||
            node->parent.load(std::memory_order_relaxed) != par) {
          continue;  // re-read the parent
        }
        std::lock_guard<Lock> gn(node->lock);
        pending.push_back(par);
        node = rebalance(par, node);
      }
    }
  }

  // Recompute the height of a locked node; returns the next damaged node.
  Node* fix_height(Node* n) {
    const int c = node_condition(n);
    switch (c) {
      case kRebalanceRequired:
      case kUnlinkRequired:
        return n;  // needs the larger-scope repair
      case kNothingRequired:
        return nullptr;
      default:
        n->height.store(c, std::memory_order_relaxed);
        return n->parent.load(std::memory_order_acquire);
    }
  }

  // Repair a locked (par, n) pair; returns the next damaged node.
  Node* rebalance(Node* par, Node* n) {
    Node* l = n->child[kLeft].load(std::memory_order_relaxed);
    Node* r = n->child[kRight].load(std::memory_order_relaxed);
    if ((l == nullptr || r == nullptr) &&
        n->value.load(std::memory_order_relaxed) == nullptr) {
      unlink(par, n);
      // The parent may now be damaged.
      return par;
    }
    const int hn = n->height.load(std::memory_order_relaxed);
    const int hl = height_of(l);
    const int hr = height_of(r);
    const int repl = 1 + std::max(hl, hr);
    if (hl - hr > 1) return rebalance_to_right(par, n, l, hr);
    if (hl - hr < -1) return rebalance_to_left(par, n, r, hl);
    if (repl != hn) {
      n->height.store(repl, std::memory_order_relaxed);
      return par;
    }
    return nullptr;
  }

  // Left subtree too tall: rotate right (single or double). par and n are
  // locked.
  Node* rebalance_to_right(Node* par, Node* n, Node* l, int hr0) {
    std::lock_guard<Lock> gl(l->lock);
    const int hl = l->height.load(std::memory_order_relaxed);
    if (hl - hr0 <= 1) return n;  // condition changed; re-examine
    Node* lr = l->child[kRight].load(std::memory_order_relaxed);
    const int hll = height_of(l->child[kLeft].load(std::memory_order_relaxed));
    const int hlr0 = height_of(lr);
    if (hll >= hlr0) return rotate_right(par, n, l, hr0, hll, lr, hlr0);
    if (lr == nullptr) return n;  // inconsistent snapshot
    {
      std::lock_guard<Lock> glr(lr->lock);
      const int hlr = lr->height.load(std::memory_order_relaxed);
      if (hll >= hlr) return rotate_right(par, n, l, hr0, hll, lr, hlr);
      const int hlrl =
          height_of(lr->child[kLeft].load(std::memory_order_relaxed));
      const int b = hll - hlrl;
      if (b >= -1 && b <= 1 &&
          !((hll == 0 || hlrl == 0) &&
            l->value.load(std::memory_order_relaxed) == nullptr)) {
        return rotate_right_over_left(par, n, l, hr0, hll, lr, hlrl);
      }
    }
    // First shorten the inner chain, then try again from n.
    return rebalance_to_left(n, l, lr, hll);
  }

  Node* rebalance_to_left(Node* par, Node* n, Node* r, int hl0) {
    std::lock_guard<Lock> gr(r->lock);
    const int hr = r->height.load(std::memory_order_relaxed);
    if (hr - hl0 <= 1) return n;
    Node* rl = r->child[kLeft].load(std::memory_order_relaxed);
    const int hrr =
        height_of(r->child[kRight].load(std::memory_order_relaxed));
    const int hrl0 = height_of(rl);
    if (hrr >= hrl0) return rotate_left(par, n, r, hl0, hrr, rl, hrl0);
    if (rl == nullptr) return n;
    {
      std::lock_guard<Lock> grl(rl->lock);
      const int hrl = rl->height.load(std::memory_order_relaxed);
      if (hrr >= hrl) return rotate_left(par, n, r, hl0, hrr, rl, hrl);
      const int hrlr =
          height_of(rl->child[kRight].load(std::memory_order_relaxed));
      const int b = hrr - hrlr;
      if (b >= -1 && b <= 1 &&
          !((hrr == 0 || hrlr == 0) &&
            r->value.load(std::memory_order_relaxed) == nullptr)) {
        return rotate_left_over_right(par, n, r, hl0, hrr, rl, hrlr);
      }
    }
    return rebalance_to_right(n, r, rl, hrr);
  }

  // Single right rotation: l rises, n shrinks. Locks held: par, n, l.
  Node* rotate_right(Node* par, Node* n, Node* l, int hr, int hll, Node* lr,
                     int hlr) {
    const std::uint64_t nv = n->version.load(std::memory_order_relaxed);
    n->version.store(nv | kShrinking, std::memory_order_release);

    const int dir =
        par->child[kLeft].load(std::memory_order_relaxed) == n ? kLeft
                                                               : kRight;
    n->child[kLeft].store(lr, std::memory_order_release);
    if (lr != nullptr) lr->parent.store(n, std::memory_order_release);
    l->child[kRight].store(n, std::memory_order_release);
    n->parent.store(l, std::memory_order_release);
    par->child[dir].store(l, std::memory_order_release);
    l->parent.store(par, std::memory_order_release);

    const int hn_repl = 1 + std::max(hlr, hr);
    n->height.store(hn_repl, std::memory_order_relaxed);
    l->height.store(1 + std::max(hll, hn_repl), std::memory_order_relaxed);

    n->version.store(nv + kOvlIncr, std::memory_order_release);

    // Damage analysis (which node might still need repair?).
    const int bal_n = hlr - hr;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((lr == nullptr || hr == 0) &&
        n->value.load(std::memory_order_relaxed) == nullptr) {
      return n;  // n may be an unlinkable routing node now
    }
    const int bal_l = hll - hn_repl;
    if (bal_l < -1 || bal_l > 1) return l;
    return par;
  }

  Node* rotate_left(Node* par, Node* n, Node* r, int hl, int hrr, Node* rl,
                    int hrl) {
    const std::uint64_t nv = n->version.load(std::memory_order_relaxed);
    n->version.store(nv | kShrinking, std::memory_order_release);

    const int dir =
        par->child[kLeft].load(std::memory_order_relaxed) == n ? kLeft
                                                               : kRight;
    n->child[kRight].store(rl, std::memory_order_release);
    if (rl != nullptr) rl->parent.store(n, std::memory_order_release);
    r->child[kLeft].store(n, std::memory_order_release);
    n->parent.store(r, std::memory_order_release);
    par->child[dir].store(r, std::memory_order_release);
    r->parent.store(par, std::memory_order_release);

    const int hn_repl = 1 + std::max(hrl, hl);
    n->height.store(hn_repl, std::memory_order_relaxed);
    r->height.store(1 + std::max(hrr, hn_repl), std::memory_order_relaxed);

    n->version.store(nv + kOvlIncr, std::memory_order_release);

    const int bal_n = hrl - hl;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((rl == nullptr || hl == 0) &&
        n->value.load(std::memory_order_relaxed) == nullptr) {
      return n;
    }
    const int bal_r = hrr - hn_repl;
    if (bal_r < -1 || bal_r > 1) return r;
    return par;
  }

  // Double rotation: lr rises over l and n. Locks held: par, n, l, lr.
  Node* rotate_right_over_left(Node* par, Node* n, Node* l, int hr, int hll,
                               Node* lr, int hlrl) {
    const std::uint64_t nv = n->version.load(std::memory_order_relaxed);
    const std::uint64_t lv = l->version.load(std::memory_order_relaxed);
    n->version.store(nv | kShrinking, std::memory_order_release);
    l->version.store(lv | kShrinking, std::memory_order_release);

    const int dir =
        par->child[kLeft].load(std::memory_order_relaxed) == n ? kLeft
                                                               : kRight;
    Node* lrl = lr->child[kLeft].load(std::memory_order_relaxed);
    Node* lrr = lr->child[kRight].load(std::memory_order_relaxed);
    const int hlrr = height_of(lrr);

    n->child[kLeft].store(lrr, std::memory_order_release);
    if (lrr != nullptr) lrr->parent.store(n, std::memory_order_release);
    l->child[kRight].store(lrl, std::memory_order_release);
    if (lrl != nullptr) lrl->parent.store(l, std::memory_order_release);
    lr->child[kLeft].store(l, std::memory_order_release);
    l->parent.store(lr, std::memory_order_release);
    lr->child[kRight].store(n, std::memory_order_release);
    n->parent.store(lr, std::memory_order_release);
    par->child[dir].store(lr, std::memory_order_release);
    lr->parent.store(par, std::memory_order_release);

    const int hn_repl = 1 + std::max(hlrr, hr);
    n->height.store(hn_repl, std::memory_order_relaxed);
    const int hl_repl = 1 + std::max(hll, hlrl);
    l->height.store(hl_repl, std::memory_order_relaxed);
    lr->height.store(1 + std::max(hn_repl, hl_repl),
                     std::memory_order_relaxed);

    n->version.store(nv + kOvlIncr, std::memory_order_release);
    l->version.store(lv + kOvlIncr, std::memory_order_release);

    const int bal_n = hlrr - hr;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((lrr == nullptr || hr == 0) &&
        n->value.load(std::memory_order_relaxed) == nullptr) {
      return n;
    }
    const int bal_lr = hl_repl - hn_repl;
    if (bal_lr < -1 || bal_lr > 1) return lr;
    return par;
  }

  Node* rotate_left_over_right(Node* par, Node* n, Node* r, int hl, int hrr,
                               Node* rl, int hrlr) {
    const std::uint64_t nv = n->version.load(std::memory_order_relaxed);
    const std::uint64_t rv = r->version.load(std::memory_order_relaxed);
    n->version.store(nv | kShrinking, std::memory_order_release);
    r->version.store(rv | kShrinking, std::memory_order_release);

    const int dir =
        par->child[kLeft].load(std::memory_order_relaxed) == n ? kLeft
                                                               : kRight;
    Node* rll = rl->child[kLeft].load(std::memory_order_relaxed);
    Node* rlr = rl->child[kRight].load(std::memory_order_relaxed);
    const int hrll = height_of(rll);

    n->child[kRight].store(rll, std::memory_order_release);
    if (rll != nullptr) rll->parent.store(n, std::memory_order_release);
    r->child[kLeft].store(rlr, std::memory_order_release);
    if (rlr != nullptr) rlr->parent.store(r, std::memory_order_release);
    rl->child[kRight].store(r, std::memory_order_release);
    r->parent.store(rl, std::memory_order_release);
    rl->child[kLeft].store(n, std::memory_order_release);
    n->parent.store(rl, std::memory_order_release);
    par->child[dir].store(rl, std::memory_order_release);
    rl->parent.store(par, std::memory_order_release);

    const int hn_repl = 1 + std::max(hrll, hl);
    n->height.store(hn_repl, std::memory_order_relaxed);
    const int hr_repl = 1 + std::max(hrr, hrlr);
    r->height.store(hr_repl, std::memory_order_relaxed);
    rl->height.store(1 + std::max(hn_repl, hr_repl),
                     std::memory_order_relaxed);

    n->version.store(nv + kOvlIncr, std::memory_order_release);
    r->version.store(rv + kOvlIncr, std::memory_order_release);

    const int bal_n = hrll - hl;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((rll == nullptr || hl == 0) &&
        n->value.load(std::memory_order_relaxed) == nullptr) {
      return n;
    }
    const int bal_rl = hr_repl - hn_repl;
    if (bal_rl < -1 || bal_rl > 1) return rl;
    return par;
  }

  // ── reclamation hooks ─────────────────────────────────────────────

  void retire_node(Node* n) {
    if constexpr (Traits::kReclaim) {
      rcu_.retire(
          n, [](void* p, void*) { delete static_cast<Node*>(p); }, nullptr);
    } else {
      (void)n;
    }
  }

  void retire_value(const Value* v) {
    if constexpr (Traits::kReclaim) {
      rcu_.retire(
          const_cast<Value*>(v),
          [](void* p, void*) { delete static_cast<Value*>(p); }, nullptr);
    } else {
      (void)v;
    }
  }

  // Returns the recomputed height, or -1 on violation.
  int audit(const Node* n, const Node* parent, const Key* lo, const Key* hi,
            std::size_t& count, int& imbalance, std::string* error) const {
    if (n == nullptr) return 0;
    if (n->parent.load(std::memory_order_relaxed) != parent) {
      return set_error(error, "bad parent pointer"), -1;
    }
    if (is_unlinked(n->version.load(std::memory_order_relaxed))) {
      return set_error(error, "unlinked node reachable"), -1;
    }
    if (n->bound != Bound::kKey) return set_error(error, "bad bound"), -1;
    const Key& k = n->key();
    if ((lo != nullptr && !(*lo < k)) || (hi != nullptr && !(k < *hi))) {
      return set_error(error, "BST order violated"), -1;
    }
    if (n->value.load(std::memory_order_relaxed) != nullptr) ++count;
    const int hl = audit(n->child[kLeft].load(std::memory_order_relaxed), n,
                         lo, &k, count, imbalance, error);
    if (hl < 0) return -1;
    const int hr = audit(n->child[kRight].load(std::memory_order_relaxed), n,
                         &k, hi, count, imbalance, error);
    if (hr < 0) return -1;
    imbalance = std::max({imbalance, hl - hr, hr - hl});
    return 1 + std::max(hl, hr);
  }

  static bool set_error(std::string* error, const char* what) {
    if (error != nullptr) *error = what;
    return false;
  }

  Rcu& rcu_;
  Node* root_holder_;
  std::atomic<std::int64_t> size_{0};
};

}  // namespace citrus::baselines
