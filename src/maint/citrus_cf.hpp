// CITRUS-CF — Citrus with a background structural maintainer (DESIGN.md §9).
//
// The Citrus tree is deliberately unbalanced: the paper's protocol never
// restructures, so sequential insertion (or a Zipf-hot key range) degrades
// it toward a linked list and O(log n) lookups toward O(n). This layer
// closes that hole without touching the logical operations, in the spirit
// of "A Concurrency-Optimal Binary Search Tree" (Aksenov et al.) —
// structural and logical changes are separated — using the atomic
// multi-node-replacement template of "A General Technique for Non-blocking
// Trees" (Brown et al.): a background thread rebuilds a deep subtree into
// a perfectly balanced PRIVATE copy and publishes it by swinging exactly
// one parent child-link with a release CAS.
//
// The protocol, per offending subtree:
//
//   probe    — one read-side pass computes per-subtree {size, height} and
//              selects the topmost subtrees with height > c·log2(size)
//              above a size floor. Purely heuristic: the tree may change
//              under the probe; safety never depends on it.
//   collect  — a fresh read-side pass walks the subtree in order,
//              recording every node's (generation, even seqlock version)
//              and copying the key/value pairs. Any odd version or marked
//              node aborts (a writer is mid-flight).
//   build    — a perfectly balanced copy is built from the node pool while
//              holding nothing (the cop discipline: allocate before locks;
//              a losing copy is returned to the pool, no grace period owed).
//   lock     — bounded try-locks on the parent AND every collected node.
//              Every structural publish into the subtree requires the lock
//              of an in-subtree node (or of the parent, for the subtree
//              root's slot), so full coverage gives mutual exclusion with
//              every updater; any lock failure aborts — an updater mid-
//              protocol (e.g. a two-child erase awaiting its grace period,
//              paper Line 74) holds its locks and wins automatically.
//   validate — under the locks: the parent's generation is unchanged, it
//              is unmarked and still points at the collected subtree root;
//              every collected node's generation and seqlock version are
//              unchanged (versions are monotonic across pool recycling —
//              citrus_node.hpp — so this is ABA-proof). Any structural
//              change between collect and lock bumped an in-subtree
//              version or replaced the root edge, so validation catches
//              exactly the updates that raced us; we abort, they win
//              (counted in maint_validation_failures).
//   publish  — mark every old node (Lemma 1: only marked nodes become
//              unreachable), bump the parent's seqlock around one release
//              CAS of the parent edge. In-flight validated scans that
//              walked through the parent see the version change at their
//              validation fence and retry, exactly as for cop publishes;
//              wait-free searches keep reading the frozen old subtree —
//              the rebuild preserves content, so either copy answers
//              correctly — until the grace period below.
//   retire   — the old subtree is queued behind a start_grace_period()
//              cookie and recycled by later poll() checks, so reclamation
//              never blocks the maintainer loop (fault::Site::kReclaimDelay
//              fires between the elapsed grace period and the recycling,
//              as for every other deferred-reclaim path).
//
// Because the maintainer recycles replaced subtrees through the pool even
// when the update-side Traits::kReclaim is off, its Traits must set
// kMaintainerRecycles so the base tree keeps every unlocked traversal
// inside a read-side critical section (CitrusTree::MaybeReadGuard).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "citrus/citrus_node.hpp"
#include "citrus/citrus_traverse.hpp"
#include "citrus/citrus_tree.hpp"
#include "citrus/update_status.hpp"
#include "fault/fault.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/guarded_ptr.hpp"
#include "rcu/rcu.hpp"
#include "sync/backoff.hpp"

namespace citrus::maint {

// Maintainer-aware trait tiers: identical to the core tiers except that
// kMaintainerRecycles forces read-side critical sections on (see above).
// Tunables a test Traits may override: kMaintDepthFactor (c in the
// depth > c·log2(size) trigger), kMaintSizeFloor (smallest subtree worth
// rebuilding), kMaintIntervalMicros (wakeup period), kMaintLockAttempts
// (per-node try-lock budget — deliberately small: aborting is cheap).
struct CfDefaultTraits : core::DefaultTraits {
  static constexpr bool kMaintainerRecycles = true;
};

struct CfBenchTraits : core::BenchTraits {
  static constexpr bool kMaintainerRecycles = true;
};

// LockSet variant without the fixed capacity of core::LockSet (an update
// protocol holds at most five locks; a rebuild holds one per collected
// node). Same bounded try-lock discipline, so maintainer deadlock is
// impossible by construction and a blocked rebuild aborts instead of
// stalling updaters.
template <typename Node>
class DynamicLockSet {
 public:
  explicit DynamicLockSet(std::uint32_t attempts) : attempts_(attempts) {}
  DynamicLockSet(const DynamicLockSet&) = delete;
  DynamicLockSet& operator=(const DynamicLockSet&) = delete;
  ~DynamicLockSet() { release_all(); }

  bool acquire_timed(Node* n) {
    sync::Backoff bo;
    for (std::uint32_t i = 0; i < attempts_; ++i) {
      if (n->lock.try_lock()) {
        held_.push_back(n);
        return true;
      }
      bo.pause();
    }
    return false;
  }

  void release_all() {
    while (!held_.empty()) {
      held_.back()->lock.unlock();
      held_.pop_back();
    }
  }

 private:
  std::uint32_t attempts_;
  std::vector<Node*> held_;
};

template <typename Key, typename Value,
          rcu::rcu_domain Rcu = rcu::CounterFlagRcu,
          typename Traits = CfDefaultTraits>
class CitrusCfTree : public core::CitrusTree<Key, Value, Rcu, Traits> {
  using Base = core::CitrusTree<Key, Value, Rcu, Traits>;
  using typename Base::Node;
  using typename Base::VersionSample;
  using Base::pool_;
  using Base::rcu_;
  using Base::root_;
  using Base::validate_versions;

  static_assert(Base::kMaintainerRecyclesNodes,
                "CitrusCfTree recycles replaced subtrees through the pool "
                "regardless of Traits::kReclaim; its Traits must set "
                "kMaintainerRecycles so unlocked traversals stay inside "
                "read-side critical sections (use CfDefaultTraits / "
                "CfBenchTraits or derive from them)");

 public:
  using key_type = Key;
  using mapped_type = Value;
  using rcu_type = Rcu;

  explicit CitrusCfTree(Rcu& domain) : Base(domain) {
    if constexpr (background_thread()) {
      thread_ = std::thread([this] { maintainer_main(); });
    }
  }

  ~CitrusCfTree() {
    {
      std::lock_guard<std::mutex> lk(wake_mutex_);
      stop_.store(true, std::memory_order_relaxed);
    }
    wake_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    // The maintainer's epilogue drained its queue behind real grace
    // periods; anything still pending (a maintain_now() caller racing
    // destruction is a caller bug, but an abandoned-on-stop pass is not)
    // is recycled quiescently — destruction is single-owner, no readers.
    check::ScopedQuiescent quiescent;
    for (Batch& b : pending_) {
      for (Node* n : b.nodes) pool_.recycle(n);
    }
    pending_.clear();
  }

  // ── Tuning knobs (Traits overrides) ───────────────────────────────

  static constexpr double depth_factor() noexcept {
    if constexpr (requires { Traits::kMaintDepthFactor; }) {
      return Traits::kMaintDepthFactor;
    } else {
      return 2.0;
    }
  }
  static constexpr std::size_t size_floor() noexcept {
    if constexpr (requires { Traits::kMaintSizeFloor; }) {
      return Traits::kMaintSizeFloor;
    } else {
      return 64;
    }
  }
  static constexpr std::uint32_t lock_attempts() noexcept {
    if constexpr (requires { Traits::kMaintLockAttempts; }) {
      return Traits::kMaintLockAttempts;
    } else {
      return 64;
    }
  }
  static constexpr unsigned interval_micros() noexcept {
    if constexpr (requires { Traits::kMaintIntervalMicros; }) {
      return Traits::kMaintIntervalMicros;
    } else {
      return 500;
    }
  }
  // Manual mode: no background thread at all; maintenance happens only
  // when some client thread calls maintain_now(). For embedders that pool
  // their own maintenance work — and for tests that need a deterministic
  // single driver.
  static constexpr bool background_thread() noexcept {
    if constexpr (requires { Traits::kMaintBackgroundThread; }) {
      return Traits::kMaintBackgroundThread;
    } else {
      return true;
    }
  }

  // The rebuild trigger: a subtree of `size` real nodes is an offender
  // when its height (nodes on the longest path) exceeds this bound. A
  // perfectly balanced rebuild leaves height ceil(log2(size+1)), so each
  // rebuild restores a factor-`depth_factor` margin before the next one.
  static std::size_t depth_bound(std::size_t size) noexcept {
    if (size < 2) return 1;
    const double b =
        depth_factor() * std::log2(static_cast<double>(size) + 1.0);
    return std::max<std::size_t>(4, static_cast<std::size_t>(std::ceil(b)));
  }

  // ── Update side (shadows: Base logic + opportunistic depth sampling;
  //    the read side and the ordered operations are inherited) ────────
  //
  // The base class dispatches its bool wrappers to its own try_* forms
  // non-virtually, so the wrappers are shadowed here as well. Sampling is
  // 1-in-64 successful structural updates, one extra root-to-key walk on
  // the sampled operation and nothing at all on the read path.

  bool insert(const Key& key, const Value& value) {
    return try_insert(key, value) == core::UpdateStatus::kSuccess;
  }
  bool erase(const Key& key) {
    return try_erase(key) == core::UpdateStatus::kSuccess;
  }
  bool assign(const Key& key, const Value& value) {
    return try_assign(key, value) == core::UpdateStatus::kSuccess;
  }
  bool insert_or_assign(const Key& key, const Value& value) {
    for (;;) {
      switch (try_insert(key, value)) {
        case core::UpdateStatus::kSuccess:
          return true;
        case core::UpdateStatus::kNoMemory:
          return false;
        case core::UpdateStatus::kNoOp:
          break;
      }
      switch (try_assign(key, value)) {
        case core::UpdateStatus::kSuccess:
        case core::UpdateStatus::kNoMemory:
          return false;
        case core::UpdateStatus::kNoOp:
          break;  // the key vanished between the two calls; start over
      }
    }
  }

  core::UpdateStatus try_insert(const Key& key, const Value& value) {
    const core::UpdateStatus s =
        with_direct_reclaim([&] { return Base::try_insert(key, value); });
    if (s == core::UpdateStatus::kSuccess) maybe_sample(key);
    return s;
  }
  core::UpdateStatus try_assign(const Key& key, const Value& value) {
    return with_direct_reclaim([&] { return Base::try_assign(key, value); });
  }
  core::UpdateStatus try_erase(const Key& key) {
    const core::UpdateStatus s =
        with_direct_reclaim([&] { return Base::try_erase(key); });
    if (s == core::UpdateStatus::kSuccess) maybe_sample(key);
    return s;
  }

  // ── Introspection ─────────────────────────────────────────────────

  core::CitrusStats stats() const {
    core::CitrusStats out = Base::stats();
    // Maintainer counters live outside AtomicStats (they are not gated on
    // Traits::kStats: the maintainer's own bookkeeping is what tests and
    // the depth bench steer by, in bench traits too).
    out.maint_rebuilds = maint_rebuilds_.load(std::memory_order_relaxed);
    out.maint_validation_failures =
        maint_validation_failures_.load(std::memory_order_relaxed);
    out.maint_nodes_rebuilt =
        maint_nodes_rebuilt_.load(std::memory_order_relaxed);
    return out;
  }

  // Quiescent (w.r.t. client operations) structural audit. The gate
  // excludes the maintainer for the duration, so "no concurrent client
  // operations" is the whole precondition — the background thread needs
  // no separate pause.
  core::StructureReport check_structure() const {
    std::lock_guard<std::mutex> gate(gate_);
    core::StructureReport rep = Base::check_structure();
    rep.rebuilds = maint_rebuilds_.load(std::memory_order_relaxed);
    return rep;
  }

  // Nodes replaced by published rebuilds and still awaiting their grace
  // period (backlog observability for the fault-lane tests).
  std::size_t pending_reclaim_nodes() const noexcept {
    return pending_nodes_.load(std::memory_order_relaxed);
  }

  // Synchronous maintenance: probe + rebuild + a blocking drain of the
  // retire queue, on the CALLER's thread (which must hold an
  // Rcu::Registration, like any thread operating on the tree). The
  // deterministic handle the tests and the depth bench settle on.
  void maintain_now() {
    std::lock_guard<std::mutex> gate(gate_);
    maintenance_pass();
    drain_pending(true);
  }

 private:
  // One real node collected for a rebuild: the revalidation triple. The
  // pointers deliberately outlive their read-side section — the slots are
  // type-stable (node_pool.hpp), and the generation + seqlock-version
  // checks under the full lock set prove the subtree is still exactly
  // what was collected before anything is trusted.
  struct OldNode {
    Node* n;
    std::uint64_t gen;
    std::uint64_t version;
  };

  // A deep subtree nominated by the probe: the parent edge to revalidate.
  struct Offender {
    Node* parent;
    int dir;
    std::uint64_t parent_gen;
  };

  // A published rebuild's replaced nodes, awaiting one grace period.
  static constexpr bool kGpPoll = rcu::gp_poll_domain<Rcu>;
  struct Batch {
    rcu::GpCookie cookie = 0;
    std::vector<Node*> nodes;
  };

  // Direct reclaim, the updater-side counterpart of the background drains:
  // a capped pool counts retired-but-unreclaimed rebuild victims as live,
  // so a kNoMemory verdict may be pressure of the maintainer's own making.
  // Nothing advances the grace-period sequence by itself — poll() is a pure
  // probe — so a workload that never synchronizes (inserts only, say) would
  // otherwise leave the backlog pinned and updaters wedged at the cap for
  // good. Drive the outstanding grace periods to completion on THIS thread,
  // hand the backlog to the pool, and retry the operation once. The caller
  // already holds a Registration (precondition of every tree operation) and
  // is outside any read-side section here, so blocking in synchronize is
  // legal; gate_ serializes the queue handoff against the maintainer.
  template <typename Op>
  core::UpdateStatus with_direct_reclaim(Op&& op) {
    core::UpdateStatus s = op();
    if (s == core::UpdateStatus::kNoMemory &&
        pending_nodes_.load(std::memory_order_relaxed) != 0) {
      {
        std::lock_guard<std::mutex> gate(gate_);
        drain_pending(true);
      }
      s = op();
    }
    return s;
  }

  static constexpr std::uint64_t kSampleMask = 63;  // 1-in-64 updates
  static constexpr std::size_t kForceProbeEvery = 64;    // wakeups
  static constexpr std::size_t kMaxPendingNodes = 1u << 16;

  // ── Depth sampling (update-path shadows call this) ────────────────

  void maybe_sample(const Key& key) {
    if ((sample_ctr_.fetch_add(1, std::memory_order_relaxed) & kSampleMask) !=
        0) {
      return;
    }
    std::size_t depth = 0;
    {
      rcu::ReadGuard<Rcu> guard(rcu_);
      rcu::protected_ptr<const Node> curr =
          root_.load()->child[core::kRight].load_protected();
      while (curr != nullptr) {
        check::on_node_access(curr.get());
        if (curr->kind == core::NodeKind::kReal) ++depth;
        const int c = curr->compare(key);
        if (c == 0) break;
        curr = curr->child[c < 0 ? core::kLeft : core::kRight]
                   .load_protected();
      }
    }
    std::size_t prev = sampled_depth_.load(std::memory_order_relaxed);
    while (depth > prev &&
           !sampled_depth_.compare_exchange_weak(prev, depth,
                                                 std::memory_order_relaxed)) {
    }
    if (depth > depth_bound(Base::size())) wake_cv_.notify_one();
  }

  // ── Maintainer thread ─────────────────────────────────────────────

  void maintainer_main() {
    typename Rcu::Registration reg(rcu_);
    std::size_t wakeups = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(wake_mutex_);
        if (!stop_.load(std::memory_order_relaxed)) {
          wake_cv_.wait_for(lk, std::chrono::microseconds(interval_micros()));
        }
        if (stop_.load(std::memory_order_relaxed)) break;
      }
      std::lock_guard<std::mutex> gate(gate_);
      drain_pending(false);
      const std::size_t hint =
          sampled_depth_.exchange(0, std::memory_order_relaxed);
      const bool force = (++wakeups % kForceProbeEvery) == 0;
      if (force || hint > depth_bound(Base::size())) {
        maintenance_pass();
      }
      if (pending_nodes_.load(std::memory_order_relaxed) > kMaxPendingNodes) {
        drain_pending(true);  // backpressure: bound the retire backlog
      }
    }
    // Epilogue: pay the outstanding grace periods while this thread still
    // holds its registration, so destruction inherits an empty queue.
    std::lock_guard<std::mutex> gate(gate_);
    drain_pending(true);
  }

  void maintenance_pass() {
    const std::vector<Offender> offenders = probe();
    for (const Offender& o : offenders) {
      if (stop_.load(std::memory_order_relaxed)) break;
      if (!rebuild_subtree(o)) {
        maint_validation_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      drain_pending(false);
    }
  }

  // One read-side pass: post-order {size, height} over the real tree,
  // then a pre-order sweep selecting the TOPMOST offenders (rebuilding a
  // subtree rebalances everything under it, so descending into an
  // offender is never useful). The tree may mutate under this walk — the
  // result is a hint; rebuild_subtree re-establishes every fact it needs.
  // The parent pointers escape this section re-protected by the recorded
  // generation, the standard generation-validated handoff of get().
  // rcu-analyze: allow (probe is heuristic; escaped parents are
  // generation-validated by rebuild_subtree before anything is trusted)
  std::vector<Offender> probe() {
    std::vector<Offender> out;
    struct Info {
      std::size_t size;
      std::size_t height;
    };
    std::unordered_map<const Node*, Info> info;
    rcu::ReadGuard<Rcu> guard(rcu_);
    rcu::protected_ptr<Node> inf =
        root_.load()->child[core::kRight].load_protected();
    Node* top = inf->child[core::kLeft].load_protected().get();
    if (top == nullptr) return out;
    // Visit cap: a heavily mutating tree can stretch (never cycle) a
    // concurrent walk; past the cap this probe just gives up until the
    // next wakeup.
    const std::size_t cap = 4 * Base::size() + 1024;
    std::size_t visits = 0;
    struct WFrame {
      const Node* n;
      const Node* l;
      const Node* r;
      bool expanded;
    };
    std::vector<WFrame> stack;
    stack.push_back({top, nullptr, nullptr, false});
    while (!stack.empty()) {
      WFrame f = stack.back();
      stack.pop_back();
      if (f.n == nullptr || f.n->kind != core::NodeKind::kReal) continue;
      if (!f.expanded) {
        if (++visits > cap) return {};
        check::on_node_access(f.n);
        f.l = f.n->child[core::kLeft].load_protected().get();
        f.r = f.n->child[core::kRight].load_protected().get();
        f.expanded = true;
        stack.push_back(f);
        stack.push_back({f.l, nullptr, nullptr, false});
        stack.push_back({f.r, nullptr, nullptr, false});
      } else {
        const auto li = info.find(f.l);
        const auto ri = info.find(f.r);
        const Info l = li != info.end() ? li->second : Info{0, 0};
        const Info r = ri != info.end() ? ri->second : Info{0, 0};
        info[f.n] = {1 + l.size + r.size, 1 + std::max(l.height, r.height)};
      }
    }
    struct SFrame {
      Node* parent;
      int dir;
    };
    std::vector<SFrame> sel;
    sel.push_back({inf.get(), core::kLeft});
    while (!sel.empty()) {
      const SFrame s = sel.back();
      sel.pop_back();
      Node* child = s.parent->child[s.dir].load_protected().get();
      if (child == nullptr || child->kind != core::NodeKind::kReal) continue;
      const auto it = info.find(child);
      if (it == info.end()) continue;  // appeared mid-probe: skip this round
      const Info& ci = it->second;
      if (ci.size >= size_floor() && ci.height > depth_bound(ci.size)) {
        out.push_back({s.parent, s.dir,
                       s.parent->generation.load(std::memory_order_acquire)});
        continue;  // topmost offender: its subtree is covered by the rebuild
      }
      sel.push_back({child, core::kLeft});
      sel.push_back({child, core::kRight});
    }
    return out;
  }

  // The collect → build → lock → validate → publish → retire sequence
  // described in the header comment. Returns false only for an ABORT
  // (lock failure, revalidation failure, allocation failure) — the caller
  // counts those; "nothing to do" outcomes return true.
  bool rebuild_subtree(const Offender& o) {
    std::vector<OldNode> old;
    std::vector<std::pair<Key, Value>> pairs;
    std::size_t height = 0;
    Node* sub = nullptr;
    {
      // Collect. The subtree root is re-read through the validated parent
      // edge rather than trusted from the probe, so a recycled-and-reused
      // slot cannot smuggle a stale snapshot in.
      rcu::ReadGuard<Rcu> guard(rcu_);
      check::on_node_header_access(o.parent);
      if (o.parent->generation.load(std::memory_order_acquire) !=
              o.parent_gen ||
          o.parent->marked.load(std::memory_order_acquire)) {
        return false;  // the parent moved on since the probe
      }
      rcu::protected_ptr<Node> sp = o.parent->child[o.dir].load_protected();
      if (sp == nullptr || sp->kind != core::NodeKind::kReal) {
        return true;  // subtree vanished: nothing to rebuild
      }
      // In-order walk recording the revalidation triple per node and the
      // payload pairs. A marked node or an odd seqlock version means an
      // updater is mid-flight in the subtree — abort early, it wins.
      struct IFrame {
        Node* n;
        std::size_t depth;
      };
      std::vector<IFrame> istack;
      Node* n = sp.get();
      std::size_t depth = 0;
      bool ok = true;
      const auto visit = [&](Node* v) {
        const std::uint64_t ver =
            v->version.load(std::memory_order_acquire);
        if ((ver & 1) != 0 ||
            v->marked.load(std::memory_order_acquire) ||
            v->kind != core::NodeKind::kReal) {
          ok = false;
          return;
        }
        check::on_node_access(v);
        old.push_back(
            {v, v->generation.load(std::memory_order_acquire), ver});
      };
      while (ok && (n != nullptr || !istack.empty())) {
        while (n != nullptr) {
          visit(n);
          if (!ok) break;
          ++depth;
          height = std::max(height, depth);
          istack.push_back({n, depth});
          n = n->child[core::kLeft].load_protected().get();
        }
        if (!ok || istack.empty()) break;
        const IFrame f = istack.back();
        istack.pop_back();
        depth = f.depth;
        // Adjacent-duplicate dedup: the two-child-erase window (paper
        // Figure 4) can briefly expose the successor's copy and the
        // original in adjacent in-order positions.
        if (pairs.empty() || pairs.back().first < f.n->key()) {
          pairs.push_back({f.n->key(), f.n->value()});
        }
        n = f.n->child[core::kRight].load_protected().get();
      }
      if (!ok) return false;
      // The standard generation-validated handoff: the edge is re-checked
      // under the full lock set before anything is published.
      // rcu-analyze: allow (generation+version-validated handoff to the
      // locking phase; any change aborts the rebuild)
      sub = sp.escape();
    }

    if (pairs.size() < size_floor() || height <= depth_bound(pairs.size())) {
      return true;  // shrank or rebalanced since the probe: nothing to do
    }

    // Build the balanced private copy while holding nothing.
    bool oom = false;
    Node* fresh = build_balanced(pairs, 0, pairs.size(), &oom);
    if (oom) {
      // The build may have starved on this maintainer's own retire backlog
      // (a capped pool counts awaiting-GP slots as live). gate_ is already
      // held: drive the outstanding grace periods now so the memory is back
      // for the next attempt — and for any updater hitting the same cap.
      drain_pending(true);
      return false;
    }

    // Lock the parent and the entire collected subtree (see the protocol
    // argument in the header comment).
    DynamicLockSet<Node> locks(lock_attempts());
    if (!locks.acquire_timed(o.parent)) {
      discard_subtree(fresh);
      return false;
    }
    for (const OldNode& e : old) {
      if (!locks.acquire_timed(e.n)) {
        discard_subtree(fresh);
        return false;
      }
    }

    // Validate under the locks.
    if (o.parent->generation.load(std::memory_order_acquire) !=
            o.parent_gen ||
        o.parent->marked.load(std::memory_order_acquire) ||
        o.parent->child[o.dir].load_locked() != sub) {
      discard_subtree(fresh);
      return false;
    }
    std::vector<VersionSample> vset;
    vset.reserve(old.size());
    for (const OldNode& e : old) {
      if (e.n->generation.load(std::memory_order_acquire) != e.gen) {
        discard_subtree(fresh);
        return false;
      }
      vset.push_back({e.n, e.version});
    }
    if (!validate_versions(vset)) {
      discard_subtree(fresh);
      return false;
    }

    // Publish: mark first (only marked nodes may become unreachable), then
    // one release CAS of the parent edge under its seqlock bump. The CAS
    // cannot lose — the slot was validated under the full lock set — so
    // only weak-CAS spurious failure loops here.
    for (const OldNode& e : old) {
      e.n->marked.store(true, std::memory_order_release);
    }
    o.parent->scan_write_begin();
    Node* expected = sub;
    while (!o.parent->child[o.dir].compare_exchange_weak(expected, fresh) &&
           expected == sub) {
    }
    assert(expected == sub && "validated edge changed under the full lock set");
    o.parent->scan_write_end();
    locks.release_all();

    // Retire the old subtree behind a deferred grace period; pre-existing
    // wait-free searches may still be walking it, and its frozen content
    // answers them correctly (the rebuild preserved it exactly).
    Batch b;
    b.nodes.reserve(old.size());
    for (const OldNode& e : old) b.nodes.push_back(e.n);
    if constexpr (kGpPoll) b.cookie = rcu_.start_grace_period();
    pending_nodes_.fetch_add(b.nodes.size(), std::memory_order_relaxed);
    pending_.push_back(std::move(b));

    maint_rebuilds_.fetch_add(1, std::memory_order_relaxed);
    maint_nodes_rebuilt_.fetch_add(pairs.size(), std::memory_order_relaxed);
    return true;
  }

  // Perfectly balanced private build over pairs[lo, hi). Never-published
  // nodes; on any allocation failure the partials go straight back to the
  // pool (no grace period owed) and *oom aborts the whole rebuild.
  // rcu-analyze: quiescent (private never-published copies under
  // construction; the publishing CAS in rebuild_subtree is the release)
  Node* build_balanced(const std::vector<std::pair<Key, Value>>& pairs,
                       std::size_t lo, std::size_t hi, bool* oom) {
    if (lo >= hi) return nullptr;
    const std::size_t mid = lo + (hi - lo) / 2;
    Node* left = build_balanced(pairs, lo, mid, oom);
    if (*oom) return nullptr;
    Node* right = build_balanced(pairs, mid + 1, hi, oom);
    if (*oom) {
      discard_subtree(left);
      return nullptr;
    }
    Node* n = pool_.allocate(false, core::NodeKind::kReal, &pairs[mid].first,
                             &pairs[mid].second, left, right);
    if (n == nullptr) {
      discard_subtree(left);
      discard_subtree(right);
      *oom = true;
      return nullptr;
    }
    return n;
  }

  // Return a never-published private subtree to the pool (cop's
  // discard_copy, subtree-shaped): no reader can hold any of it, so no
  // grace period is owed; the marked store satisfies recycle()'s protocol.
  void discard_subtree(Node* n) {
    // rcu-analyze: quiescent (private never-published copies; no reader
    // can reach these links, so the unguarded child loads are safe)
    std::vector<Node*> stack;
    if (n != nullptr) stack.push_back(n);
    while (!stack.empty()) {
      Node* d = stack.back();
      stack.pop_back();
      if (Node* l = d->child[core::kLeft].unguarded_load()) {
        stack.push_back(l);
      }
      if (Node* r = d->child[core::kRight].unguarded_load()) {
        stack.push_back(r);
      }
      d->marked.store(true, std::memory_order_relaxed);
      pool_.recycle(d);
    }
  }

  // Recycle retired batches whose grace period has elapsed; with `block`,
  // pay for the rest. Caller holds gate_. On a domain without the deferred
  // API the drain degrades to one blocking synchronize per batch.
  void drain_pending(bool block) {
    while (!pending_.empty()) {
      Batch& b = pending_.front();
      if constexpr (kGpPoll) {
        if (!rcu_.poll(b.cookie)) {
          if (!block) return;
          rcu_.synchronize(b.cookie);
        }
      } else {
        rcu_.synchronize();
      }
      // Fault site: the batch's grace period has elapsed; its callbacks
      // (the recycles below) have not yet run. rcu-lint: allow (annotated
      // injection hook, not a node access).
      fault::inject_stall(fault::Site::kReclaimDelay);
      for (Node* n : b.nodes) pool_.recycle(n);
      pending_nodes_.fetch_sub(b.nodes.size(), std::memory_order_relaxed);
      pending_.pop_front();
    }
  }

  // Serializes maintenance passes (thread loop, maintain_now,
  // check_structure, direct reclaim) against each other. Never held across
  // the wakeup sleep; blocking drains do hold it while a grace period is
  // driven, which is safe: no reader ever waits on gate_ from inside a
  // read-side section.
  mutable std::mutex gate_;
  std::deque<Batch> pending_;
  std::atomic<std::size_t> pending_nodes_{0};

  std::atomic<std::uint64_t> sample_ctr_{0};
  std::atomic<std::size_t> sampled_depth_{0};

  std::atomic<std::uint64_t> maint_rebuilds_{0};
  std::atomic<std::uint64_t> maint_validation_failures_{0};
  std::atomic<std::uint64_t> maint_nodes_rebuilt_{0};

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::thread thread_;  // last member: starts after everything above
};

}  // namespace citrus::maint
