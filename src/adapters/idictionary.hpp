// Type-erased dictionary over int64 keys/values, plus the by-name registry
// used by the figure-reproduction benchmarks. Each adapter owns its RCU
// domain(s) and its tree(s); worker threads obtain a ThreadScope (RAII
// thread registration with every underlying RCU domain) before operating.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "citrus/structure_report.hpp"

namespace citrus::adapters {

// Held by a worker thread for as long as it uses the dictionary.
class ThreadScope {
 public:
  virtual ~ThreadScope() = default;
};

// One shard's slice of a StatsSnapshot. Unsharded dictionaries report a
// snapshot with an empty `shards` vector; sharded ones fill one entry per
// shard so benches can see imbalance and per-shard grace-period pressure.
struct ShardStats {
  std::uint64_t grace_periods = 0;  // synchronize_rcu calls in this shard
  std::uint64_t retries = 0;        // insert + erase validation retries
  std::uint64_t lock_timeouts = 0;  // bounded try-lock giving up
  std::uint64_t recycled_nodes = 0; // nodes returned to the pool
  std::uint64_t gp_started = 0;     // grace-period scans led in this shard
  std::uint64_t gp_shared = 0;      // calls that piggybacked on a scan
  std::size_t size = 0;             // keys resident (relaxed counter)
};

// Structured operation statistics, replacing the old ad-hoc
// `grace_periods()` accessor. Counters are maintained with relaxed
// atomics and are exact only at quiescence; implementations fill what
// they track and leave the rest zero (a plain std::uint64_t zero is
// indistinguishable from "not tracked" by design — consumers treat all
// fields as best-effort diagnostics, not invariants).
struct StatsSnapshot {
  std::uint64_t grace_periods = 0;  // synchronize_rcu calls, all domains
  std::uint64_t insert_retries = 0;
  std::uint64_t erase_retries = 0;
  std::uint64_t lock_timeouts = 0;
  std::uint64_t recycled_nodes = 0;
  // Grace-period engine breakdown (rcu/gp_seq.hpp); all zero on domains
  // without the shared sequence. gp_started counts scans actually
  // performed, gp_shared counts synchronize calls satisfied by another
  // caller's concurrent scan, gp_expedited counts expedited (flat-scan)
  // calls. Sharing ratio = gp_shared / (gp_started + gp_shared).
  std::uint64_t gp_started = 0;
  std::uint64_t gp_shared = 0;
  std::uint64_t gp_expedited = 0;
  std::vector<ShardStats> shards;   // per-shard breakdown; empty if unsharded
};

// Construction-time tuning passed to make_dictionary. Every field has a
// "let the implementation decide" default, so `Options{}` reproduces the
// historic `make_dictionary(name)` behavior exactly.
struct Options {
  // Number of hash shards for sharded dictionaries (power of two). 0 =
  // the name's built-in default (e.g. 16 for "citrus-shard16"); ignored
  // by unsharded implementations.
  std::size_t shards = 0;
  // Expected key-range of the workload; lets implementations pre-size
  // internal tables (the relativistic hash baseline). 0 = unknown.
  std::int64_t key_range_hint = 0;
  // Override the algorithm's memory-reclamation trait: true forces
  // grace-period reclamation on, false forces the paper's leak-mode off.
  // Unset keeps the name's default (e.g. "citrus" off, "citrus-reclaim"
  // on). Only meaningful for Citrus variants.
  std::optional<bool> reclaim;
};

class IDictionary {
 public:
  virtual ~IDictionary() = default;

  // Must be called (and the result kept alive) by every thread before it
  // invokes the operations below.
  virtual std::unique_ptr<ThreadScope> enter_thread() = 0;

  virtual bool insert(std::int64_t key, std::int64_t value) = 0;
  virtual bool erase(std::int64_t key) = 0;
  virtual bool contains(std::int64_t key) const = 0;
  virtual std::optional<std::int64_t> find(std::int64_t key) const = 0;
  virtual std::size_t size() const = 0;

  // Quiescent structural audit. Implementations fill the report fields
  // they can compute safely without the caller holding a ThreadScope;
  // those with no structural invariant of their own return an ok report.
  virtual core::StructureReport check_structure() const = 0;

  // Operation statistics snapshot (quiescently exact). The default is the
  // all-zero snapshot for structures that track nothing.
  virtual StatsSnapshot stats() const { return {}; }

  virtual std::string name() const = 0;
};

using DictionaryFactory =
    std::function<std::unique_ptr<IDictionary>(const Options&)>;

// Global algorithm registry. Names used by the benches, with the traits
// each maps to (BenchTraits = paper-faithful: no reclamation, no stats;
// DefaultTraits = reclamation + stats on):
//   citrus            Citrus tree, counter+flag RCU (shared gp_seq +
//                     hierarchical scan), BenchTraits
//   citrus-gpseq      explicit alias of `citrus` for the grace-period A/B
//   citrus-flat       Citrus over the paper's flat per-call scan (no
//                     grace-period sharing) — the gp_seq baseline
//   citrus-std-rcu    Citrus over the stock (global-lock) RCU — Fig 8 left;
//                     BenchTraits
//   citrus-epoch      Citrus over epoch-based RCU — RCU-choice ablation;
//                     BenchTraits
//   citrus-qsbr       Citrus over quiescent-state-based RCU (cheapest
//                     reads); BenchTraits
//   citrus-reclaim    Citrus with full memory reclamation on; DefaultTraits
//   citrus-mutex      Citrus with std::mutex node locks — lock ablation;
//                     BenchTraits + UseStdMutex
//   citrus-shard4     ShardedCitrus, 4 shards × counter+flag RCU domains;
//   citrus-shard16      per-shard node pools and retire queues. BenchTraits
//   citrus-shard64      per shard; Options::shards overrides the count.
//   rbtree            relativistic red-black tree (global writer lock)
//   bonsai            Bonsai path-copying balanced tree (global writer lock)
//   avl               Bronson optimistic AVL
//   lockfree          Natarajan-Mittal lock-free external BST
//   skiplist          Herlihy lazy skiplist
//   rcu-hash          relativistic hash table (per-bucket locks, RCU resize)
std::vector<std::string> registered_dictionaries();
std::unique_ptr<IDictionary> make_dictionary(const std::string& name,
                                             const Options& options);
// Back-compat convenience: default Options.
std::unique_ptr<IDictionary> make_dictionary(const std::string& name);

}  // namespace citrus::adapters
