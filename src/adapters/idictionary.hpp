// Type-erased dictionary over int64 keys/values, plus the by-name registry
// used by the figure-reproduction benchmarks. Each adapter owns its RCU
// domain(s) and its tree(s); worker threads obtain a ThreadScope (RAII
// thread registration with every underlying RCU domain) before operating.
//
// Beyond the point operations the paper defines (insert/delete/contains),
// the interface exposes ordered access: strict successor/predecessor,
// bounded range scans with a caller-chosen consistency level, and a
// snapshot iterator. See DESIGN.md, "Ordered operations & snapshot
// semantics", for the per-implementation guarantees.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "citrus/structure_report.hpp"
#include "citrus/update_status.hpp"

namespace citrus::adapters {

// Held by a worker thread for as long as it uses the dictionary.
class ThreadScope {
 public:
  virtual ~ThreadScope() = default;
};

// One key/value pair, as returned by the ordered operations.
struct Entry {
  std::int64_t key = 0;
  std::int64_t value = 0;
};

// Consistency level of a range scan or snapshot, weakest to strongest:
//
//   kWeak     A sequence of independent point reads (repeated succ). Keys
//             are emitted in strictly increasing order, and every emitted
//             pair was present at some instant, but concurrent updates can
//             make the scan miss a key that was present throughout, or
//             observe an insert+delete pair no single point in time
//             contains. The fallback every implementation supports.
//   kChunked  The scan is a sequence of chunks; each chunk is an atomic
//             (linearizable) view of its key interval, and chunks cover
//             disjoint, ascending intervals. Read-side critical sections
//             stay bounded by the chunk size, so long scans never stall
//             grace periods. The whole scan is not atomic: updates may be
//             observed in one chunk and missed in a later one.
//   kSnapshot The entire result is an atomic view: exactly the in-range
//             content of the structure at one linearization point.
enum class ScanConsistency { kWeak, kChunked, kSnapshot };

const char* to_string(ScanConsistency c);

// Per-scan knobs. `consistency` is the level the caller asks for; an
// implementation serves the strongest level it supports that is <= the
// request (asking for kSnapshot from a weak-only baseline yields kWeak —
// check traits().scan_consistency for the ceiling). Asking for kWeak
// forces the weak path even on implementations that can do better, which
// is how the tests exercise both strategies.
struct ScanOptions {
  ScanConsistency consistency = ScanConsistency::kChunked;
  std::size_t limit = 0;  // max pairs to visit; 0 = unlimited
  std::size_t chunk = 0;  // kChunked chunk size; 0 = implementation default
  // Visit in DESCENDING key order (hi down to lo). The consistency
  // contract is unchanged; chunks advance monotonically downward. Ordered
  // strategies serve this natively (a mirrored validated scan); the weak
  // fallback is a pred-chain of point reads.
  bool reverse = false;
};

// Range-scan callback: return true to continue, false to stop the scan.
using RangeVisitor = std::function<bool(std::int64_t key, std::int64_t value)>;

// Forward iterator over a scan's results. next() returns entries in
// strictly increasing key order, then std::nullopt. The snapshot must not
// outlive the dictionary it came from; it never pins a read-side critical
// section between next() calls, so holding one indefinitely cannot stall
// grace periods.
class ISnapshot {
 public:
  virtual ~ISnapshot() = default;
  virtual std::optional<Entry> next() = 0;
  // The level this snapshot actually provides (may be below the request).
  virtual ScanConsistency consistency() const = 0;
};

// Static capabilities of a registered dictionary, surfaced both per-name
// (available_dictionaries) and per-instance (IDictionary::traits — the
// instance view reflects Options overrides such as `reclaim`).
struct DictionaryTraits {
  bool sharded = false;      // multiple internal RCU domains / trees
  bool reclaiming = false;   // grace-period memory reclamation on
  // Strongest scan consistency the implementation can serve.
  ScanConsistency scan_consistency = ScanConsistency::kWeak;
};

struct DictionaryInfo {
  std::string name;
  DictionaryTraits traits;  // the name's default-Options traits
  // True for the one representative of each algorithm family — the set
  // the cross-algorithm figure benches sweep. False for ablation aliases
  // (RCU flavor, lock type, reclaim tier, extra shard counts), which the
  // A/B ablation benches name literally.
  bool comparison = false;
};

// One shard's slice of a StatsSnapshot. Unsharded dictionaries report a
// snapshot with an empty `shards` vector; sharded ones fill one entry per
// shard so benches can see imbalance and per-shard grace-period pressure.
struct ShardStats {
  std::uint64_t grace_periods = 0;  // synchronize_rcu calls in this shard
  std::uint64_t retries = 0;        // insert + erase validation retries
  std::uint64_t lock_timeouts = 0;  // bounded try-lock giving up
  std::uint64_t recycled_nodes = 0; // nodes returned to the pool
  std::uint64_t gp_started = 0;     // grace-period scans led in this shard
  std::uint64_t gp_shared = 0;      // calls that piggybacked on a scan
  std::uint64_t scans = 0;          // validated scan chunks served
  std::uint64_t scan_retries = 0;   // chunk attempts discarded on conflict
  // Optimistic cop-updater breakdown (citrus-cop*; zero elsewhere).
  std::uint64_t cop_commits = 0;
  std::uint64_t cop_aborts_htm = 0;
  std::uint64_t cop_fallbacks = 0;
  std::uint64_t cop_validation_failures = 0;
  // Structural-maintainer breakdown (citrus-cf*; zero elsewhere).
  std::uint64_t maint_rebuilds = 0;
  std::uint64_t maint_validation_failures = 0;
  std::uint64_t maint_nodes_rebuilt = 0;
  std::size_t size = 0;             // keys resident (relaxed counter)
};

// Structured operation statistics, replacing the old ad-hoc
// `grace_periods()` accessor. Counters are maintained with relaxed
// atomics and are exact only at quiescence; implementations fill what
// they track and leave the rest zero (a plain std::uint64_t zero is
// indistinguishable from "not tracked" by design — consumers treat all
// fields as best-effort diagnostics, not invariants).
struct StatsSnapshot {
  std::uint64_t grace_periods = 0;  // synchronize_rcu calls, all domains
  std::uint64_t insert_retries = 0;
  std::uint64_t erase_retries = 0;
  std::uint64_t lock_timeouts = 0;
  std::uint64_t recycled_nodes = 0;
  // Grace-period engine breakdown (rcu/gp_seq.hpp); all zero on domains
  // without the shared sequence. gp_started counts scans actually
  // performed, gp_shared counts synchronize calls satisfied by another
  // caller's concurrent scan, gp_expedited counts expedited (flat-scan)
  // calls. Sharing ratio = gp_shared / (gp_started + gp_shared).
  std::uint64_t gp_started = 0;
  std::uint64_t gp_shared = 0;
  std::uint64_t gp_expedited = 0;
  // Ordered-operation breakdown (validated scans only; weak succ-chain
  // scans do not count). scans = successful chunk validations,
  // scan_retries = chunks discarded because a writer raced the walk,
  // scan_keys_visited = pairs emitted by successful chunks.
  std::uint64_t scans = 0;
  std::uint64_t scan_retries = 0;
  std::uint64_t scan_keys_visited = 0;
  // Optimistic cop-updater breakdown (citrus-cop*; all zero on the
  // lock+validate protocol). cop_commits = successful optimistic
  // publishes (either path); cop_aborts_htm = aborted HTM attempts
  // (hardware, or simulated via fault::Site::kTxAbort); cop_fallbacks =
  // entries into the software validate-under-lock path;
  // cop_validation_failures = under-lock validations that failed and
  // forced a re-traversal.
  std::uint64_t cop_commits = 0;
  std::uint64_t cop_aborts_htm = 0;
  std::uint64_t cop_fallbacks = 0;
  std::uint64_t cop_validation_failures = 0;
  // Background structural-maintainer breakdown (citrus-cf*; all zero on
  // strategies without one). maint_rebuilds = published subtree rebuilds;
  // maint_validation_failures = rebuilds abandoned because a concurrent
  // update won the revalidation race (or a lock/allocation failed);
  // maint_nodes_rebuilt = real nodes copied into published replacements.
  std::uint64_t maint_rebuilds = 0;
  std::uint64_t maint_validation_failures = 0;
  std::uint64_t maint_nodes_rebuilt = 0;
  // Deferred-reclaim backpressure events: enqueue calls that found the
  // backlog over the high watermark and reclaimed synchronously
  // (rcu/reclaimer.hpp). Zero when no Reclaimer/watermark is configured.
  std::uint64_t reclaim_backpressure = 0;
  std::vector<ShardStats> shards;   // per-shard breakdown; empty if unsharded
};

// Construction-time tuning passed to make_dictionary. Every field has a
// "let the implementation decide" default, so `Options{}` reproduces the
// historic `make_dictionary(name)` behavior exactly.
struct Options {
  // Number of hash shards for sharded dictionaries (power of two). 0 =
  // the name's built-in default (e.g. 16 for "citrus-shard16"); ignored
  // by unsharded implementations.
  std::size_t shards = 0;
  // Expected key-range of the workload; lets implementations pre-size
  // internal tables (the relativistic hash baseline). 0 = unknown.
  std::int64_t key_range_hint = 0;
  // Override the algorithm's memory-reclamation trait: true forces
  // grace-period reclamation on, false forces the paper's leak-mode off.
  // Unset keeps the name's default (e.g. "citrus" off, "citrus-reclaim"
  // on). Only meaningful for Citrus variants.
  std::optional<bool> reclaim;
};

class IDictionary {
 public:
  virtual ~IDictionary() = default;

  // Must be called (and the result kept alive) by every thread before it
  // invokes the operations below.
  virtual std::unique_ptr<ThreadScope> enter_thread() = 0;

  virtual bool insert(std::int64_t key, std::int64_t value) = 0;
  virtual bool erase(std::int64_t key) = 0;
  virtual std::optional<std::int64_t> find(std::int64_t key) const = 0;
  virtual std::size_t size() const = 0;

  // Status-returning updates (core::UpdateStatus — update_status.hpp).
  // The defaults map the bool channel, which can never express kNoMemory:
  // implementations whose allocation can fail (Citrus with a pool cap or
  // fault injection) override these to surface it. Contract for
  // kNoMemory: the structure is unchanged and the operation did not
  // retry; the caller decides whether to back off, shed load, or fail.
  virtual core::UpdateStatus try_insert(std::int64_t key, std::int64_t value) {
    return insert(key, value) ? core::UpdateStatus::kSuccess
                              : core::UpdateStatus::kNoOp;
  }
  virtual core::UpdateStatus try_erase(std::int64_t key) {
    return erase(key) ? core::UpdateStatus::kSuccess
                      : core::UpdateStatus::kNoOp;
  }

  // Membership is by definition find(k).has_value(); non-virtual so no
  // adapter can drift from that definition.
  bool contains(std::int64_t key) const { return find(key).has_value(); }

  // Strict successor (min key > k) / predecessor (max key < k).
  virtual std::optional<Entry> succ(std::int64_t key) const = 0;
  virtual std::optional<Entry> pred(std::int64_t key) const = 0;

  // Visit every pair with lo <= key <= hi in ascending key order —
  // descending when opts.reverse — subject to opts. Returns the number of
  // pairs visited. The default implementation is the documented weak
  // mode: a succ-chain (pred-chain when reversed) of point reads
  // (ScanConsistency::kWeak); overriders serve stronger levels.
  virtual std::size_t range(std::int64_t lo, std::int64_t hi,
                            const RangeVisitor& visit,
                            const ScanOptions& opts = {}) const;

  // Iterator over the full key space at the strongest consistency the
  // implementation supports. The default is the weak succ-chain cursor.
  virtual std::unique_ptr<ISnapshot> snapshot() const;

  // Capabilities of this instance (reflects Options overrides).
  virtual DictionaryTraits traits() const { return {}; }

  // Quiescent structural audit. Implementations fill the report fields
  // they can compute safely without the caller holding a ThreadScope;
  // those with no structural invariant of their own return an ok report.
  virtual core::StructureReport check_structure() const = 0;

  // Operation statistics snapshot (quiescently exact). The default is the
  // all-zero snapshot for structures that track nothing.
  virtual StatsSnapshot stats() const { return {}; }

  virtual std::string name() const = 0;
};

using DictionaryFactory =
    std::function<std::unique_ptr<IDictionary>(const Options&)>;

// Global algorithm registry. Names used by the benches, with the traits
// each maps to (BenchTraits = paper-faithful: no reclamation, no stats;
// DefaultTraits = reclamation + stats on):
//   citrus            Citrus tree, counter+flag RCU (shared gp_seq +
//                     hierarchical scan), BenchTraits
//   citrus-gpseq      explicit alias of `citrus` for the grace-period A/B
//   citrus-flat       Citrus over the paper's flat per-call scan (no
//                     grace-period sharing) — the gp_seq baseline
//   citrus-std-rcu    Citrus over the stock (global-lock) RCU — Fig 8 left;
//                     BenchTraits
//   citrus-epoch      Citrus over epoch-based RCU — RCU-choice ablation;
//                     BenchTraits
//   citrus-qsbr       Citrus over quiescent-state-based RCU (cheapest
//                     reads); BenchTraits
//   citrus-reclaim    Citrus with full memory reclamation on; DefaultTraits
//   citrus-mutex      Citrus with std::mutex node locks — lock ablation;
//                     BenchTraits + UseStdMutex
//   citrus-cop        Citrus with the optimistic copy-validate-publish
//                     updater (citrus_cop.hpp): HTM fast path where the
//                     hardware has it, hoisted-allocation lock+validate
//                     fallback otherwise. BenchTraits
//   citrus-shard4     ShardedCitrus, 4 shards × counter+flag RCU domains;
//   citrus-shard16      per-shard node pools and retire queues. BenchTraits
//   citrus-shard64      per shard; Options::shards overrides the count.
//   citrus-cop-shard4   ShardedCitrus over the cop updater, 4/16/64
//   citrus-cop-shard16  shards; same sharding semantics as citrus-shard*.
//   citrus-cop-shard64
//   citrus-cf         Citrus with the background structural maintainer
//                     (src/maint/citrus_cf.hpp): a per-tree thread rebuilds
//                     subtrees deeper than c·log2(size) into balanced
//                     private copies and publishes each with one release
//                     CAS, bounding search depth under skewed insertion.
//                     CfBenchTraits (the maintainer recycles replaced
//                     subtrees, so read-side sections stay on regardless
//                     of the reclaim tier).
//   citrus-cf-shard4    ShardedCitrus over the maintained tree, 4/16/64
//   citrus-cf-shard16   shards — one maintainer thread per shard; same
//   citrus-cf-shard64   sharding semantics as citrus-shard*.
//   rbtree            relativistic red-black tree (global writer lock)
//   bonsai            Bonsai path-copying balanced tree (global writer lock)
//   avl               Bronson optimistic AVL
//   lockfree          Natarajan-Mittal lock-free external BST
//   skiplist          Herlihy lazy skiplist
//   rcu-hash          relativistic hash table (per-bucket locks, RCU resize)
//
// Scan-consistency ceilings: citrus* (citrus-cf included) serve kSnapshot
// (validated in-tree traversal), citrus-shard*/citrus-cf-shard* serve
// kChunked (k-way merge of per-shard atomic chunks), bonsai serves
// kSnapshot (scan of the RCU-published immutable root), everything else
// serves kWeak. ScanOptions::reverse is honored at the same ceilings (the
// validated scans have a descending mirror; the weak fallback is a
// pred-chain).
std::vector<std::string> registered_dictionaries();
// Introspection: every registered name with its default-Options traits.
std::vector<DictionaryInfo> available_dictionaries();
std::unique_ptr<IDictionary> make_dictionary(const std::string& name,
                                             const Options& options);
// Back-compat convenience: default Options.
std::unique_ptr<IDictionary> make_dictionary(const std::string& name);

}  // namespace citrus::adapters
