// Type-erased dictionary over int64 keys/values, plus the by-name registry
// used by the figure-reproduction benchmarks. Each adapter owns its RCU
// domain and its tree; worker threads obtain a ThreadScope (RAII thread
// registration with the underlying RCU domain) before operating.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace citrus::adapters {

// Held by a worker thread for as long as it uses the dictionary.
class ThreadScope {
 public:
  virtual ~ThreadScope() = default;
};

class IDictionary {
 public:
  virtual ~IDictionary() = default;

  // Must be called (and the result kept alive) by every thread before it
  // invokes the operations below.
  virtual std::unique_ptr<ThreadScope> enter_thread() = 0;

  virtual bool insert(std::int64_t key, std::int64_t value) = 0;
  virtual bool erase(std::int64_t key) = 0;
  virtual bool contains(std::int64_t key) const = 0;
  virtual std::optional<std::int64_t> find(std::int64_t key) const = 0;
  virtual std::size_t size() const = 0;

  // Quiescent structural audit; true if the implementation has none.
  virtual bool check_structure(std::string* error) const = 0;

  // Grace periods driven so far (0 for non-RCU structures) — Figure 8's
  // diagnostic.
  virtual std::uint64_t grace_periods() const { return 0; }

  virtual std::string name() const = 0;
};

using DictionaryFactory = std::function<std::unique_ptr<IDictionary>()>;

// Global algorithm registry. Names used by the benches:
//   citrus            Citrus tree, paper's counter+flag RCU, no reclamation
//   citrus-std-rcu    Citrus over the stock (global-lock) RCU — Fig 8 left
//   citrus-epoch      Citrus over epoch-based RCU — RCU-choice ablation
//   citrus-qsbr       Citrus over quiescent-state-based RCU (cheapest reads)
//   citrus-reclaim    Citrus with full memory reclamation on
//   citrus-mutex      Citrus with std::mutex node locks — lock ablation
//   rbtree            relativistic red-black tree (global writer lock)
//   bonsai            Bonsai path-copying balanced tree (global writer lock)
//   avl               Bronson optimistic AVL
//   lockfree          Natarajan-Mittal lock-free external BST
//   skiplist          Herlihy lazy skiplist
//   rcu-hash          relativistic hash table (per-bucket locks, RCU resize)
std::vector<std::string> registered_dictionaries();
std::unique_ptr<IDictionary> make_dictionary(const std::string& name);

}  // namespace citrus::adapters
