// The dictionary abstraction (paper, Section 2):
//
//   insert(k,val) adds (k, val); true iff k was absent.
//   delete(k)     removes k; true iff k was present.      (here: erase)
//   contains(k)   returns val if present, false otherwise. (here: find)
//
// Two forms are provided: a compile-time concept the tests and typed
// benchmarks use (zero-overhead), and a type-erased interface + registry
// (idictionary.hpp) the figure-reproduction binaries use to iterate over
// algorithms by name.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>

namespace citrus::adapters {

template <typename D>
concept dictionary = requires(D d, const D cd,
                              const typename D::key_type& k,
                              const typename D::mapped_type& v) {
  typename D::key_type;
  typename D::mapped_type;
  { d.insert(k, v) } -> std::convertible_to<bool>;
  { d.erase(k) } -> std::convertible_to<bool>;
  { cd.contains(k) } -> std::convertible_to<bool>;
  {
    cd.find(k)
  } -> std::convertible_to<std::optional<typename D::mapped_type>>;
  { cd.size() } -> std::convertible_to<std::size_t>;
};

}  // namespace citrus::adapters
