// The dictionary abstraction (paper, Section 2):
//
//   insert(k,val) adds (k, val); true iff k was absent.
//   delete(k)     removes k; true iff k was present.      (here: erase)
//   contains(k)   returns val if present, false otherwise. (here: find)
//
// Two forms are provided: a compile-time concept the tests and typed
// benchmarks use (zero-overhead), and a type-erased interface + registry
// (idictionary.hpp) the figure-reproduction binaries use to iterate over
// algorithms by name.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <utility>

namespace citrus::adapters {

template <typename D>
concept dictionary = requires(D d, const D cd,
                              const typename D::key_type& k,
                              const typename D::mapped_type& v) {
  typename D::key_type;
  typename D::mapped_type;
  { d.insert(k, v) } -> std::convertible_to<bool>;
  { d.erase(k) } -> std::convertible_to<bool>;
  { cd.contains(k) } -> std::convertible_to<bool>;
  {
    cd.find(k)
  } -> std::convertible_to<std::optional<typename D::mapped_type>>;
  { cd.size() } -> std::convertible_to<std::size_t>;
};

// Ordered extension: strict successor (min key > k) and strict predecessor
// (max key < k). Every typed implementation in this repo models it; the
// per-implementation consistency level (validated snapshot vs weak) is
// surfaced through the type-erased layer's DictionaryTraits.
template <typename D>
concept ordered_dictionary =
    dictionary<D> && requires(const D cd, const typename D::key_type& k) {
      {
        cd.succ(k)
      } -> std::convertible_to<std::optional<
          std::pair<typename D::key_type, typename D::mapped_type>>>;
      {
        cd.pred(k)
      } -> std::convertible_to<std::optional<
          std::pair<typename D::key_type, typename D::mapped_type>>>;
    };

}  // namespace citrus::adapters
