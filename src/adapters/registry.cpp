#include "adapters/idictionary.hpp"

#include <map>
#include <stdexcept>

#include "adapters/dictionary.hpp"
#include "baselines/avl_bronson.hpp"
#include "baselines/bonsai.hpp"
#include "baselines/lazy_skiplist.hpp"
#include "baselines/lockfree_bst.hpp"
#include "baselines/rcu_rbtree.hpp"
#include "baselines/relativistic_hash.hpp"
#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"
#include "shard/sharded_dict.hpp"

namespace citrus::adapters {

namespace {

template <typename Rcu>
class RcuThreadScope final : public ThreadScope {
 public:
  explicit RcuThreadScope(Rcu& domain) : registration_(domain) {}

 private:
  typename Rcu::Registration registration_;
};

// Adapter owning a domain and a tree built on it. `Tree` must be
// constructible from `Rcu&` and satisfy the dictionary concept.
template <typename Rcu, typename Tree>
class TreeAdapter final : public IDictionary {
 public:
  // Extra args are forwarded to the tree after the domain (e.g. the
  // relativistic hash table's initial bucket count).
  template <typename... Args>
  explicit TreeAdapter(std::string name, Args&&... args)
      : name_(std::move(name)), tree_(domain_, std::forward<Args>(args)...) {}

  std::unique_ptr<ThreadScope> enter_thread() override {
    return std::make_unique<RcuThreadScope<Rcu>>(domain_);
  }

  bool insert(std::int64_t key, std::int64_t value) override {
    return tree_.insert(key, value);
  }
  bool erase(std::int64_t key) override { return tree_.erase(key); }
  bool contains(std::int64_t key) const override {
    return tree_.contains(key);
  }
  std::optional<std::int64_t> find(std::int64_t key) const override {
    return tree_.find(key);
  }
  std::size_t size() const override { return tree_.size(); }

  core::StructureReport check_structure() const override {
    if constexpr (requires(const Tree& t, std::string* e) {
                    { t.check_structure(e) } -> std::convertible_to<bool>;
                  }) {
      // Baselines report bool + message; lift into a StructureReport.
      // node_count stays 0: size() may itself need a registered RCU
      // read-side section (Bonsai), which the auditing thread need not
      // hold.
      core::StructureReport rep;
      rep.ok = tree_.check_structure(&rep.error);
      if (rep.ok) rep.error.clear();
      return rep;
    } else {
      return tree_.check_structure();
    }
  }

  StatsSnapshot stats() const override {
    StatsSnapshot snap;
    snap.grace_periods = domain_.synchronize_calls();
    if constexpr (requires(const Tree& t) {
                    { t.stats() } -> std::convertible_to<core::CitrusStats>;
                  }) {
      const core::CitrusStats s = tree_.stats();
      snap.insert_retries = s.insert_retries;
      snap.erase_retries = s.erase_retries;
      snap.lock_timeouts = s.lock_timeouts;
      snap.recycled_nodes = s.recycled_nodes;
      snap.gp_started = s.gp_started;
      snap.gp_shared = s.gp_shared;
      snap.gp_expedited = s.gp_expedited;
    }
    return snap;
  }

  std::string name() const override { return name_; }

 private:
  std::string name_;
  Rcu domain_;       // destroyed after the tree (declaration order)
  Tree tree_;
};

using Key = std::int64_t;
using Value = std::int64_t;

// Adapter over ShardedCitrus: N shards, each an independent (domain, tree)
// pair; a ThreadScope registers with all shard domains.
template <typename Rcu, typename Traits>
class ShardedAdapter final : public IDictionary {
  using Sharded = shard::ShardedCitrus<Key, Value, Rcu, Traits>;

  class Scope final : public ThreadScope {
   public:
    explicit Scope(Sharded& dict) : registration_(dict) {}

   private:
    typename Sharded::Registration registration_;
  };

 public:
  ShardedAdapter(std::string name, std::size_t shards)
      : name_(std::move(name)), dict_(shards) {}

  std::unique_ptr<ThreadScope> enter_thread() override {
    return std::make_unique<Scope>(dict_);
  }

  bool insert(std::int64_t key, std::int64_t value) override {
    return dict_.insert(key, value);
  }
  bool erase(std::int64_t key) override { return dict_.erase(key); }
  bool contains(std::int64_t key) const override {
    return dict_.contains(key);
  }
  std::optional<std::int64_t> find(std::int64_t key) const override {
    return dict_.find(key);
  }
  std::size_t size() const override { return dict_.size(); }

  core::StructureReport check_structure() const override {
    return dict_.check_structure();
  }

  StatsSnapshot stats() const override {
    StatsSnapshot snap;
    snap.shards.reserve(dict_.shard_count());
    for (std::size_t i = 0; i < dict_.shard_count(); ++i) {
      const core::CitrusStats s = dict_.shard_stats(i);
      ShardStats out;
      out.grace_periods = dict_.shard_synchronize_calls(i);
      out.retries = s.insert_retries + s.erase_retries;
      out.lock_timeouts = s.lock_timeouts;
      out.recycled_nodes = s.recycled_nodes;
      out.gp_started = s.gp_started;
      out.gp_shared = s.gp_shared;
      out.size = dict_.shard_size(i);
      snap.grace_periods += out.grace_periods;
      snap.insert_retries += s.insert_retries;
      snap.erase_retries += s.erase_retries;
      snap.lock_timeouts += s.lock_timeouts;
      snap.recycled_nodes += s.recycled_nodes;
      snap.gp_started += s.gp_started;
      snap.gp_shared += s.gp_shared;
      snap.gp_expedited += s.gp_expedited;
      snap.shards.push_back(out);
    }
    return snap;
  }

  std::string name() const override { return name_; }

 private:
  std::string name_;
  Sharded dict_;
};

template <typename Rcu, typename Tree>
DictionaryFactory factory(const char* name) {
  return [name](const Options&) {
    return std::make_unique<TreeAdapter<Rcu, Tree>>(name);
  };
}

// Citrus factories honor Options::reclaim by swapping the traits tier at
// construction time (the trait is compile-time, so both instantiations
// exist and the option picks one).
template <typename Rcu>
DictionaryFactory citrus_factory(const char* name, bool reclaim_default) {
  return [name, reclaim_default](const Options& options) -> std::unique_ptr<IDictionary> {
    const bool reclaim = options.reclaim.value_or(reclaim_default);
    if (reclaim) {
      return std::make_unique<TreeAdapter<
          Rcu, core::CitrusTree<Key, Value, Rcu, core::DefaultTraits>>>(name);
    }
    return std::make_unique<TreeAdapter<
        Rcu, core::CitrusTree<Key, Value, Rcu, core::BenchTraits>>>(name);
  };
}

// Sharded Citrus: Options::shards (power of two) overrides the name's
// default count; Options::reclaim picks the traits tier as above.
DictionaryFactory sharded_factory(const char* name,
                                  std::size_t default_shards) {
  return [name, default_shards](const Options& options)
             -> std::unique_ptr<IDictionary> {
    std::size_t shards =
        options.shards != 0 ? options.shards : default_shards;
    if (!shard::is_power_of_two(shards)) {
      throw std::invalid_argument("shard count must be a power of two");
    }
    using rcu::CounterFlagRcu;
    if (options.reclaim.value_or(false)) {
      return std::make_unique<
          ShardedAdapter<CounterFlagRcu, core::DefaultTraits>>(name, shards);
    }
    return std::make_unique<
        ShardedAdapter<CounterFlagRcu, core::BenchTraits>>(name, shards);
  };
}

// Citrus node-lock ablation traits.
struct CitrusMutexTraits : core::BenchTraits {
  using LockTag = sync::UseStdMutex;
};

const std::map<std::string, DictionaryFactory>& registry() {
  using rcu::CounterFlagRcu;
  using rcu::EpochRcu;
  using rcu::QsbrRcu;
  using rcu::GlobalLockRcu;
  static const std::map<std::string, DictionaryFactory> map = {
      {"citrus", citrus_factory<CounterFlagRcu>("citrus", false)},
      // A/B pair for the grace-period engine: "citrus-gpseq" is an
      // explicit alias of the default (shared gp_seq + hierarchical
      // scan), "citrus-flat" is the paper's flat per-call scan.
      {"citrus-gpseq", citrus_factory<CounterFlagRcu>("citrus-gpseq", false)},
      {"citrus-flat",
       citrus_factory<rcu::FlatCounterFlagRcu>("citrus-flat", false)},
      {"citrus-std-rcu",
       citrus_factory<GlobalLockRcu>("citrus-std-rcu", false)},
      {"citrus-epoch", citrus_factory<EpochRcu>("citrus-epoch", false)},
      {"citrus-qsbr", citrus_factory<QsbrRcu>("citrus-qsbr", false)},
      {"citrus-reclaim",
       citrus_factory<CounterFlagRcu>("citrus-reclaim", true)},
      {"citrus-mutex",
       factory<CounterFlagRcu, core::CitrusTree<Key, Value, CounterFlagRcu,
                                                CitrusMutexTraits>>(
           "citrus-mutex")},
      {"citrus-shard4", sharded_factory("citrus-shard4", 4)},
      {"citrus-shard16", sharded_factory("citrus-shard16", 16)},
      {"citrus-shard64", sharded_factory("citrus-shard64", 64)},
      {"rbtree",
       factory<CounterFlagRcu,
               baselines::RcuRedBlackTree<Key, Value, CounterFlagRcu,
                                          baselines::RbBenchTraits>>(
           "rbtree")},
      {"bonsai",
       factory<CounterFlagRcu,
               baselines::BonsaiTree<Key, Value, CounterFlagRcu,
                                     baselines::BonsaiBenchTraits>>("bonsai")},
      {"avl",
       factory<CounterFlagRcu,
               baselines::BronsonAvlTree<Key, Value, CounterFlagRcu,
                                         baselines::AvlBenchTraits>>("avl")},
      {"lockfree",
       factory<CounterFlagRcu,
               baselines::LockFreeBst<Key, Value, CounterFlagRcu,
                                      baselines::LfBstBenchTraits>>(
           "lockfree")},
      {"rcu-hash",
       [](const Options& options) -> std::unique_ptr<IDictionary> {
         using Table =
             baselines::RelativisticHashTable<Key, Value, CounterFlagRcu,
                                              baselines::RelHashBenchTraits>;
         // ~8 expected keys per bucket at the hinted range's half-full
         // steady state; 0 falls back to the trait default.
         const std::size_t buckets =
             options.key_range_hint > 0
                 ? static_cast<std::size_t>(options.key_range_hint) / 16
                 : baselines::RelHashBenchTraits::kInitialBuckets;
         return std::make_unique<TreeAdapter<CounterFlagRcu, Table>>(
             "rcu-hash", buckets);
       }},
      {"skiplist",
       factory<CounterFlagRcu,
               baselines::LazySkiplist<Key, Value, CounterFlagRcu,
                                       baselines::SkiplistBenchTraits>>(
           "skiplist")},
  };
  return map;
}

}  // namespace

std::vector<std::string> registered_dictionaries() {
  std::vector<std::string> names;
  for (const auto& [name, unused] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<IDictionary> make_dictionary(const std::string& name,
                                             const Options& options) {
  const auto& map = registry();
  const auto it = map.find(name);
  if (it == map.end()) {
    throw std::invalid_argument("unknown dictionary: " + name);
  }
  return it->second(options);
}

std::unique_ptr<IDictionary> make_dictionary(const std::string& name) {
  return make_dictionary(name, Options{});
}

}  // namespace citrus::adapters
