#include "adapters/idictionary.hpp"

#include <map>
#include <stdexcept>

#include "adapters/dictionary.hpp"
#include "baselines/avl_bronson.hpp"
#include "baselines/bonsai.hpp"
#include "baselines/lazy_skiplist.hpp"
#include "baselines/lockfree_bst.hpp"
#include "baselines/rcu_rbtree.hpp"
#include "baselines/relativistic_hash.hpp"
#include "citrus/citrus_tree.hpp"
#include "rcu/counter_flag_rcu.hpp"
#include "rcu/epoch_rcu.hpp"
#include "rcu/global_lock_rcu.hpp"
#include "rcu/qsbr_rcu.hpp"

namespace citrus::adapters {

namespace {

template <typename Rcu>
class RcuThreadScope final : public ThreadScope {
 public:
  explicit RcuThreadScope(Rcu& domain) : registration_(domain) {}

 private:
  typename Rcu::Registration registration_;
};

// Adapter owning a domain and a tree built on it. `Tree` must be
// constructible from `Rcu&` and satisfy the dictionary concept.
template <typename Rcu, typename Tree>
class TreeAdapter final : public IDictionary {
 public:
  explicit TreeAdapter(std::string name) : name_(std::move(name)) {}

  std::unique_ptr<ThreadScope> enter_thread() override {
    return std::make_unique<RcuThreadScope<Rcu>>(domain_);
  }

  bool insert(std::int64_t key, std::int64_t value) override {
    return tree_.insert(key, value);
  }
  bool erase(std::int64_t key) override { return tree_.erase(key); }
  bool contains(std::int64_t key) const override {
    return tree_.contains(key);
  }
  std::optional<std::int64_t> find(std::int64_t key) const override {
    return tree_.find(key);
  }
  std::size_t size() const override { return tree_.size(); }

  bool check_structure(std::string* error) const override {
    return check_impl(error);
  }

  std::uint64_t grace_periods() const override {
    return domain_.synchronize_calls();
  }

  std::string name() const override { return name_; }

 private:
  template <typename T = Tree>
  bool check_impl(std::string* error) const {
    if constexpr (requires(const T& t, std::string* e) {
                    { t.check_structure(e) } -> std::convertible_to<bool>;
                  }) {
      return tree_.check_structure(error);
    } else {
      // Citrus reports through a StructureReport.
      auto rep = tree_.check_structure();
      if (!rep.ok && error != nullptr) *error = rep.error;
      return rep.ok;
    }
  }

  std::string name_;
  Rcu domain_;       // destroyed after the tree (declaration order)
  Tree tree_{domain_};
};

using Key = std::int64_t;
using Value = std::int64_t;

template <typename Rcu, typename Tree>
DictionaryFactory factory(const char* name) {
  return [name] {
    return std::make_unique<TreeAdapter<Rcu, Tree>>(name);
  };
}

// Citrus node-lock ablation traits.
struct CitrusMutexTraits : core::BenchTraits {
  using LockTag = sync::UseStdMutex;
};

const std::map<std::string, DictionaryFactory>& registry() {
  using rcu::CounterFlagRcu;
  using rcu::EpochRcu;
  using rcu::QsbrRcu;
  using rcu::GlobalLockRcu;
  static const std::map<std::string, DictionaryFactory> map = {
      {"citrus",
       factory<CounterFlagRcu, core::CitrusTree<Key, Value, CounterFlagRcu,
                                                core::BenchTraits>>("citrus")},
      {"citrus-std-rcu",
       factory<GlobalLockRcu, core::CitrusTree<Key, Value, GlobalLockRcu,
                                               core::BenchTraits>>(
           "citrus-std-rcu")},
      {"citrus-epoch",
       factory<EpochRcu,
               core::CitrusTree<Key, Value, EpochRcu, core::BenchTraits>>(
           "citrus-epoch")},
      {"citrus-qsbr",
       factory<QsbrRcu,
               core::CitrusTree<Key, Value, QsbrRcu, core::BenchTraits>>(
           "citrus-qsbr")},
      {"citrus-reclaim",
       factory<CounterFlagRcu, core::CitrusTree<Key, Value, CounterFlagRcu,
                                                core::DefaultTraits>>(
           "citrus-reclaim")},
      {"citrus-mutex",
       factory<CounterFlagRcu, core::CitrusTree<Key, Value, CounterFlagRcu,
                                                CitrusMutexTraits>>(
           "citrus-mutex")},
      {"rbtree",
       factory<CounterFlagRcu,
               baselines::RcuRedBlackTree<Key, Value, CounterFlagRcu,
                                          baselines::RbBenchTraits>>(
           "rbtree")},
      {"bonsai",
       factory<CounterFlagRcu,
               baselines::BonsaiTree<Key, Value, CounterFlagRcu,
                                     baselines::BonsaiBenchTraits>>("bonsai")},
      {"avl",
       factory<CounterFlagRcu,
               baselines::BronsonAvlTree<Key, Value, CounterFlagRcu,
                                         baselines::AvlBenchTraits>>("avl")},
      {"lockfree",
       factory<CounterFlagRcu,
               baselines::LockFreeBst<Key, Value, CounterFlagRcu,
                                      baselines::LfBstBenchTraits>>(
           "lockfree")},
      {"rcu-hash",
       factory<CounterFlagRcu,
               baselines::RelativisticHashTable<Key, Value, CounterFlagRcu,
                                                baselines::RelHashBenchTraits>>(
           "rcu-hash")},
      {"skiplist",
       factory<CounterFlagRcu,
               baselines::LazySkiplist<Key, Value, CounterFlagRcu,
                                       baselines::SkiplistBenchTraits>>(
           "skiplist")},
  };
  return map;
}

}  // namespace

std::vector<std::string> registered_dictionaries() {
  std::vector<std::string> names;
  for (const auto& [name, unused] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<IDictionary> make_dictionary(const std::string& name) {
  const auto& map = registry();
  const auto it = map.find(name);
  if (it == map.end()) {
    throw std::invalid_argument("unknown dictionary: " + name);
  }
  return it->second();
}

}  // namespace citrus::adapters
